"""A winter peak day: the full load-balancing pipeline on a synthetic town.

This example exercises the whole system the way a utility would use it:

1. generate a population of households with appliance-level load models,
2. let a severe-cold day drive heating demand up (the Figure 1 situation),
3. predict the aggregate demand and decide whether to negotiate,
4. run the reward-table negotiation with the Customer Agents,
5. apply the awarded cut-downs to the household load profiles, and
6. compare production costs, peak levels and reward expenditure before/after.

Run with::

    python examples/winter_peak_day.py [num_households]
"""

from __future__ import annotations

import sys

from repro.analysis.plotting import ascii_line_chart
from repro.analysis.reporting import format_key_values
from repro.core import LoadBalancingSystem, synthetic_scenario
from repro.grid.load_profile import LoadProfile
from repro.grid.production import ProductionModel


def main(num_households: int = 60) -> None:
    scenario = synthetic_scenario(num_households=num_households, seed=7, cold_snap=True)
    print(f"Scenario: {scenario.description}")
    print(f"  normal capacity:   {scenario.normal_use:.1f} kW")
    print(f"  predicted overuse: {scenario.initial_overuse:.1f} kW "
          f"({100 * scenario.initial_relative_overuse:.0f}% of capacity)")
    print(f"  peak interval:     {scenario.population.interval.label()}")
    print()

    production = ProductionModel.two_tier(
        normal_capacity_kw=scenario.normal_use,
        peak_capacity_kw=2.0 * max(scenario.initial_overuse, 1.0),
        normal_cost=0.25,
        peak_cost=0.80,
    )
    # backend="auto" routes the negotiation through the repro.api façade: the
    # vectorized path when the scenario qualifies, the object path otherwise.
    system = LoadBalancingSystem(scenario, production=production, seed=7, backend="auto")

    baseline = LoadProfile.aggregate(system.baseline_profiles().values())
    print(ascii_line_chart(
        list(baseline),
        title="Aggregate demand before negotiation (kW); '-' = normal capacity",
        threshold=scenario.normal_use,
        height=12,
    ))
    print()

    outcome = system.run()
    print("Load-balancing pipeline result:")
    print(format_key_values(outcome.summary()))
    print()
    if outcome.negotiation is not None:
        result = outcome.negotiation
        print(f"Negotiation took {result.rounds} rounds, "
              f"{result.messages_sent} messages, "
              f"participation {100 * result.participation_rate:.0f}%.")
        adjusted = LoadProfile.aggregate(
            system.apply_cutdowns(system.baseline_profiles(), result).values()
        )
        print()
        print(ascii_line_chart(
            list(adjusted),
            title="Aggregate demand after applying awarded cut-downs (kW)",
            threshold=scenario.normal_use,
            height=12,
        ))
        print()
        if outcome.net_utility_benefit > 0:
            print(f"The utility is better off by {outcome.net_utility_benefit:.1f} "
                  "currency units (production savings exceed rewards paid).")
        else:
            print("The rewards paid exceeded the production savings on this day; "
                  "the utility would tune beta/max_reward or use selective acceptance.")


if __name__ == "__main__":
    households = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    main(households)
