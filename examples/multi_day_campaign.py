"""A multi-day load-management campaign.

The paper's introduction motivates *dynamic* load management: the utility
observes consumption, predicts tomorrow's balance, and negotiates only when a
peak is expected.  This example runs that loop for two simulated weeks:

1. the consumption predictor is warmed up on a few observed days,
2. each morning the day-ahead planner forecasts the day's weather, predicts
   the demand, and builds a negotiation scenario when a peak is expected,
3. the negotiation runs, the awarded cut-downs are applied, and the utility's
   production savings and reward expenditure are accounted,
4. the realised day is fed back into the predictor.

Run with::

    python examples/multi_day_campaign.py [num_households] [num_days]
"""

from __future__ import annotations

import sys

import repro.api
from repro.analysis.reporting import format_table
from repro.core.planning import DayAheadPlanner
from repro.grid.demand import DemandModel
from repro.grid.household import Household
from repro.grid.production import ProductionModel
from repro.grid.weather import WeatherCondition
from repro.runtime.rng import RandomSource


def main(num_households: int = 40, num_days: int = 14) -> None:
    random = RandomSource(21, "campaign_example")
    households = [
        Household.generate(f"h{i:03d}", random.spawn(f"h{i}")) for i in range(num_households)
    ]
    demand_model = DemandModel(households, random.spawn("demand"))
    capacity = demand_model.normal_capacity_for_target(quantile=0.85)
    print(f"{num_households} households, normal-cost capacity {capacity:.1f} kW")

    planner = DayAheadPlanner(
        households,
        normal_capacity_kw=capacity,
        max_reward=40.0,
        beta=2.0,
        random=random.spawn("planner"),
    )
    production = ProductionModel.two_tier(
        normal_capacity_kw=capacity,
        peak_capacity_kw=capacity,
        normal_cost=0.25,
        peak_cost=0.90,
    )
    # A two-week stretch with a cold spell in the middle.
    conditions = (
        [WeatherCondition.MILD] * 3
        + [WeatherCondition.COLD, WeatherCondition.SEVERE_COLD, WeatherCondition.SEVERE_COLD,
           WeatherCondition.COLD]
        + [WeatherCondition.MILD] * (num_days - 7)
    )
    # The whole campaign runs through the repro.api engine façade: day-ahead
    # planning on the columnar HouseholdFleet kernels, each day's negotiation
    # on the fastest qualifying backend (backend="auto"), with the per-day
    # backend choices recorded in the result.
    result = repro.api.campaign(
        planner,
        num_days,
        conditions=conditions[:num_days],
        production=production,
        warmup_days=4,
        seed=21,
    )

    print()
    print(format_table(result.rows(), title="Campaign log (one row per day)", precision=1))
    print()
    backends = sorted({backend for backend in result.backends if backend})
    print(f"Days negotiated:     {result.days_negotiated} / {result.num_days} "
          f"(backends: {', '.join(backends) if backends else 'none'})")
    print(f"Planning phase:      {result.planning_seconds:.2f}s, "
          f"negotiation phase:   {result.negotiation_seconds:.2f}s")
    print(f"Total rewards paid:  {result.total_reward_paid:.1f}")
    print(f"Total net benefit:   {result.total_net_benefit:.1f} "
          "(production savings minus rewards)")
    if result.total_net_benefit < 0:
        print("On this configuration the rewards exceeded the avoided production cost; "
              "a utility would lower max_reward, use selective bid acceptance, or only "
              "negotiate on the most severe days.")


if __name__ == "__main__":
    households = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    days = int(sys.argv[2]) if len(sys.argv) > 2 else 14
    main(households, days)
