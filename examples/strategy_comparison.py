"""Comparing negotiation strategies and mechanisms.

Section 3.2.4 of the paper argues that no single announcement method is best
in all situations and Section 7 asks for an evaluation of the β parameter and
of computational markets.  This example runs those comparisons on a common
synthetic population and prints the resulting tables:

* offer vs request-for-bids vs reward-tables (rounds, money, peak reduction),
* a β sweep plus the adaptive-β controller on the prototype scenario,
* reward-table negotiation vs the equilibrium computational market.

Run with::

    python examples/strategy_comparison.py
"""

from __future__ import annotations

from repro.experiments.beta_sweep import run_beta_sweep
from repro.experiments.market_comparison import run_market_comparison
from repro.experiments.method_comparison import run_method_comparison


def main() -> None:
    print("1. Announcement-method comparison (common synthetic population)")
    print("-" * 72)
    comparison = run_method_comparison(num_households=30, seeds=(0, 1))
    print(comparison.render())
    print()
    print(f"Fastest method (fewest rounds): {comparison.fastest_method()}")
    print()

    print("2. Beta sweep on the prototype scenario (speed vs reward cost)")
    print("-" * 72)
    sweep = run_beta_sweep(betas=(0.5, 1.0, 2.0, 3.0, 4.0), include_adaptive=True)
    print(sweep.render())
    print()

    print("3. Negotiation vs computational market (same customers, same preferences)")
    print("-" * 72)
    market = run_market_comparison(use_paper_scenario=True)
    print(market.render())
    print()
    rows = {row["mechanism"]: row for row in market.rows()}
    negotiation_payment = rows["reward_table_negotiation"]["utility_payment"]
    market_payment = rows["equilibrium_market"]["utility_payment"]
    cheaper = (
        "the negotiation" if negotiation_payment <= market_payment else "the market"
    )
    print(f"Both mechanisms remove the needed reduction; {cheaper} is cheaper for the "
          "utility on this population (the uniform clearing price of the market hands "
          "more surplus to inframarginal customers).")


if __name__ == "__main__":
    main()
