"""Regenerate every figure of the paper as plain-text output.

* Figure 1 — the daily demand curve with an expensive peak (from the grid
  substrate, synthetic households on a severe-cold day).
* Figures 6 and 7 — the Utility Agent's per-round view of the prototype
  negotiation (reward tables, predicted overuse).
* Figures 8 and 9 — the Figure-8 customer's requirement table, acceptable
  cut-downs and chosen bids per round.

Each section also prints the paper-vs-measured comparison recorded in
``EXPERIMENTS.md``.

Run with::

    python examples/paper_figures.py
"""

from __future__ import annotations

from repro.experiments.fig1_demand_curve import run_demand_curve
from repro.experiments.fig6_fig7_utility_rounds import run_utility_rounds
from repro.experiments.fig8_fig9_customer_rounds import run_customer_rounds


def main() -> None:
    print("=" * 72)
    print("Figure 1 — demand curve with peak")
    print("=" * 72)
    print(run_demand_curve(num_households=50, seed=0).render())
    print()

    print("=" * 72)
    print("Figures 6 and 7 — the Utility Agent during the negotiation")
    print("=" * 72)
    print(run_utility_rounds().render())
    print()

    print("=" * 72)
    print("Figures 8 and 9 — the Customer Agent during the negotiation")
    print("=" * 72)
    print(run_customer_rounds().render())


if __name__ == "__main__":
    main()
