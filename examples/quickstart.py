"""Quickstart: run the paper's prototype negotiation end to end.

This reproduces the scenario behind Figures 6-9 of the paper: a Utility Agent
facing a predicted evening peak (predicted usage 135 against a normal
capacity of 100) negotiates with 20 Customer Agents using the
announce-reward-tables method, escalating rewards with the logistic rule
until the predicted overuse is acceptable.

Everything goes through the :mod:`repro.api` engine façade: build the
scenario with the fluent builder, call :func:`repro.api.run`, and let
``backend="auto"`` pick the execution path (the result records which backend
ran — the choice never changes the outcome, only the wall-clock).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.plotting import ascii_trajectories
from repro.analysis.reporting import format_key_values, format_table
from repro.api import run, scenario


def main() -> None:
    prototype = scenario().paper_prototype().build()
    print(f"Scenario: {prototype.name}")
    print(f"  customers:          {prototype.num_customers}")
    print(f"  normal capacity:    {prototype.normal_use:.0f}")
    print(f"  predicted usage:    {prototype.normal_use + prototype.initial_overuse:.0f}")
    print(f"  predicted overuse:  {prototype.initial_overuse:.0f}")
    print()

    result = run(prototype, seed=0)

    print(f"Negotiation finished (backend: {result.metadata['backend']}).")
    print(format_key_values(result.summary()))
    print()
    print(
        ascii_trajectories(
            {
                "predicted overuse": result.overuse_trajectory(),
                "reward @ cut-down 0.4": result.reward_trajectory(0.4),
                "figure-8 customer bid": result.customer_bid_trajectory("c000"),
            },
            title="Round-by-round trajectories (initial value first)",
        )
    )
    print()
    outcome_rows = [
        {
            "customer": outcome.customer,
            "final_bid": outcome.final_bid_cutdown,
            "awarded": outcome.awarded,
            "committed_cutdown": outcome.committed_cutdown,
            "reward": outcome.reward,
        }
        for outcome in list(result.customer_outcomes.values())[:8]
    ]
    print(format_table(outcome_rows, title="First 8 customer outcomes"))

    # The same run on the faithful object path (full agent society) is
    # bit-identical — that is the engine façade's equivalence contract.
    reference = run(prototype, backend="object", seed=0)
    if reference.customer_outcomes != result.customer_outcomes:
        raise RuntimeError("backend equivalence violated — please report this")
    print()
    print("Re-ran on the object path: outcomes identical, as guaranteed.")


if __name__ == "__main__":
    main()
