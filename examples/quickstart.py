"""Quickstart: run the paper's prototype negotiation end to end.

This reproduces the scenario behind Figures 6-9 of the paper: a Utility Agent
facing a predicted evening peak (predicted usage 135 against a normal
capacity of 100) negotiates with 20 Customer Agents using the
announce-reward-tables method, escalating rewards with the logistic rule
until the predicted overuse is acceptable.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.plotting import ascii_trajectories
from repro.analysis.reporting import format_key_values, format_table
from repro.core import NegotiationSession, paper_prototype_scenario


def main() -> None:
    scenario = paper_prototype_scenario()
    print(f"Scenario: {scenario.name}")
    print(f"  customers:          {scenario.num_customers}")
    print(f"  normal capacity:    {scenario.normal_use:.0f}")
    print(f"  predicted usage:    {scenario.normal_use + scenario.initial_overuse:.0f}")
    print(f"  predicted overuse:  {scenario.initial_overuse:.0f}")
    print()

    session = NegotiationSession(scenario, seed=0)
    result = session.run()

    print("Negotiation finished.")
    print(format_key_values(result.summary()))
    print()
    print(
        ascii_trajectories(
            {
                "predicted overuse": result.overuse_trajectory(),
                "reward @ cut-down 0.4": result.reward_trajectory(0.4),
                "figure-8 customer bid": result.customer_bid_trajectory("c000"),
            },
            title="Round-by-round trajectories (initial value first)",
        )
    )
    print()
    outcome_rows = [
        {
            "customer": outcome.customer,
            "final_bid": outcome.final_bid_cutdown,
            "awarded": outcome.awarded,
            "committed_cutdown": outcome.committed_cutdown,
            "reward": outcome.reward,
        }
        for outcome in list(result.customer_outcomes.values())[:8]
    ]
    print(format_table(outcome_rows, title="First 8 customer outcomes"))


if __name__ == "__main__":
    main()
