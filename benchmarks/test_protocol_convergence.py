"""Benchmark E10 — the monotonic concession protocol always converges."""

from __future__ import annotations

from repro.experiments.protocol_convergence import run_protocol_convergence


def test_protocol_convergence(benchmark, write_report):
    result = benchmark.pedantic(
        run_protocol_convergence, kwargs={"seeds": tuple(range(10))}, iterations=1, rounds=1
    )
    # Section 3.1: "the negotiation process always converges."
    assert result.all_converged()
    # The concession rules hold throughout: rewards never decrease, bids never
    # retreat, and the predicted overuse never increases.
    assert result.all_monotone()
    # Convergence happens well within the round budget.
    assert result.max_rounds_observed() <= 50
    write_report("E10_protocol_convergence", result.render())
