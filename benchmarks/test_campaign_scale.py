"""Benchmark — multi-week load-management campaigns at town scale.

The ROADMAP's "multi-negotiation campaigns at scale" item: run the full
observe → predict → negotiate → apply → account loop
(:func:`repro.api.campaign`) over a multi-week horizon on a 10,000-household
population with ``backend="auto"``, so every planned day that qualifies rides
the batched fast path (vectorized, or sharded once the population crosses the
shard threshold on a multi-core host).

Since the columnar planning pipeline landed, the planning layer runs on the
:class:`~repro.grid.fleet.HouseholdFleet` kernels and the per-phase
wall-clock split (``CampaignResult.planning_seconds`` /
``negotiation_seconds``) is part of the report; the committed trajectory
lives in ``benchmarks/BENCH_campaign.json`` (see ``run_bench.py``).

The 10k multi-week run is tier-2; a 300-household week runs in tier-1 as a
``perf_smoke`` guard with a generous budget.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.campaign_bench import render_entry, run_campaign_bench


def assert_campaign_rides_the_fast_path(result) -> None:
    """Every negotiated day must have run through a batched backend."""
    negotiated = [day for day in result.days if day.negotiated]
    assert negotiated, "the cold-snap cycle should force at least one negotiation"
    for day in negotiated:
        assert day.backend in ("vectorized", "sharded"), (
            f"day {day.day_index} fell back to {day.backend!r}"
        )


@pytest.mark.perf_smoke
def test_campaign_week_300_households_within_budget():
    """Tier-1 guard: a 300-household week (plan + negotiate + account every
    day) stays under a generous budget and rides the batched backends.  With
    columnar planning the run takes well under a second; the budget leaves
    two orders of magnitude of headroom for slow CI machines."""
    start = time.perf_counter()
    entry = run_campaign_bench(num_households=300, num_days=6)
    elapsed = time.perf_counter() - start
    result = entry.result
    assert result.num_days == 6
    assert_campaign_rides_the_fast_path(result)
    assert result.total_reward_paid >= 0
    # The phase split accounts for the bulk of the measured wall-clock.
    assert result.planning_seconds > 0
    assert result.planning_seconds + result.negotiation_seconds <= entry.wall_seconds
    assert elapsed < 60.0, f"300-household week took {elapsed:.1f}s"


@pytest.mark.tier2
def test_campaign_multiweek_10k_households(write_report):
    """The ROADMAP's 10k-household multi-week campaign benchmark: two weeks of
    day-ahead planning over 10,000 households with ``backend="auto"`` and
    columnar planning."""
    entry = run_campaign_bench(num_households=10_000, num_days=14)
    result = entry.result
    assert result.num_days == 14
    assert_campaign_rides_the_fast_path(result)
    # The pipeline stays economically sane at scale: rewards are paid on
    # negotiated days and the utility never pays without negotiating.
    assert result.days_negotiated >= 4
    assert result.total_reward_paid > 0
    write_report("campaign_scale_10k", render_entry(entry))
