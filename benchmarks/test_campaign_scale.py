"""Benchmark — multi-week load-management campaigns at town scale.

The ROADMAP's "multi-negotiation campaigns at scale" item: run the full
observe → predict → negotiate → apply → account loop
(:class:`~repro.core.planning.MultiDayCampaign`) over a multi-week horizon on
a 10,000-household population with ``backend="auto"``, so every planned day
that qualifies rides the batched fast path (vectorized, or sharded once the
population crosses the shard threshold on a multi-core host).

The 10k multi-week run is tier-2 (minutes of wall-clock, dominated by the
per-household preference modelling in the planning layer, not by the
negotiations themselves); a 1,000-household week runs in tier-1 as a
``perf_smoke`` guard with a generous budget.
"""

from __future__ import annotations

import time

import pytest

from repro.core.planning import DayAheadPlanner, MultiDayCampaign
from repro.grid.demand import DemandModel
from repro.grid.household import Household
from repro.grid.weather import WeatherCondition
from repro.runtime.rng import RandomSource

#: One cold snap per three-day cycle keeps a steady stream of negotiated days.
CONDITION_CYCLE = (
    WeatherCondition.MILD,
    WeatherCondition.SEVERE_COLD,
    WeatherCondition.COLD,
)


def build_campaign(num_households: int, seed: int = 7) -> MultiDayCampaign:
    random = RandomSource(seed, "campaign_scale")
    households = [
        Household.generate(f"h{i}", random.spawn(f"h{i}"))
        for i in range(num_households)
    ]
    demand_model = DemandModel(households, random.spawn("demand"))
    capacity = demand_model.normal_capacity_for_target(quantile=0.8)
    planner = DayAheadPlanner(households, capacity, random=random.spawn("planner"))
    return MultiDayCampaign(planner, warmup_days=2, seed=seed, backend="auto")


def assert_campaign_rides_the_fast_path(result) -> None:
    """Every negotiated day must have run through a batched backend."""
    negotiated = [day for day in result.days if day.negotiated]
    assert negotiated, "the cold-snap cycle should force at least one negotiation"
    for day in negotiated:
        backend = day.outcome.negotiation.metadata["backend"]
        assert backend in ("vectorized", "sharded"), (
            f"day {day.day_index} fell back to {backend!r}"
        )


@pytest.mark.perf_smoke
def test_campaign_week_300_households_within_budget():
    """Tier-1 guard: a 300-household week (plan + negotiate + account every
    day) stays under a generous budget and rides the batched backends.  The
    run takes ~5 s — dominated by the planning layer — and the budget leaves
    an order of magnitude of headroom for slow CI machines."""
    campaign = build_campaign(300)
    start = time.perf_counter()
    result = campaign.run(num_days=6, conditions=CONDITION_CYCLE)
    elapsed = time.perf_counter() - start
    assert result.num_days == 6
    assert_campaign_rides_the_fast_path(result)
    assert result.total_reward_paid >= 0
    assert elapsed < 60.0, f"300-household week took {elapsed:.1f}s"


@pytest.mark.tier2
def test_campaign_multiweek_10k_households(write_report):
    """The ROADMAP's 10k-household multi-week campaign benchmark: two weeks of
    day-ahead planning over 10,000 households with ``backend="auto"``."""
    campaign = build_campaign(10_000)
    start = time.perf_counter()
    result = campaign.run(num_days=14, conditions=CONDITION_CYCLE)
    elapsed = time.perf_counter() - start
    assert result.num_days == 14
    assert_campaign_rides_the_fast_path(result)
    # The pipeline stays economically sane at scale: rewards are paid on
    # negotiated days and the utility never pays without negotiating.
    assert result.days_negotiated >= 4
    assert result.total_reward_paid > 0
    lines = [
        "campaign — 10k households, 14 days (backend=auto)",
        f"wall_seconds: {elapsed:.2f}",
        f"days_negotiated: {result.days_negotiated}",
        f"total_reward_paid: {result.total_reward_paid:.2f}",
        f"total_net_benefit: {result.total_net_benefit:.2f}",
    ]
    for day in result.days:
        row = day.as_row()
        backend = (
            day.outcome.negotiation.metadata["backend"]
            if day.outcome is not None and day.outcome.negotiation is not None
            else "-"
        )
        lines.append(f"  day {row['day']:>2}: negotiated={row['negotiated']} backend={backend}")
    write_report("campaign_scale_10k", "\n".join(lines))
