"""Benchmark — strategy-slot ablations (DESIGN.md Section 5).

Not a paper figure: these quantify the strategy slots the paper's Figures 3
and 5 leave open (bid acceptance, customer bidding policy, announcement
determination) on fixed populations.
"""

from __future__ import annotations

from repro.experiments.ablations import run_ablations


def test_strategy_ablations(benchmark, write_report):
    result = benchmark.pedantic(
        run_ablations, kwargs={"num_households": 25, "seed": 0}, iterations=1, rounds=2
    )
    rows = {(row["ablation"], row["variant"]): row for row in result.rows()}

    # A1: selective acceptance pays no more than accept-all.
    assert (
        rows[("bid_acceptance", "selective")]["total_reward_paid"]
        <= rows[("bid_acceptance", "accept_all")]["total_reward_paid"]
    )
    # A2: both customer policies reduce the peak; expected-gain bidding never
    # lowers aggregate customer surplus.
    assert rows[("bidding_policy", "highest_acceptable")]["peak_reduction_fraction"] > 0
    assert rows[("bidding_policy", "expected_gain")]["peak_reduction_fraction"] > 0
    assert (
        rows[("bidding_policy", "expected_gain")]["customer_surplus"]
        >= rows[("bidding_policy", "highest_acceptable")]["customer_surplus"] - 1e-9
    )
    # A3: both announcement policies produce working negotiations.
    assert rows[("announcement_policy", "generate_and_select")]["rounds"] >= 1
    assert rows[("announcement_policy", "statistical_optimisation")]["rounds"] >= 1

    write_report("ablations_strategy_slots", result.render())
