"""Benchmark E6 — offer vs request-for-bids vs reward-tables (Section 3.2.4)."""

from __future__ import annotations

from repro.experiments.method_comparison import run_method_comparison


def test_method_comparison(benchmark, write_report):
    result = benchmark.pedantic(
        run_method_comparison,
        kwargs={"num_households": 30, "seeds": (0, 1)},
        iterations=1,
        rounds=2,
    )
    metrics = {m.method: m for m in result.metrics()}
    assert set(metrics) == {"offer", "request_for_bids", "reward_tables"}

    # Section 3.2.1: the offer method needs exactly one round — "it is very fast".
    assert metrics["offer"].mean_rounds == 1
    # Section 3.2.2: the request-for-bids method entails "a more complex and
    # time consuming negotiation process" — more rounds than the offer method.
    assert metrics["request_for_bids"].mean_rounds > metrics["offer"].mean_rounds
    # The reward-table method sits between the two in rounds and gives
    # customers influence (non-zero participation and surplus).
    assert metrics["reward_tables"].mean_rounds >= 1
    assert metrics["reward_tables"].mean_participation > 0
    assert metrics["reward_tables"].mean_customer_surplus >= 0
    # All methods reduce the peak on this population.
    for metric in metrics.values():
        assert metric.mean_peak_reduction_fraction > 0

    write_report("E6_method_comparison", result.render())
