"""Benchmark E4 — regenerate Figures 8 and 9 (Customer Agent per round)."""

from __future__ import annotations

from repro.experiments.fig8_fig9_customer_rounds import PAPER_REFERENCE, run_customer_rounds


def test_fig8_fig9_customer_rounds(benchmark, write_report):
    result = benchmark.pedantic(run_customer_rounds, iterations=1, rounds=5)
    measured = result.measured()

    # The requirement table anchor points the paper states explicitly.
    assert measured["required_reward_at_0.3"] == PAPER_REFERENCE["required_reward_at_0.3"]
    assert measured["required_reward_at_0.4"] == PAPER_REFERENCE["required_reward_at_0.4"]

    # The per-round choices: 0.2, then 0.4, then 0.4 — exactly as in the paper.
    assert measured["round1_bid"] == PAPER_REFERENCE["round1_bid"]
    assert measured["round2_bid"] == PAPER_REFERENCE["round2_bid"]
    assert measured["round3_bid"] == PAPER_REFERENCE["round3_bid"]

    # Every comparison row matches exactly.
    assert all(row["match"] for row in result.comparison_rows())
    write_report("E4_fig8_fig9_customer_rounds", result.render())


def test_fig8_customer_bids_highest_acceptable(benchmark, write_report):
    """The chosen bid equals the highest acceptable cut-down in every round."""
    result = benchmark.pedantic(run_customer_rounds, iterations=1, rounds=5)
    for row in result.rows():
        assert row["chosen_bid"] == row["highest_acceptable"]
    write_report(
        "E4_customer_choice_consistency",
        "\n".join(
            f"round {row['round']}: highest acceptable {row['highest_acceptable']:.1f}, "
            f"chosen {row['chosen_bid']:.1f}"
            for row in result.rows()
        ),
    )
