"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or one of the
extension experiments in DESIGN.md) and, besides timing it with
pytest-benchmark, writes the rendered plain-text artefact to
``benchmarks/reports/`` so the regenerated "figures" can be inspected after a
run of ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def write_report(report_dir):
    """Write one experiment's rendered artefact to benchmarks/reports/<name>.txt."""

    def _write(name: str, content: str) -> Path:
        path = report_dir / f"{name}.txt"
        path.write_text(content + "\n", encoding="utf-8")
        return path

    return _write
