"""Benchmark E7 — the effect of β (constant sweep plus adaptive β)."""

from __future__ import annotations

from repro.experiments.beta_sweep import run_beta_sweep


def test_beta_sweep(benchmark, write_report):
    result = benchmark.pedantic(
        run_beta_sweep,
        kwargs={"betas": (0.5, 1.0, 2.0, 3.0, 4.0), "include_adaptive": True},
        iterations=1,
        rounds=2,
    )
    # Among runs that reach the overuse target, higher beta never needs more rounds.
    assert result.rounds_nonincreasing_in_beta()
    successful = result.successful_entries()
    assert len(successful) >= 2
    # A very small beta saturates before solving the peak — the trade-off the
    # paper's Section 7 asks to investigate.
    tiny = result.entry("0.50")
    assert tiny.result.termination_reason.value == "reward_saturated"
    # The adaptive controller also solves the peak.
    adaptive = result.entry("adaptive")
    assert adaptive.result.final_overuse <= 15.0
    write_report("E7_beta_sweep", result.render())


def test_beta_speed_cost_tradeoff(benchmark, write_report):
    """Faster convergence (higher β) never pays less reward than slower convergence."""
    result = benchmark.pedantic(
        run_beta_sweep,
        kwargs={"betas": (1.0, 2.0, 4.0), "include_adaptive": False},
        iterations=1,
        rounds=2,
    )
    successful = sorted(result.successful_entries(), key=lambda e: e.beta)
    rounds = [e.result.rounds for e in successful]
    assert rounds == sorted(rounds, reverse=True) or len(set(rounds)) == 1
    write_report(
        "E7_speed_cost_tradeoff",
        "\n".join(
            f"beta={e.label}: rounds={e.result.rounds}, "
            f"reward_paid={e.result.total_reward_paid:.1f}"
            for e in successful
        ),
    )
