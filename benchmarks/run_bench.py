#!/usr/bin/env python
"""Standalone perf-bench entry point for the E9 scalability sweep.

Runs the extended fast-path sweep (10 -> 10,000 households by default) plus
the object-path reference sweep, writes the plain-text report to
``benchmarks/reports/E9_scalability_fast.txt`` and the machine-readable perf
trajectory to ``benchmarks/BENCH_scalability.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --sizes 10 100 1000 --seed 3
    PYTHONPATH=src python benchmarks/run_bench.py --skip-object-path
    PYTHONPATH=src python benchmarks/run_bench.py --check

The JSON artefact is what CI and future scaling PRs diff against; the text
report is for humans.  ``--check`` runs a fresh fast-path sweep over the
committed baseline's sizes and exits non-zero when the negotiation behaviour
drifts (rounds/messages/peak reduction are deterministic and must match
exactly) or the wall-clock regresses beyond per-size tolerances.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
REPO_ROOT = BENCH_DIR.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.scalability import (  # noqa: E402  (path setup above)
    FAST_PATH_SIZES,
    run_scalability,
    write_benchmark_json,
)

#: Object-path reference sizes: kept small, the object path is the slow one.
OBJECT_PATH_SIZES: tuple[int, ...] = (10, 50, 200)

#: Wall-clock regression tolerances for ``--check``, as (max population size,
#: allowed slowdown factor) bands.  Small runs are millisecond-scale and
#: dominated by scheduler noise, so they get the widest band; an absolute
#: floor below keeps sub-10ms entries from flagging at all.
WALL_TOLERANCE_BANDS: tuple[tuple[int, float], ...] = (
    (200, 4.0),
    (2000, 3.0),
    (10**9, 2.0),
)
#: Minimum wall-clock (seconds) a regression must exceed before it counts.
WALL_ABSOLUTE_FLOOR_SECONDS = 0.25


def wall_tolerance_for(size: int) -> float:
    """Allowed slowdown factor over the committed baseline for one size."""
    for upper, factor in WALL_TOLERANCE_BANDS:
        if size <= upper:
            return factor
    return WALL_TOLERANCE_BANDS[-1][1]  # pragma: no cover - bands end at inf


def check_against_baseline(baseline_path: Path) -> int:
    """Compare a fresh fast-path sweep against the committed trajectory.

    Returns 0 when behaviour matches and wall-clock stays within tolerance,
    1 on any regression, 2 when the baseline artefact is missing/unreadable.
    """
    try:
        payload = json.loads(baseline_path.read_text(encoding="utf-8"))
        baseline = payload["fast_path"]
        baseline_entries = {
            int(entry["num_households"]): entry for entry in baseline["entries"]
        }
        seed = int(payload.get("seed", 0))
    except (OSError, KeyError, ValueError, TypeError) as error:
        print(f"cannot read baseline {baseline_path}: {error}", file=sys.stderr)
        return 2
    sizes = tuple(sorted(baseline_entries))
    print(f"perf check against {baseline_path} (sizes={list(sizes)} seed={seed})")
    fresh = run_scalability(sizes=sizes, seed=seed, fast=True)
    failures: list[str] = []
    for entry in fresh.entries:
        size = entry.num_households
        row = entry.as_row()
        base = baseline_entries[size]
        # Deterministic behaviour must reproduce the baseline exactly.
        for key in ("rounds", "messages"):
            if row[key] != base[key]:
                failures.append(
                    f"size {size}: {key} changed {base[key]} -> {row[key]}"
                )
        if abs(row["peak_reduction_fraction"] - base["peak_reduction_fraction"]) > 1e-9:
            failures.append(
                f"size {size}: peak_reduction_fraction changed "
                f"{base['peak_reduction_fraction']} -> {row['peak_reduction_fraction']}"
            )
        # Wall-clock gets a per-size tolerance band plus an absolute floor.
        allowed = max(
            base["wall_seconds"] * wall_tolerance_for(size),
            WALL_ABSOLUTE_FLOOR_SECONDS,
        )
        status = "ok"
        if row["wall_seconds"] > allowed:
            failures.append(
                f"size {size}: wall_seconds {row['wall_seconds']:.4f} exceeds "
                f"{allowed:.4f} (baseline {base['wall_seconds']:.4f} x "
                f"{wall_tolerance_for(size):.1f})"
            )
            status = "REGRESSION"
        print(
            f"  size {size:>6}: wall {row['wall_seconds']:.4f}s "
            f"(baseline {base['wall_seconds']:.4f}s, allowed {allowed:.4f}s) "
            f"rounds {row['rounds']} messages {row['messages']} [{status}]"
        )
    if failures:
        print("\nperf check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf check passed: behaviour identical, wall-clock within tolerances")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(FAST_PATH_SIZES),
        help="fast-path population sizes to sweep",
    )
    parser.add_argument(
        "--object-sizes", type=int, nargs="+", default=list(OBJECT_PATH_SIZES),
        help="object-path reference sizes (kept small on purpose)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--skip-object-path", action="store_true",
        help="only run the fast path (no reference sweep, no speedup entry)",
    )
    parser.add_argument(
        "--json", type=Path, default=BENCH_DIR / "BENCH_scalability.json",
        help="where to write the machine-readable trajectory",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare a fresh sweep against the committed trajectory instead of "
             "rewriting it; exits non-zero on regression",
    )
    arguments = parser.parse_args(argv)

    if arguments.check:
        # The check must replay the committed baseline exactly, so sweep
        # parameters cannot be overridden alongside it.
        if (
            arguments.sizes != list(FAST_PATH_SIZES)
            or arguments.object_sizes != list(OBJECT_PATH_SIZES)
            or arguments.seed != 0
            or arguments.skip_object_path
        ):
            parser.error(
                "--check replays the committed baseline's sizes and seed; it "
                "cannot be combined with --sizes/--object-sizes/--seed/"
                "--skip-object-path"
            )
        return check_against_baseline(arguments.json)

    print(f"fast-path sweep: sizes={arguments.sizes} seed={arguments.seed}")
    fast_result = run_scalability(
        sizes=tuple(arguments.sizes), seed=arguments.seed, fast=True
    )
    print(fast_result.render())

    object_result = None
    if not arguments.skip_object_path:
        print(f"object-path reference: sizes={arguments.object_sizes}")
        object_result = run_scalability(
            sizes=tuple(arguments.object_sizes), seed=arguments.seed, fast=False
        )
        print(object_result.render())

    report_dir = BENCH_DIR / "reports"
    report_dir.mkdir(exist_ok=True)
    report_path = report_dir / "E9_scalability_fast.txt"
    report = fast_result.render()
    if object_result is not None:
        report += "\n\n" + object_result.render()
    report_path.write_text(report + "\n", encoding="utf-8")
    json_path = write_benchmark_json(
        arguments.json, fast_result, object_result, seed=arguments.seed
    )
    print(f"wrote {report_path}")
    print(f"wrote {json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
