#!/usr/bin/env python
"""Standalone perf-bench entry point for the E9 scalability sweep.

Runs the extended fast-path sweep (10 -> 10,000 households by default), the
sharded-runtime sweep (5,000 -> 50,000 households, one worker per core), the
object-path reference sweep and the campaign benchmarks — the 10k-household
14-day pipeline (planning-phase vs negotiation-phase wall-clock split,
columnar and scalar planning, lazy and array-round variants, each asserted
row-identical to the eager/object oracle), the 100k ``lazy_large`` point,
the million-household ``campaign_xlarge`` point (both lazy + bounded history
window + no bid retention + ``rounds="array"``, tracemalloc'd) and the
mixed-town ``hetero`` point (bucketed-fleet planning vs the scalar fallback
it replaces, with a speedup acceptance floor) — and writes
the plain-text reports to ``benchmarks/reports/`` and the machine-readable
perf trajectories to ``benchmarks/BENCH_scalability.json`` and
``benchmarks/BENCH_campaign.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --sizes 10 100 1000 --seed 3
    PYTHONPATH=src python benchmarks/run_bench.py --shards 8 --sharded-sizes 10000 50000
    PYTHONPATH=src python benchmarks/run_bench.py --skip-object-path --skip-sharded
    PYTHONPATH=src python benchmarks/run_bench.py --skip-campaign-scalar
    PYTHONPATH=src python benchmarks/run_bench.py --check

The JSON artefacts are what CI and future scaling PRs diff against; the text
reports are for humans.  ``--check`` replays the committed baselines' sweeps
and the columnar campaign and exits non-zero when behaviour drifts
(rounds/messages/peak reduction/negotiated days/reward totals are
deterministic and must match exactly across backends — the sharded runtime
and the columnar planning path are bit-identical by contract) or wall-clock
regresses beyond the tolerances.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
REPO_ROOT = BENCH_DIR.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.agents.sharded import default_shard_count  # noqa: E402  (path setup)
from repro.experiments.campaign_bench import (  # noqa: E402  (path setup above)
    CAMPAIGN_DAYS,
    CAMPAIGN_HOUSEHOLDS,
    CAMPAIGN_SEED,
    HETERO_CAMPAIGN_DAYS,
    HETERO_MIN_PLANNING_SPEEDUP,
    LARGE_CAMPAIGN_HOUSEHOLDS,
    LARGE_CAMPAIGN_WINDOW,
    XLARGE_CAMPAIGN_HOUSEHOLDS,
    render_entry,
    run_campaign_bench,
    write_campaign_json,
)
from repro.experiments.scalability import (  # noqa: E402  (path setup above)
    FAST_PATH_SIZES,
    SHARDED_SIZES,
    run_scalability,
    write_benchmark_json,
)
from repro.experiments.overload_bench import (  # noqa: E402  (path setup above)
    OVERLOAD_BURST_FACTOR,
    OVERLOAD_HOUSEHOLDS,
    OVERLOAD_MAX_QUEUE,
    run_overload_bench,
    write_overload_json,
)
from repro.experiments.serving_bench import (  # noqa: E402  (path setup above)
    SERVING_HOUSEHOLDS,
    SERVING_MAX_BATCH,
    SERVING_MAX_WAIT,
    SERVING_REQUESTS,
    run_serving_bench,
    write_serving_json,
)

#: Object-path reference sizes: kept small, the object path is the slow one.
OBJECT_PATH_SIZES: tuple[int, ...] = (10, 50, 200)

#: Wall-clock regression tolerances for ``--check``, as (max population size,
#: allowed slowdown factor) bands.  Small runs are millisecond-scale and
#: dominated by scheduler noise, so they get the widest band; an absolute
#: floor below keeps sub-10ms entries from flagging at all.
WALL_TOLERANCE_BANDS: tuple[tuple[int, float], ...] = (
    (200, 4.0),
    (2000, 3.0),
    (10**9, 2.0),
)
#: Minimum wall-clock (seconds) a regression must exceed before it counts.
WALL_ABSOLUTE_FLOOR_SECONDS = 0.25

#: Campaign-phase wall-clock tolerance for ``--check``: the replay's
#: planning/negotiation phases may be at most this factor slower than the
#: committed baseline (one band — the campaign runs at a single size).
CAMPAIGN_WALL_TOLERANCE = 3.0
#: Absolute floor (seconds) below which campaign phase regressions are noise.
CAMPAIGN_WALL_FLOOR_SECONDS = 5.0

#: Peak-memory tolerance for the ``lazy_large`` campaign replay: the fresh
#: tracemalloc peak may be at most this factor above the committed baseline.
#: tracemalloc counts live Python/numpy allocations, which are deterministic
#: up to allocator/runtime details, so the band is tighter than wall-clock;
#: the absolute floor keeps interpreter-version noise from flagging.
CAMPAIGN_MEMORY_TOLERANCE = 1.5
CAMPAIGN_MEMORY_FLOOR_MB = 256.0

#: Serving-stage acceptance: coalesced throughput must beat sequential by at
#: least this factor on the committed 64-request workload.
SERVING_MIN_SPEEDUP = 3.0
#: Wall-clock tolerance for the serving replay's concurrent phase.
SERVING_WALL_TOLERANCE = 3.0
SERVING_WALL_FLOOR_SECONDS = 5.0

#: Overload-stage acceptance: the p99 queue wait of a replay may be at most
#: this factor above the committed baseline, with an absolute floor below
#: which scheduler noise never flags.  The behavioural gates (zero hung
#: requests, universal bit-identity, sheds carrying Retry-After, the deadline
#: probe expiring) are absolute — no tolerance.
OVERLOAD_P99_TOLERANCE = 4.0
OVERLOAD_P99_FLOOR_SECONDS = 2.0


def wall_tolerance_for(size: int) -> float:
    """Allowed slowdown factor over the committed baseline for one size."""
    for upper, factor in WALL_TOLERANCE_BANDS:
        if size <= upper:
            return factor
    return WALL_TOLERANCE_BANDS[-1][1]  # pragma: no cover - bands end at inf


def _check_sweep(
    label: str,
    baseline_entries: dict[int, dict],
    fresh_entries: list,
    failures: list[str],
) -> None:
    """Behaviour must match the baseline exactly; wall-clock within bands."""
    for entry in fresh_entries:
        size = entry.num_households
        row = entry.as_row()
        base = baseline_entries[size]
        # Deterministic behaviour must reproduce the baseline exactly.
        for key in ("rounds", "messages"):
            if row[key] != base[key]:
                failures.append(
                    f"{label} size {size}: {key} changed {base[key]} -> {row[key]}"
                )
        if abs(row["peak_reduction_fraction"] - base["peak_reduction_fraction"]) > 1e-9:
            failures.append(
                f"{label} size {size}: peak_reduction_fraction changed "
                f"{base['peak_reduction_fraction']} -> {row['peak_reduction_fraction']}"
            )
        # Wall-clock gets a per-size tolerance band plus an absolute floor.
        allowed = max(
            base["wall_seconds"] * wall_tolerance_for(size),
            WALL_ABSOLUTE_FLOOR_SECONDS,
        )
        status = "ok"
        if row["wall_seconds"] > allowed:
            failures.append(
                f"{label} size {size}: wall_seconds {row['wall_seconds']:.4f} "
                f"exceeds {allowed:.4f} (baseline {base['wall_seconds']:.4f} x "
                f"{wall_tolerance_for(size):.1f})"
            )
            status = "REGRESSION"
        print(
            f"  [{label}] size {size:>6}: wall {row['wall_seconds']:.4f}s "
            f"(baseline {base['wall_seconds']:.4f}s, allowed {allowed:.4f}s) "
            f"rounds {row['rounds']} messages {row['messages']} [{status}]"
        )


def _hetero_backend_gate(label: str, row: dict, failures: list[str]) -> None:
    """Every negotiated day of a mixed town must ride a batched backend.

    A heterogeneous population silently landing on the object path is
    exactly the fallback cliff this benchmark exists to guard against.
    """
    stray = sorted(
        {
            backend
            for backend in row["backends"]
            if backend not in ("-", "vectorized", "sharded", "async")
        }
    )
    if stray:
        failures.append(
            f"{label}: negotiated days ran unbatched backends {stray}"
        )


def check_campaign_baseline(
    baseline_path: Path, failures: list[str], skip_hetero: bool = False
) -> None:
    """Replay the committed campaign trajectory and compare.

    Campaign *behaviour* (which days negotiated, total reward) is
    deterministic and must reproduce the baseline exactly; the planning- and
    negotiation-phase wall-clock each get a tolerance factor plus an absolute
    floor.  A missing artefact is reported as a failure — the campaign
    trajectory ships with the repository.
    """
    try:
        payload = json.loads(baseline_path.read_text(encoding="utf-8"))
        base = payload["columnar"]
        seed = int(payload.get("seed", CAMPAIGN_SEED))
    except (OSError, KeyError, ValueError, TypeError) as error:
        failures.append(f"cannot read campaign baseline {baseline_path}: {error}")
        return
    print(
        f"campaign check against {baseline_path} "
        f"({base['num_households']} households x {base['num_days']} days seed={seed})"
    )
    entry = run_campaign_bench(
        num_households=int(base["num_households"]),
        num_days=int(base["num_days"]),
        seed=seed,
        backend=str(base.get("backend", "auto")),
        planning="columnar",
        rounds=str(base.get("rounds", "object")),
    )
    _compare_campaign_entry("campaign", base, entry, failures)
    large = payload.get("lazy_large")
    if large is not None:
        print(
            f"lazy-large campaign check "
            f"({large['num_households']} households x {large['num_days']} days, "
            f"materialise=lazy, history_window={large.get('history_window')}, "
            f"rounds={large.get('rounds', 'object')})"
        )
        large_entry = run_campaign_bench(
            num_households=int(large["num_households"]),
            num_days=int(large["num_days"]),
            seed=seed,
            backend=str(large.get("backend", "auto")),
            planning="columnar",
            materialise="lazy",
            history_window=large.get("history_window"),
            rounds=str(large.get("rounds", "object")),
            retain_logs=False,
            track_memory=True,
        )
        _compare_campaign_entry("lazy_large", large, large_entry, failures)
    xlarge = payload.get("xlarge")
    if xlarge is not None:
        print(
            f"xlarge campaign check "
            f"({xlarge['num_households']} households x {xlarge['num_days']} days, "
            f"materialise=lazy, history_window={xlarge.get('history_window')}, "
            f"rounds={xlarge.get('rounds', 'object')})"
        )
        xlarge_entry = run_campaign_bench(
            num_households=int(xlarge["num_households"]),
            num_days=int(xlarge["num_days"]),
            seed=seed,
            backend=str(xlarge.get("backend", "auto")),
            planning="columnar",
            materialise="lazy",
            history_window=xlarge.get("history_window"),
            rounds=str(xlarge.get("rounds", "object")),
            retain_logs=False,
            track_memory=True,
        )
        _compare_campaign_entry("xlarge", xlarge, xlarge_entry, failures)
    hetero = payload.get("hetero")
    if hetero is not None and not skip_hetero:
        print(
            f"hetero campaign check "
            f"({hetero['num_households']} households x {hetero['num_days']} days, "
            f"town={hetero.get('town', 'mixed')})"
        )
        hetero_entry = run_campaign_bench(
            num_households=int(hetero["num_households"]),
            num_days=int(hetero["num_days"]),
            seed=seed,
            backend=str(hetero.get("backend", "auto")),
            planning="columnar",
            rounds=str(hetero.get("rounds", "object")),
            town=str(hetero.get("town", "mixed")),
        )
        _compare_campaign_entry("hetero", hetero, hetero_entry, failures)
        _hetero_backend_gate("hetero", hetero_entry.as_row(), failures)
        speedup = payload.get("hetero_planning_speedup")
        if speedup is None:
            failures.append(
                "hetero: baseline records no hetero_planning_speedup"
            )
        elif float(speedup) < HETERO_MIN_PLANNING_SPEEDUP:
            failures.append(
                f"hetero: recorded planning speedup {float(speedup):.1f}x "
                f"below the {HETERO_MIN_PLANNING_SPEEDUP:.1f}x floor"
            )


def _compare_campaign_entry(
    label: str, base: dict, entry, failures: list[str]
) -> None:
    """Exact behaviour, banded wall-clock, banded peak memory (when recorded)."""
    row = entry.as_row()
    for key in ("days_negotiated", "negotiated_days", "total_reward_paid"):
        if row[key] != base[key]:
            failures.append(
                f"{label}: {key} changed {base[key]} -> {row[key]}"
            )
    # Provenance: the effective rounds modes must reproduce the baseline's
    # (an array baseline silently falling back to object rounds is a bug).
    if "rounds_modes" in base and row.get("rounds_modes") != base["rounds_modes"]:
        failures.append(
            f"{label}: rounds_modes changed {base['rounds_modes']} -> "
            f"{row.get('rounds_modes')}"
        )
    for phase in ("planning_seconds", "negotiation_seconds"):
        allowed = max(
            float(base[phase]) * CAMPAIGN_WALL_TOLERANCE, CAMPAIGN_WALL_FLOOR_SECONDS
        )
        status = "ok"
        if row[phase] > allowed:
            failures.append(
                f"{label}: {phase} {row[phase]:.2f} exceeds {allowed:.2f} "
                f"(baseline {float(base[phase]):.2f} x {CAMPAIGN_WALL_TOLERANCE:.1f})"
            )
            status = "REGRESSION"
        print(
            f"  [{label}] {phase}: {row[phase]:.2f}s "
            f"(baseline {float(base[phase]):.2f}s, allowed {allowed:.2f}s) [{status}]"
        )
    baseline_peak = base.get("peak_traced_mb")
    fresh_peak = row.get("peak_traced_mb")
    if baseline_peak is not None and fresh_peak is not None:
        allowed = max(
            float(baseline_peak) * CAMPAIGN_MEMORY_TOLERANCE, CAMPAIGN_MEMORY_FLOOR_MB
        )
        status = "ok"
        if fresh_peak > allowed:
            failures.append(
                f"{label}: peak_traced_mb {fresh_peak:.1f} exceeds {allowed:.1f} "
                f"(baseline {float(baseline_peak):.1f} x "
                f"{CAMPAIGN_MEMORY_TOLERANCE:.2f})"
            )
            status = "REGRESSION"
        print(
            f"  [{label}] peak_traced_mb: {fresh_peak:.1f} "
            f"(baseline {float(baseline_peak):.1f}, allowed {allowed:.1f}) [{status}]"
        )


def check_serving_baseline(baseline_path: Path, failures: list[str]) -> None:
    """Replay the committed serving workload and compare.

    Negotiation *behaviour* across the 64 requests (total rounds, total
    reward) is deterministic and must reproduce the baseline exactly; the
    coalescing invariants (kernel-pass budget, minimum speedup over the
    sequential phase) are absolute acceptance floors, not baselines; the
    concurrent phase's wall-clock gets a tolerance factor plus a floor.
    """
    try:
        payload = json.loads(baseline_path.read_text(encoding="utf-8"))
        base = payload["serving"]
    except (OSError, KeyError, ValueError, TypeError) as error:
        failures.append(f"cannot read serving baseline {baseline_path}: {error}")
        return
    print(
        f"serving check against {baseline_path} "
        f"({base['num_requests']} requests x {base['households']} households, "
        f"max_batch={base['max_batch']})"
    )
    entry = run_serving_bench(
        num_requests=int(base["num_requests"]),
        households=int(base["households"]),
        max_batch=int(base["max_batch"]),
        max_wait=float(base["max_wait"]),
    )
    row = entry.as_row()
    for key in ("total_rounds", "total_reward_paid"):
        if row[key] != base[key]:
            failures.append(f"serving: {key} changed {base[key]} -> {row[key]}")
    pass_budget = -(-int(base["num_requests"]) // int(base["max_batch"]))  # ceil
    if row["kernel_passes"] > pass_budget:
        failures.append(
            f"serving: {row['num_requests']} requests took "
            f"{row['kernel_passes']} kernel passes (budget {pass_budget})"
        )
    if row["speedup"] < SERVING_MIN_SPEEDUP:
        failures.append(
            f"serving: coalesced speedup {row['speedup']:.2f}x below the "
            f"{SERVING_MIN_SPEEDUP:.1f}x acceptance floor"
        )
    allowed = max(
        float(base["concurrent_seconds"]) * SERVING_WALL_TOLERANCE,
        SERVING_WALL_FLOOR_SECONDS,
    )
    status = "ok"
    if row["concurrent_seconds"] > allowed:
        failures.append(
            f"serving: concurrent_seconds {row['concurrent_seconds']:.2f} exceeds "
            f"{allowed:.2f} (baseline {float(base['concurrent_seconds']):.2f} x "
            f"{SERVING_WALL_TOLERANCE:.1f})"
        )
        status = "REGRESSION"
    print(
        f"  [serving] concurrent {row['concurrent_seconds']:.2f}s / sequential "
        f"{row['sequential_seconds']:.2f}s = {row['speedup']:.1f}x, "
        f"{row['kernel_passes']} kernel passes (budget {pass_budget}, occupancy "
        f"{row['mean_occupancy']:.1f}) [{status}]"
    )


def _overload_gates(label: str, row: dict, failures: list[str]) -> None:
    """The absolute overload invariants — no tolerance, every run."""
    if row["hung"] != 0:
        failures.append(
            f"{label}: {row['hung']} request(s) hung (no terminal state in budget)"
        )
    if row["bit_mismatches"] != 0:
        failures.append(
            f"{label}: {row['bit_mismatches']} request(s) diverged from their "
            f"solo payloads under overload"
        )
    expected_identical = row["num_requests"]  # burst + the retried sheds
    if row["bit_identical"] != expected_identical:
        failures.append(
            f"{label}: only {row['bit_identical']}/{expected_identical} "
            f"requests completed bit-identical to solo runs"
        )
    if row["shed"] == 0:
        failures.append(
            f"{label}: the {row['burst_factor']}x burst shed nothing — the "
            f"workload no longer overloads the {row['max_queue']}-slot queue"
        )
    if row["sheds_with_retry_after"] != row["shed"]:
        failures.append(
            f"{label}: {row['shed'] - row['sheds_with_retry_after']} shed(s) "
            f"answered without a 429 + Retry-After"
        )
    if row["retried_to_completion"] != row["shed"]:
        failures.append(
            f"{label}: only {row['retried_to_completion']}/{row['shed']} shed "
            f"requests healed to completion through the retrying client"
        )
    if not row["deadline_probe_expired"]:
        failures.append(
            f"{label}: the 1ms-deadline probe did not terminate as "
            f"expired/deadline_exceeded"
        )


def check_overload_baseline(baseline_path: Path, failures: list[str]) -> None:
    """Replay the committed overload burst and compare.

    Which individual requests get shed is timing-dependent, so the gates are
    per-run invariants rather than exact cross-run counts: every request must
    terminate (zero hung), every completion must be bit-identical to a solo
    run, every shed must be an honest 429 with Retry-After and must heal to
    completion through the retrying client, the deadline probe must expire
    cleanly, and the p99 queue wait must stay within a tolerance band of the
    committed baseline.
    """
    try:
        payload = json.loads(baseline_path.read_text(encoding="utf-8"))
        base = payload["overload"]
    except (OSError, KeyError, ValueError, TypeError) as error:
        failures.append(f"cannot read overload baseline {baseline_path}: {error}")
        return
    print(
        f"overload check against {baseline_path} "
        f"({base['num_requests']} requests burst at {base['burst_factor']}x a "
        f"{base['max_queue']}-slot queue, {base['households']} households each)"
    )
    entry = run_overload_bench(
        max_queue=int(base["max_queue"]),
        burst_factor=int(base["burst_factor"]),
        households=int(base["households"]),
    )
    row = entry.as_row()
    _overload_gates("overload", row, failures)
    allowed = max(
        float(base["p99_queue_wait"]) * OVERLOAD_P99_TOLERANCE,
        OVERLOAD_P99_FLOOR_SECONDS,
    )
    status = "ok"
    if row["p99_queue_wait"] > allowed:
        failures.append(
            f"overload: p99_queue_wait {row['p99_queue_wait']:.3f}s exceeds "
            f"{allowed:.3f}s (baseline {float(base['p99_queue_wait']):.3f}s x "
            f"{OVERLOAD_P99_TOLERANCE:.1f})"
        )
        status = "REGRESSION"
    print(
        f"  [overload] admitted {row['admitted']} shed {row['shed']} hung "
        f"{row['hung']} bit-identical {row['bit_identical']}/"
        f"{row['num_requests']}, p99 queue wait {row['p99_queue_wait']:.3f}s "
        f"(baseline {float(base['p99_queue_wait']):.3f}s, allowed "
        f"{allowed:.3f}s) [{status}]"
    )


def check_against_baseline(
    baseline_path: Path,
    campaign_path: Path | None = None,
    serving_path: Path | None = None,
    overload_path: Path | None = None,
    skip_campaign_hetero: bool = False,
) -> int:
    """Compare fresh sweeps against the committed trajectory.

    Replays the fast-path sweep, the sharded sweep when the baseline carries
    one (at the baseline's shard count), the campaign trajectory when
    ``campaign_path`` is given, the serving workload when ``serving_path``
    is given and the overload burst when ``overload_path`` is given.  Returns
    0 when behaviour matches and wall-clock stays within tolerance, 1 on any
    regression, 2 when the scalability baseline artefact is
    missing/unreadable.
    """
    try:
        payload = json.loads(baseline_path.read_text(encoding="utf-8"))
        baseline = payload["fast_path"]
        baseline_entries = {
            int(entry["num_households"]): entry for entry in baseline["entries"]
        }
        seed = int(payload.get("seed", 0))
        sharded_baseline = payload.get("sharded_path")
        if sharded_baseline is not None:
            sharded_entries = {
                int(entry["num_households"]): entry
                for entry in sharded_baseline["entries"]
            }
            shards = int(sharded_baseline.get("shards") or default_shard_count())
    except (OSError, KeyError, ValueError, TypeError) as error:
        print(f"cannot read baseline {baseline_path}: {error}", file=sys.stderr)
        return 2
    sizes = tuple(sorted(baseline_entries))
    print(f"perf check against {baseline_path} (sizes={list(sizes)} seed={seed})")
    fresh = run_scalability(sizes=sizes, seed=seed, fast=True)
    failures: list[str] = []
    _check_sweep("fast", baseline_entries, fresh.entries, failures)

    if sharded_baseline is not None:
        sharded_sizes = tuple(sorted(sharded_entries))
        print(f"sharded check (sizes={list(sharded_sizes)} shards={shards})")
        fresh_sharded = run_scalability(
            sizes=sharded_sizes, seed=seed, backend="sharded", shards=shards
        )
        _check_sweep("sharded", sharded_entries, fresh_sharded.entries, failures)
        # Cross-backend equivalence: at sizes both sweeps cover, the sharded
        # runtime must reproduce the fast path's behaviour bit for bit.
        fast_fresh = {e.num_households: e.as_row() for e in fresh.entries}
        for entry in fresh_sharded.entries:
            row = entry.as_row()
            fast_row = fast_fresh.get(entry.num_households)
            if fast_row is None:
                continue
            for key in ("rounds", "messages", "peak_reduction_fraction"):
                if row[key] != fast_row[key]:
                    failures.append(
                        f"sharded size {entry.num_households}: {key} diverges "
                        f"from the fast path ({fast_row[key]} -> {row[key]})"
                    )

    if campaign_path is not None:
        check_campaign_baseline(
            campaign_path, failures, skip_hetero=skip_campaign_hetero
        )

    if serving_path is not None:
        check_serving_baseline(serving_path, failures)

    if overload_path is not None:
        check_overload_baseline(overload_path, failures)

    if failures:
        print("\nperf check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf check passed: behaviour identical, wall-clock within tolerances")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(FAST_PATH_SIZES),
        help="fast-path population sizes to sweep",
    )
    parser.add_argument(
        "--object-sizes", type=int, nargs="+", default=list(OBJECT_PATH_SIZES),
        help="object-path reference sizes (kept small on purpose)",
    )
    parser.add_argument(
        "--sharded-sizes", type=int, nargs="+", default=list(SHARDED_SIZES),
        help="sharded-runtime population sizes to sweep",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="worker count for the sharded sweep (default: one per core, min 2)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--skip-object-path", action="store_true",
        help="skip the object-path reference sweep (no speedup entry)",
    )
    parser.add_argument(
        "--skip-sharded", action="store_true",
        help="skip the sharded-runtime sweep",
    )
    parser.add_argument(
        "--json", type=Path, default=BENCH_DIR / "BENCH_scalability.json",
        help="where to write the machine-readable trajectory",
    )
    parser.add_argument(
        "--campaign-json", type=Path, default=BENCH_DIR / "BENCH_campaign.json",
        help="where to write (or read, with --check) the campaign trajectory",
    )
    parser.add_argument(
        "--campaign-households", type=int, default=CAMPAIGN_HOUSEHOLDS,
        help="population size of the campaign benchmark",
    )
    parser.add_argument(
        "--campaign-days", type=int, default=CAMPAIGN_DAYS,
        help="length of the campaign benchmark (days)",
    )
    parser.add_argument(
        "--skip-campaign", action="store_true",
        help="skip the multi-day campaign benchmark",
    )
    parser.add_argument(
        "--skip-campaign-scalar", action="store_true",
        help="skip the scalar-planning reference campaign (no planning_speedup "
             "entry; the scalar run costs minutes at 10k households)",
    )
    parser.add_argument(
        "--campaign-large-households", type=int, default=LARGE_CAMPAIGN_HOUSEHOLDS,
        help="population size of the utility-scale lazy campaign point",
    )
    parser.add_argument(
        "--skip-campaign-hetero", action="store_true",
        help="skip the heterogeneous-town campaign point (no hetero entry / "
             "no hetero replay with --check)",
    )
    parser.add_argument(
        "--skip-campaign-large", action="store_true",
        help="skip the utility-scale lazy campaign point (no lazy_large entry)",
    )
    parser.add_argument(
        "--campaign-xlarge-households", type=int,
        default=XLARGE_CAMPAIGN_HOUSEHOLDS,
        help="population size of the million-household array-round point",
    )
    parser.add_argument(
        "--skip-campaign-xlarge", action="store_true",
        help="skip the million-household array-round point (no xlarge entry)",
    )
    parser.add_argument(
        "--serving-json", type=Path, default=BENCH_DIR / "BENCH_serving.json",
        help="where to write (or read, with --check) the serving trajectory",
    )
    parser.add_argument(
        "--skip-serving", action="store_true",
        help="skip the negotiation-serving throughput benchmark",
    )
    parser.add_argument(
        "--overload-json", type=Path, default=BENCH_DIR / "BENCH_overload.json",
        help="where to write (or read, with --check) the overload trajectory",
    )
    parser.add_argument(
        "--skip-overload", action="store_true",
        help="skip the admission-control overload benchmark",
    )
    parser.add_argument(
        "--campaign-only", action="store_true",
        help="run only the campaign stages (leaves BENCH_scalability.json and "
             "its report untouched)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare a fresh sweep against the committed trajectory instead of "
             "rewriting it; exits non-zero on regression",
    )
    arguments = parser.parse_args(argv)

    if arguments.check:
        # The check must replay the committed baseline exactly, so sweep
        # parameters cannot be overridden alongside it.
        if (
            arguments.sizes != list(FAST_PATH_SIZES)
            or arguments.object_sizes != list(OBJECT_PATH_SIZES)
            or arguments.sharded_sizes != list(SHARDED_SIZES)
            or arguments.shards is not None
            or arguments.seed != 0
            or arguments.skip_object_path
            or arguments.skip_sharded
            or arguments.campaign_households != CAMPAIGN_HOUSEHOLDS
            or arguments.campaign_days != CAMPAIGN_DAYS
            or arguments.campaign_large_households != LARGE_CAMPAIGN_HOUSEHOLDS
            or arguments.campaign_xlarge_households != XLARGE_CAMPAIGN_HOUSEHOLDS
            or arguments.campaign_only
        ):
            parser.error(
                "--check replays the committed baseline's sizes, shards and "
                "seed; it cannot be combined with --sizes/--object-sizes/"
                "--sharded-sizes/--shards/--seed/--skip-object-path/"
                "--skip-sharded/--campaign-households/--campaign-days/"
                "--campaign-large-households/--campaign-xlarge-households/"
                "--campaign-only"
            )
        campaign_path = None if arguments.skip_campaign else arguments.campaign_json
        serving_path = None if arguments.skip_serving else arguments.serving_json
        overload_path = None if arguments.skip_overload else arguments.overload_json
        return check_against_baseline(
            arguments.json, campaign_path, serving_path, overload_path,
            skip_campaign_hetero=arguments.skip_campaign_hetero,
        )

    shards = (
        arguments.shards
        if arguments.shards is not None
        else max(2, default_shard_count())
    )

    report_dir = BENCH_DIR / "reports"
    report_dir.mkdir(exist_ok=True)

    if not arguments.campaign_only:
        print(f"fast-path sweep: sizes={arguments.sizes} seed={arguments.seed}")
        fast_result = run_scalability(
            sizes=tuple(arguments.sizes), seed=arguments.seed, fast=True
        )
        print(fast_result.render())

        sharded_result = None
        if not arguments.skip_sharded:
            print(
                f"sharded sweep: sizes={arguments.sharded_sizes} shards={shards}"
            )
            sharded_result = run_scalability(
                sizes=tuple(arguments.sharded_sizes), seed=arguments.seed,
                backend="sharded", shards=shards,
            )
            print(sharded_result.render())

        object_result = None
        if not arguments.skip_object_path:
            print(f"object-path reference: sizes={arguments.object_sizes}")
            object_result = run_scalability(
                sizes=tuple(arguments.object_sizes), seed=arguments.seed, fast=False
            )
            print(object_result.render())

        report_path = report_dir / "E9_scalability_fast.txt"
        report = fast_result.render()
        if sharded_result is not None:
            report += "\n\n" + sharded_result.render()
        if object_result is not None:
            report += "\n\n" + object_result.render()
        report_path.write_text(report + "\n", encoding="utf-8")
        json_path = write_benchmark_json(
            arguments.json, fast_result, object_result, seed=arguments.seed,
            sharded_result=sharded_result,
        )
        print(f"wrote {report_path}")
        print(f"wrote {json_path}")

    if not arguments.skip_campaign:
        print(
            f"campaign benchmark: {arguments.campaign_households} households x "
            f"{arguments.campaign_days} days (columnar planning)"
        )
        columnar_entry = run_campaign_bench(
            num_households=arguments.campaign_households,
            num_days=arguments.campaign_days,
            seed=arguments.seed,
        )
        print(render_entry(columnar_entry))
        scalar_entry = None
        if not arguments.skip_campaign_scalar:
            print("campaign benchmark: scalar-planning reference run")
            scalar_entry = run_campaign_bench(
                num_households=arguments.campaign_households,
                num_days=arguments.campaign_days,
                seed=arguments.seed,
                planning="scalar",
            )
            print(render_entry(scalar_entry))
            # The columnar pipeline is an optimisation, not a behaviour
            # change: both planning paths must realise the identical campaign.
            if scalar_entry.result.rows() != columnar_entry.result.rows():
                print(
                    "campaign FAILURE: scalar and columnar planning diverged",
                    file=sys.stderr,
                )
                return 1
            speedup = (
                scalar_entry.result.planning_seconds
                / columnar_entry.result.planning_seconds
            )
            print(f"planning_speedup (scalar/columnar): {speedup:.1f}x")
        print(
            f"campaign benchmark: {arguments.campaign_households} households x "
            f"{arguments.campaign_days} days (lazy materialisation, tracemalloc)"
        )
        lazy_entry = run_campaign_bench(
            num_households=arguments.campaign_households,
            num_days=arguments.campaign_days,
            seed=arguments.seed,
            materialise="lazy",
            track_memory=True,
        )
        print(render_entry(lazy_entry))
        # Zero-materialisation is an optimisation, not a behaviour change:
        # wherever lazy and eager both run, the campaigns must be identical.
        if lazy_entry.result.rows() != columnar_entry.result.rows():
            print(
                "campaign FAILURE: lazy and eager materialisation diverged",
                file=sys.stderr,
            )
            return 1
        print(
            f"campaign benchmark: {arguments.campaign_households} households x "
            f"{arguments.campaign_days} days (array rounds)"
        )
        array_entry = run_campaign_bench(
            num_households=arguments.campaign_households,
            num_days=arguments.campaign_days,
            seed=arguments.seed,
            rounds="array",
        )
        print(render_entry(array_entry))
        # Array rounds are an optimisation, not a behaviour change: the
        # campaign must be row-identical to the object-round oracle run.
        if array_entry.result.rows() != columnar_entry.result.rows():
            print(
                "campaign FAILURE: array and object rounds diverged",
                file=sys.stderr,
            )
            return 1
        large_entry = None
        if not arguments.skip_campaign_large:
            print(
                f"campaign benchmark: {arguments.campaign_large_households} "
                f"households x {arguments.campaign_days} days (lazy, "
                f"history_window={LARGE_CAMPAIGN_WINDOW}, no bid retention, "
                f"array rounds, tracemalloc)"
            )
            large_entry = run_campaign_bench(
                num_households=arguments.campaign_large_households,
                num_days=arguments.campaign_days,
                seed=arguments.seed,
                materialise="lazy",
                history_window=LARGE_CAMPAIGN_WINDOW,
                rounds="array",
                retain_logs=False,
                track_memory=True,
            )
            print(render_entry(large_entry))
        xlarge_entry = None
        if not arguments.skip_campaign_xlarge:
            print(
                f"campaign benchmark: {arguments.campaign_xlarge_households} "
                f"households x {arguments.campaign_days} days (lazy, "
                f"history_window={LARGE_CAMPAIGN_WINDOW}, no bid retention, "
                f"array rounds, tracemalloc)"
            )
            xlarge_entry = run_campaign_bench(
                num_households=arguments.campaign_xlarge_households,
                num_days=arguments.campaign_days,
                seed=arguments.seed,
                materialise="lazy",
                history_window=LARGE_CAMPAIGN_WINDOW,
                rounds="array",
                retain_logs=False,
                track_memory=True,
            )
            print(render_entry(xlarge_entry))
        hetero_entry = None
        hetero_scalar_entry = None
        if not arguments.skip_campaign_hetero:
            print(
                f"campaign benchmark: {arguments.campaign_households} "
                f"households x {HETERO_CAMPAIGN_DAYS} days (mixed town, "
                f"bucketed-fleet planning)"
            )
            hetero_entry = run_campaign_bench(
                num_households=arguments.campaign_households,
                num_days=HETERO_CAMPAIGN_DAYS,
                seed=arguments.seed,
                town="mixed",
            )
            print(render_entry(hetero_entry))
            hetero_failures: list[str] = []
            _hetero_backend_gate(
                "campaign_hetero", hetero_entry.as_row(), hetero_failures
            )
            if hetero_failures:
                for failure in hetero_failures:
                    print(f"campaign FAILURE: {failure}", file=sys.stderr)
                return 1
            print(
                "campaign benchmark: mixed town, scalar-planning reference "
                "(the pre-bucketing fallback path)"
            )
            hetero_scalar_entry = run_campaign_bench(
                num_households=arguments.campaign_households,
                num_days=HETERO_CAMPAIGN_DAYS,
                seed=arguments.seed,
                planning="scalar",
                town="mixed",
            )
            print(render_entry(hetero_scalar_entry))
            # Bucketing is an optimisation, not a behaviour change: the
            # bucketed fleet must realise the identical campaign to the
            # scalar per-household loop it replaces.
            if hetero_scalar_entry.result.rows() != hetero_entry.result.rows():
                print(
                    "campaign FAILURE: mixed-town scalar and bucketed "
                    "planning diverged",
                    file=sys.stderr,
                )
                return 1
            hetero_speedup = (
                hetero_scalar_entry.result.planning_seconds
                / hetero_entry.result.planning_seconds
            )
            print(
                f"hetero_planning_speedup (scalar/bucketed): "
                f"{hetero_speedup:.1f}x"
            )
            if hetero_speedup < HETERO_MIN_PLANNING_SPEEDUP:
                print(
                    f"campaign FAILURE: hetero planning speedup "
                    f"{hetero_speedup:.1f}x below the "
                    f"{HETERO_MIN_PLANNING_SPEEDUP:.1f}x acceptance floor",
                    file=sys.stderr,
                )
                return 1
        campaign_report = render_entry(columnar_entry)
        if scalar_entry is not None:
            campaign_report += "\n\n" + render_entry(scalar_entry)
        campaign_report += "\n\n" + render_entry(lazy_entry)
        campaign_report += "\n\n" + render_entry(array_entry)
        if large_entry is not None:
            campaign_report += "\n\n" + render_entry(large_entry)
        if xlarge_entry is not None:
            campaign_report += "\n\n" + render_entry(xlarge_entry)
        if hetero_entry is not None:
            campaign_report += "\n\n" + render_entry(hetero_entry)
        if hetero_scalar_entry is not None:
            campaign_report += "\n\n" + render_entry(hetero_scalar_entry)
        campaign_report_path = report_dir / "campaign_pipeline.txt"
        campaign_report_path.write_text(campaign_report + "\n", encoding="utf-8")
        campaign_json_path = write_campaign_json(
            arguments.campaign_json, columnar_entry, scalar_entry,
            seed=arguments.seed, lazy=lazy_entry, lazy_large=large_entry,
            array=array_entry, xlarge=xlarge_entry, hetero=hetero_entry,
            hetero_scalar=hetero_scalar_entry,
        )
        print(f"wrote {campaign_report_path}")
        print(f"wrote {campaign_json_path}")

    if not arguments.skip_serving and not arguments.campaign_only:
        print(
            f"serving benchmark: {SERVING_REQUESTS} requests x "
            f"{SERVING_HOUSEHOLDS} households (max_batch={SERVING_MAX_BATCH}, "
            f"max_wait={SERVING_MAX_WAIT}s, coalesced vs sequential)"
        )
        serving_entry = run_serving_bench()
        print(serving_entry.render())
        pass_budget = -(-SERVING_REQUESTS // SERVING_MAX_BATCH)  # ceil
        if serving_entry.kernel_passes > pass_budget:
            print(
                f"serving FAILURE: {serving_entry.kernel_passes} kernel passes "
                f"exceed the budget of {pass_budget}",
                file=sys.stderr,
            )
            return 1
        if serving_entry.speedup < SERVING_MIN_SPEEDUP:
            print(
                f"serving FAILURE: speedup {serving_entry.speedup:.2f}x below "
                f"the {SERVING_MIN_SPEEDUP:.1f}x acceptance floor",
                file=sys.stderr,
            )
            return 1
        serving_report_path = report_dir / "serving_throughput.txt"
        serving_report_path.write_text(serving_entry.render() + "\n", encoding="utf-8")
        serving_json_path = write_serving_json(
            arguments.serving_json, serving_entry, seed=arguments.seed
        )
        print(f"wrote {serving_report_path}")
        print(f"wrote {serving_json_path}")

    if not arguments.skip_overload and not arguments.campaign_only:
        print(
            f"overload benchmark: {OVERLOAD_MAX_QUEUE * OVERLOAD_BURST_FACTOR} "
            f"requests burst at {OVERLOAD_BURST_FACTOR}x a "
            f"{OVERLOAD_MAX_QUEUE}-slot admission queue "
            f"({OVERLOAD_HOUSEHOLDS} households each)"
        )
        overload_entry = run_overload_bench()
        print(overload_entry.render())
        overload_failures: list[str] = []
        _overload_gates("overload", overload_entry.as_row(), overload_failures)
        if overload_failures:
            for failure in overload_failures:
                print(f"overload FAILURE: {failure}", file=sys.stderr)
            return 1
        overload_report_path = report_dir / "overload_admission.txt"
        overload_report_path.write_text(
            overload_entry.render() + "\n", encoding="utf-8"
        )
        overload_json_path = write_overload_json(
            arguments.overload_json, overload_entry, seed=arguments.seed
        )
        print(f"wrote {overload_report_path}")
        print(f"wrote {overload_json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
