#!/usr/bin/env python
"""Standalone perf-bench entry point for the E9 scalability sweep.

Runs the extended fast-path sweep (10 -> 10,000 households by default) plus
the object-path reference sweep, writes the plain-text report to
``benchmarks/reports/E9_scalability_fast.txt`` and the machine-readable perf
trajectory to ``benchmarks/BENCH_scalability.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --sizes 10 100 1000 --seed 3
    PYTHONPATH=src python benchmarks/run_bench.py --skip-object-path

The JSON artefact is what CI and future scaling PRs diff against; the text
report is for humans.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
REPO_ROOT = BENCH_DIR.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.scalability import (  # noqa: E402  (path setup above)
    FAST_PATH_SIZES,
    run_scalability,
    write_benchmark_json,
)

#: Object-path reference sizes: kept small, the object path is the slow one.
OBJECT_PATH_SIZES: tuple[int, ...] = (10, 50, 200)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(FAST_PATH_SIZES),
        help="fast-path population sizes to sweep",
    )
    parser.add_argument(
        "--object-sizes", type=int, nargs="+", default=list(OBJECT_PATH_SIZES),
        help="object-path reference sizes (kept small on purpose)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--skip-object-path", action="store_true",
        help="only run the fast path (no reference sweep, no speedup entry)",
    )
    parser.add_argument(
        "--json", type=Path, default=BENCH_DIR / "BENCH_scalability.json",
        help="where to write the machine-readable trajectory",
    )
    arguments = parser.parse_args(argv)

    print(f"fast-path sweep: sizes={arguments.sizes} seed={arguments.seed}")
    fast_result = run_scalability(
        sizes=tuple(arguments.sizes), seed=arguments.seed, fast=True
    )
    print(fast_result.render())

    object_result = None
    if not arguments.skip_object_path:
        print(f"object-path reference: sizes={arguments.object_sizes}")
        object_result = run_scalability(
            sizes=tuple(arguments.object_sizes), seed=arguments.seed, fast=False
        )
        print(object_result.render())

    report_dir = BENCH_DIR / "reports"
    report_dir.mkdir(exist_ok=True)
    report_path = report_dir / "E9_scalability_fast.txt"
    report = fast_result.render()
    if object_result is not None:
        report += "\n\n" + object_result.render()
    report_path.write_text(report + "\n", encoding="utf-8")
    json_path = write_benchmark_json(
        arguments.json, fast_result, object_result, seed=arguments.seed
    )
    print(f"wrote {report_path}")
    print(f"wrote {json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
