#!/usr/bin/env python
"""CI smoke test for ``python -m repro serve``.

Starts the real server as a subprocess (the exact artifact a user runs),
submits three concurrent negotiation requests, and asserts the serving
contract end to end: every stream carries per-round progress events and a
terminal ``done`` event with the result payload, every finished session is
persisted as JSON in the state directory, and ``/metrics`` shows the requests
were coalesced rather than run one by one.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent

NUM_REQUESTS = 3
STARTUP_TIMEOUT_SECONDS = 60


def _wait_for_health(base: str, deadline: float) -> None:
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(base + "/healthz", timeout=5) as response:
                if json.load(response).get("status") == "ok":
                    return
        except (urllib.error.URLError, ConnectionError, json.JSONDecodeError):
            time.sleep(0.05)
    raise RuntimeError("server did not become healthy in time")


def _submit_and_stream(base: str, seed: int) -> list[dict]:
    body = json.dumps({"scenario": {"households": 50, "seed": seed}}).encode()
    request = urllib.request.Request(
        base + "/submit", data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        session_id = json.load(response)["session_id"]
    with urllib.request.urlopen(base + f"/stream/{session_id}", timeout=120) as response:
        return [json.loads(line) for line in response.read().decode().splitlines()]


def main() -> int:
    state_dir = tempfile.mkdtemp(prefix="serve-smoke-")
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), environment.get("PYTHONPATH")])
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--state-dir", state_dir, "--max-wait", "0.05",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=environment,
    )
    try:
        banner = process.stdout.readline()
        match = re.search(r"listening on (http://\S+)", banner)
        if not match:
            raise RuntimeError(f"unexpected server banner: {banner!r}")
        base = match.group(1)
        _wait_for_health(base, time.monotonic() + STARTUP_TIMEOUT_SECONDS)

        with ThreadPoolExecutor(NUM_REQUESTS) as pool:
            streams = list(
                pool.map(lambda seed: _submit_and_stream(base, seed), range(NUM_REQUESTS))
            )
        for seed, events in enumerate(streams):
            rounds = [event for event in events if event.get("event") == "round"]
            assert rounds, f"request {seed}: no streamed round events"
            final = events[-1]
            assert final.get("event") == "done", f"request {seed}: no done event"
            assert final.get("state") == "done", f"request {seed}: {final}"
            assert final["result"]["rounds"] >= 1, f"request {seed}: empty result"
            assert final["result"]["metadata"]["backend"] == "vectorized"

        with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
            metrics = json.load(response)
        assert metrics["requests_completed"] == NUM_REQUESTS, metrics
        assert metrics["requests_failed"] == 0, metrics
        assert metrics["kernel_passes"] >= 1, metrics
        assert metrics["batch_occupancy"]["max"] >= 2, (
            f"concurrent requests did not coalesce: {metrics['batch_occupancy']}"
        )

        persisted = [
            name for name in os.listdir(state_dir) if name.endswith(".json")
        ]
        assert len(persisted) == NUM_REQUESTS, (
            f"expected {NUM_REQUESTS} persisted sessions, found {persisted}"
        )
        for name in persisted:
            with open(os.path.join(state_dir, name), encoding="utf-8") as handle:
                document = json.load(handle)
            assert document["state"] == "done" and document["result"] is not None

        print(
            f"serve smoke passed: {NUM_REQUESTS} concurrent requests streamed, "
            f"coalesced (max occupancy {metrics['batch_occupancy']['max']}) and "
            f"persisted"
        )
        return 0
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    raise SystemExit(main())
