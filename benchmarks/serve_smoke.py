#!/usr/bin/env python
"""CI smoke test for ``python -m repro serve``.

Starts the real server as a subprocess (the exact artifact a user runs),
submits three concurrent negotiation requests through the self-healing
:class:`repro.serve.client.ServeClient` (the exact client a user runs), and
asserts the serving contract end to end: every stream carries per-round
progress events and a terminal ``done`` event with the result payload, every
finished session is persisted as JSON in the state directory, and
``/metrics`` shows the requests were coalesced rather than run one by one.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient, ServeClientError  # noqa: E402

NUM_REQUESTS = 3
STARTUP_TIMEOUT_SECONDS = 60


def _wait_for_health(client: ServeClient, deadline: float) -> None:
    while time.monotonic() < deadline:
        try:
            if client.health().get("status") == "ok":
                return
        except (ServeClientError, ConnectionError, json.JSONDecodeError):
            time.sleep(0.05)
    raise RuntimeError("server did not become healthy in time")


def _submit_and_stream(base: str, seed: int) -> list[dict]:
    client = ServeClient(base, timeout=120.0)
    accepted = client.submit({"scenario": {"households": 50, "seed": seed}})
    return list(client.stream(accepted["session_id"]))


def main() -> int:
    state_dir = tempfile.mkdtemp(prefix="serve-smoke-")
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), environment.get("PYTHONPATH")])
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--state-dir", state_dir, "--max-wait", "0.05",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=environment,
    )
    try:
        banner = process.stdout.readline()
        match = re.search(r"listening on (http://\S+)", banner)
        if not match:
            raise RuntimeError(f"unexpected server banner: {banner!r}")
        base = match.group(1)
        probe = ServeClient(base, max_retries=0, timeout=5.0)
        _wait_for_health(probe, time.monotonic() + STARTUP_TIMEOUT_SECONDS)

        with ThreadPoolExecutor(NUM_REQUESTS) as pool:
            streams = list(
                pool.map(lambda seed: _submit_and_stream(base, seed), range(NUM_REQUESTS))
            )
        for seed, events in enumerate(streams):
            rounds = [event for event in events if event.get("event") == "round"]
            assert rounds, f"request {seed}: no streamed round events"
            final = events[-1]
            assert final.get("event") == "done", f"request {seed}: no done event"
            assert final.get("state") == "done", f"request {seed}: {final}"
            assert final["result"]["rounds"] >= 1, f"request {seed}: empty result"
            assert final["result"]["metadata"]["backend"] == "vectorized"

        metrics = ServeClient(base, timeout=30.0).metrics()
        assert metrics["requests_completed"] == NUM_REQUESTS, metrics
        assert metrics["requests_failed"] == 0, metrics
        assert metrics["kernel_passes"] >= 1, metrics
        assert metrics["batch_occupancy"]["max"] >= 2, (
            f"concurrent requests did not coalesce: {metrics['batch_occupancy']}"
        )

        persisted = [
            name for name in os.listdir(state_dir) if name.endswith(".json")
        ]
        assert len(persisted) == NUM_REQUESTS, (
            f"expected {NUM_REQUESTS} persisted sessions, found {persisted}"
        )
        for name in persisted:
            with open(os.path.join(state_dir, name), encoding="utf-8") as handle:
                document = json.load(handle)
            assert document["state"] == "done" and document["result"] is not None

        print(
            f"serve smoke passed: {NUM_REQUESTS} concurrent requests streamed, "
            f"coalesced (max occupancy {metrics['batch_occupancy']['max']}) and "
            f"persisted"
        )
        return 0
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    raise SystemExit(main())
