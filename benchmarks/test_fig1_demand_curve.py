"""Benchmark E1 — regenerate Figure 1 (daily demand curve with a peak)."""

from __future__ import annotations

from repro.experiments.fig1_demand_curve import run_demand_curve


def test_fig1_demand_curve(benchmark, write_report):
    result = benchmark.pedantic(
        run_demand_curve,
        kwargs={"num_households": 50, "seed": 0, "cold_snap": True},
        iterations=1,
        rounds=3,
    )
    summary = result.summary()
    # Figure 1's qualitative content: a daily curve whose peak exceeds the
    # normal-cost capacity, with the peak in the evening.
    assert summary["has_peak"]
    assert summary["peak_overuse_kw"] > 0
    assert summary["relative_overuse"] > 0.05
    assert 16 <= summary["peak_hour"] <= 22
    assert summary["expensive_cost"] > 0
    write_report("E1_fig1_demand_curve", result.render())


def test_fig1_mild_day_baseline(benchmark, write_report):
    """Counterfactual: the same town on a mild day has a much smaller peak."""
    result = benchmark.pedantic(
        run_demand_curve,
        kwargs={"num_households": 50, "seed": 0, "cold_snap": False},
        iterations=1,
        rounds=3,
    )
    cold = run_demand_curve(num_households=50, seed=0, cold_snap=True)
    assert result.curve.peak_demand < cold.curve.peak_demand
    write_report("E1_fig1_demand_curve_mild_day", result.render())
