"""Benchmarks E2/E3 — regenerate Figures 6 and 7 (Utility Agent per round)."""

from __future__ import annotations

import pytest

from repro.experiments.fig6_fig7_utility_rounds import PAPER_REFERENCE, run_utility_rounds


def test_fig6_fig7_utility_rounds(benchmark, write_report):
    result = benchmark.pedantic(run_utility_rounds, iterations=1, rounds=5)
    measured = result.measured()

    # Figure 6 (initial phase): exact reproduction.
    assert measured["normal_capacity"] == PAPER_REFERENCE["normal_capacity"]
    assert measured["initial_predicted_usage"] == PAPER_REFERENCE["initial_predicted_usage"]
    assert measured["initial_overuse"] == PAPER_REFERENCE["initial_overuse"]
    assert measured["round1_reward_at_0.4"] == PAPER_REFERENCE["round1_reward_at_0.4"]

    # Figure 7 (final phase): same shape, values within a few percent.
    assert measured["rounds"] == PAPER_REFERENCE["rounds"]
    assert measured["round3_reward_at_0.4"] == pytest.approx(
        PAPER_REFERENCE["round3_reward_at_0.4"], rel=0.05
    )
    assert measured["final_overuse"] == pytest.approx(
        PAPER_REFERENCE["final_overuse"], abs=1.0
    )
    write_report("E2_E3_fig6_fig7_utility_rounds", result.render())


def test_fig6_fig7_reward_escalation_shape(benchmark, write_report):
    """The reward trajectory rises monotonically and the overuse falls monotonically."""
    result = benchmark.pedantic(run_utility_rounds, iterations=1, rounds=5)
    rewards = result.result.reward_trajectory(0.4)
    overuse = result.result.overuse_trajectory()
    assert rewards == sorted(rewards)
    assert all(b <= a + 1e-9 for a, b in zip(overuse, overuse[1:]))
    write_report(
        "E2_E3_trajectories",
        "reward@0.4 per round: " + ", ".join(f"{r:.2f}" for r in rewards)
        + "\noveruse trajectory:  " + ", ".join(f"{o:.2f}" for o in overuse),
    )
