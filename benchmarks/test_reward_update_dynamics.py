"""Benchmark E5 — dynamics of the Section 6 logistic reward update."""

from __future__ import annotations

from repro.experiments.reward_update_dynamics import run_reward_dynamics


def test_reward_update_dynamics(benchmark, write_report):
    result = benchmark(run_reward_dynamics)
    assert result.all_monotone()
    assert result.all_bounded()
    assert result.saturation_speeds_up_with_beta()
    write_report("E5_reward_update_dynamics", result.render())


def test_reward_increment_shrinks_towards_saturation(benchmark, write_report):
    """The per-round increment shrinks as the reward approaches max_reward."""
    result = benchmark(run_reward_dynamics)
    lines = []
    for trajectory in result.trajectories:
        increments = trajectory.increments
        if len(increments) >= 3 and trajectory.overuse > 0:
            # Increments eventually decrease (logistic saturation).
            assert increments[-1] <= max(increments) + 1e-9
            lines.append(
                f"beta={trajectory.beta:.1f} overuse={trajectory.overuse:.2f} "
                f"start={trajectory.initial_reward:.0f}: "
                f"first increment {increments[0]:.2f}, last {increments[-1]:.3f}, "
                f"saturation round {trajectory.rounds_to_saturation}"
            )
    write_report("E5_increment_saturation", "\n".join(lines))
