#!/usr/bin/env python
"""CI smoke test for the serving layer's overload behaviour.

Starts the real server as a subprocess with a deliberately tiny admission
queue (``--max-queue``), bursts well past capacity from a client thread pool,
and asserts the overload contract on the real artifact:

* every submission gets an immediate, honest answer — 202 or a 429 carrying
  a ``Retry-After`` header and a machine-readable ``reason`` — within the
  socket timeout; no connection hangs;
* at least one request is shed (the burst really overloads the queue) and at
  least one is admitted (shedding is selective, not a blackout);
* every admitted session reaches a terminal state, and the shed requests
  resubmitted through the self-healing :class:`repro.serve.client.ServeClient`
  all complete — an overloaded server loses no work that the caller is
  willing to retry;
* ``/metrics`` accounts for every disposition (admitted + shed == submitted)
  and exposes the shed reasons.

Usage::

    PYTHONPATH=src python benchmarks/overload_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient, ServeClientError  # noqa: E402

MAX_QUEUE = 2
NUM_REQUESTS = 12
HOUSEHOLDS = 30
STARTUP_TIMEOUT_SECONDS = 60
#: Per-request socket budget: an answer slower than this counts as hung.
SUBMIT_TIMEOUT_SECONDS = 30


def _wait_for_health(client: ServeClient, deadline: float) -> None:
    while time.monotonic() < deadline:
        try:
            if client.health().get("status") == "ok":
                return
        except (ServeClientError, ConnectionError, json.JSONDecodeError):
            time.sleep(0.05)
    raise RuntimeError("server did not become healthy in time")


def _submit_raw(base: str, seed: int) -> dict:
    """One raw submission; the 429 (status, headers, body) stays visible."""
    body = {"scenario": {"households": HOUSEHOLDS, "seed": seed}}
    request = urllib.request.Request(
        base + "/submit",
        data=json.dumps(body).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(
            request, timeout=SUBMIT_TIMEOUT_SECONDS
        ) as response:
            payload = json.load(response)
        return {
            "outcome": "admitted",
            "session_id": payload["session_id"],
            "body": body,
        }
    except urllib.error.HTTPError as error:
        payload = json.loads(error.read() or b"{}")
        return {
            "outcome": "shed",
            "status": error.code,
            "retry_after": error.headers.get("Retry-After"),
            "reason": payload.get("reason"),
            "body": body,
        }


def main() -> int:
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), environment.get("PYTHONPATH")])
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--max-queue", str(MAX_QUEUE),
            "--max-batch", "2", "--max-wait", "0.02",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=environment,
    )
    try:
        banner = process.stdout.readline()
        match = re.search(r"listening on (http://\S+)", banner)
        if not match:
            raise RuntimeError(f"unexpected server banner: {banner!r}")
        base = match.group(1)
        probe = ServeClient(base, max_retries=0, timeout=5.0)
        _wait_for_health(probe, time.monotonic() + STARTUP_TIMEOUT_SECONDS)

        # The burst: every request must get an answer within its socket
        # timeout — urllib raising socket.timeout would mean a hung
        # connection, the failure mode this smoke exists to catch.
        with ThreadPoolExecutor(NUM_REQUESTS) as pool:
            dispositions = list(
                pool.map(lambda seed: _submit_raw(base, seed), range(NUM_REQUESTS))
            )

        admitted = [d for d in dispositions if d["outcome"] == "admitted"]
        shed = [d for d in dispositions if d["outcome"] == "shed"]
        assert shed, (
            f"burst of {NUM_REQUESTS} past a {MAX_QUEUE}-slot queue shed nothing"
        )
        assert admitted, f"every request was shed: {dispositions}"
        for disposition in shed:
            assert disposition["status"] == 429, disposition
            assert disposition["retry_after"] is not None, (
                f"429 without Retry-After: {disposition}"
            )
            assert disposition["reason"] in ("queue_full", "rate_limited"), (
                f"429 without a machine-readable reason: {disposition}"
            )

        # Every admitted session must reach a terminal state.
        waiter = ServeClient(base, timeout=60.0)
        for disposition in admitted:
            record = waiter.result(
                disposition["session_id"],
                wait=True,
                wait_timeout=15.0,
                overall_timeout=120.0,
            )
            assert record["state"] == "done", record

        # Shed requests resubmitted through the self-healing client (which
        # honours Retry-After) must all complete: sheds are delays, not loss.
        healer = ServeClient(base, max_retries=10, backoff_cap=2.0, timeout=60.0)
        for disposition in shed:
            accepted = healer.submit(disposition["body"])
            record = healer.result(
                accepted["session_id"],
                wait=True,
                wait_timeout=15.0,
                overall_timeout=120.0,
            )
            assert record["state"] == "done", record

        metrics = waiter.metrics()
        assert metrics["requests_shed"] == len(shed), metrics
        assert metrics["requests_admitted"] == len(admitted) + len(shed), (
            f"healed resubmissions missing from the admission count: {metrics}"
        )
        assert metrics["shed_reasons"].get("queue_full", 0) >= 1, metrics
        assert metrics["admission"]["max_queue"] == MAX_QUEUE, metrics

        print(
            f"overload smoke passed: {NUM_REQUESTS} requests against a "
            f"{MAX_QUEUE}-slot queue -> {len(admitted)} admitted, "
            f"{len(shed)} shed with 429 + Retry-After, all healed, "
            f"no hung connections"
        )
        return 0
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    raise SystemExit(main())
