"""Benchmark E8 — reward-table negotiation vs the computational-market baseline."""

from __future__ import annotations

from repro.experiments.market_comparison import run_market_comparison


def test_market_comparison_on_paper_population(benchmark, write_report):
    result = benchmark.pedantic(
        run_market_comparison, kwargs={"use_paper_scenario": True}, iterations=1, rounds=3
    )
    rows = {row["mechanism"]: row for row in result.rows()}
    # Both mechanisms remove (essentially all of) the needed reduction.
    assert result.both_remove_needed_reduction(tolerance=0.1)
    # The negotiation needs few rounds; the market needs more price iterations
    # than the negotiation needs rounds (bisection to the tolerance).
    assert rows["reward_table_negotiation"]["rounds_or_iterations"] <= 10
    assert rows["equilibrium_market"]["rounds_or_iterations"] >= 1
    # Discriminatory rewards (pay-as-bid per table) are cheaper for the utility
    # than a uniform clearing price on this population; the market hands the
    # difference to customers as surplus.
    assert (
        rows["reward_table_negotiation"]["utility_payment"]
        <= rows["equilibrium_market"]["utility_payment"]
    )
    assert (
        rows["equilibrium_market"]["customer_surplus"]
        >= rows["reward_table_negotiation"]["customer_surplus"]
    )
    write_report("E8_market_comparison_paper_population", result.render())


def test_market_comparison_on_synthetic_population(benchmark, write_report):
    result = benchmark.pedantic(
        run_market_comparison,
        kwargs={"use_paper_scenario": False, "num_households": 30, "seed": 1},
        iterations=1,
        rounds=2,
    )
    assert result.needed_reduction > 0
    assert result.negotiation_reduction() > 0
    assert result.market.total_reduction > 0
    write_report("E8_market_comparison_synthetic_population", result.render())
