"""Benchmark E9 — scalability in the number of Customer Agents."""

from __future__ import annotations

import time

import pytest

from repro.experiments.scalability import run_scalability, write_benchmark_json


def test_scalability_sweep(benchmark, write_report):
    result = benchmark.pedantic(
        run_scalability,
        kwargs={"sizes": (10, 25, 50, 100, 200), "seed": 0},
        iterations=1,
        rounds=1,
    )
    rows = result.rows()
    assert [row["num_households"] for row in rows] == [10, 25, 50, 100, 200]
    # Rounds stay bounded as the population grows (announcements are broadcast,
    # so the protocol does not degenerate with more customers).
    assert result.rounds_bounded(maximum=60)
    # Message volume grows roughly linearly with the number of customers.
    assert result.messages_scale_linearly(tolerance=1.0)
    # Every population size still achieves a peak reduction.
    assert all(row["peak_reduction_fraction"] > 0 for row in rows)
    write_report("E9_scalability", result.render())


def test_fast_scalability_sweep(write_report, tmp_path):
    """The vectorized fast path sweeps an order of magnitude further than the
    object path and reports the same negotiation trajectory at shared sizes."""
    result = run_scalability(sizes=(10, 50, 200, 1000), seed=0, fast=True)
    rows = result.rows()
    assert [row["num_households"] for row in rows] == [10, 50, 200, 1000]
    assert result.rounds_bounded(maximum=60)
    assert result.messages_scale_linearly(tolerance=1.0)
    assert all(row["peak_reduction_fraction"] > 0 for row in rows)
    # The machine-readable trajectory artefact round-trips.
    payload_path = write_benchmark_json(tmp_path / "bench.json", result, seed=0)
    assert payload_path.exists()
    write_report("E9_scalability_fast_ci", result.render())


def test_sharded_scalability_sweep(write_report, tmp_path):
    """The sharded runtime sweeps the same trajectory as the fast path and
    the JSON artefact records its shard count and the speedup entry."""
    fast = run_scalability(sizes=(50, 200), seed=0, fast=True)
    sharded = run_scalability(sizes=(50, 200), seed=0, backend="sharded", shards=2)
    assert sharded.path_label == "sharded"
    assert sharded.shards == 2
    # Bit-identical negotiation behaviour at every shared size.
    for fast_row, sharded_row in zip(fast.rows(), sharded.rows()):
        assert sharded_row["rounds"] == fast_row["rounds"]
        assert sharded_row["messages"] == fast_row["messages"]
        assert sharded_row["peak_reduction_fraction"] == fast_row["peak_reduction_fraction"]
    payload_path = write_benchmark_json(
        tmp_path / "bench.json", fast, seed=0, sharded_result=sharded
    )
    import json

    payload = json.loads(payload_path.read_text(encoding="utf-8"))
    assert payload["sharded_path"]["shards"] == 2
    assert payload["sharded_speedup_at_shared_max"]["num_households"] == 200
    write_report("E9_scalability_sharded_ci", sharded.render())


@pytest.mark.perf_smoke
def test_fast_path_200_households_within_budget():
    """Tier-1 perf guard: the 200-household fast-path negotiation must stay
    well under a generous wall-clock budget (it runs in ~10 ms; the budget
    leaves two orders of magnitude of headroom for slow CI machines)."""
    from repro.api import run
    from repro.core.scenario import synthetic_scenario

    scenario = synthetic_scenario(num_households=200, seed=0)
    start = time.perf_counter()
    result = run(scenario, backend="vectorized", seed=0)
    elapsed = time.perf_counter() - start
    assert result.metadata["backend"] == "vectorized"
    assert result.rounds >= 1
    assert result.peak_reduction_fraction > 0
    assert elapsed < 2.0, f"fast path took {elapsed:.2f}s for 200 households"


def test_single_negotiation_round_trip_cost(benchmark):
    """Micro-benchmark: one complete negotiation on a 50-household population."""
    from repro.api import run
    from repro.core.scenario import synthetic_scenario

    def run_once():
        scenario = synthetic_scenario(num_households=50, seed=0)
        return run(scenario, backend="object", seed=0)

    result = benchmark(run_once)
    assert result.rounds >= 1
    assert result.peak_reduction_fraction > 0
