"""Benchmark E9 — scalability in the number of Customer Agents."""

from __future__ import annotations

from repro.experiments.scalability import run_scalability


def test_scalability_sweep(benchmark, write_report):
    result = benchmark.pedantic(
        run_scalability,
        kwargs={"sizes": (10, 25, 50, 100, 200), "seed": 0},
        iterations=1,
        rounds=1,
    )
    rows = result.rows()
    assert [row["num_households"] for row in rows] == [10, 25, 50, 100, 200]
    # Rounds stay bounded as the population grows (announcements are broadcast,
    # so the protocol does not degenerate with more customers).
    assert result.rounds_bounded(maximum=60)
    # Message volume grows roughly linearly with the number of customers.
    assert result.messages_scale_linearly(tolerance=1.0)
    # Every population size still achieves a peak reduction.
    assert all(row["peak_reduction_fraction"] > 0 for row in rows)
    write_report("E9_scalability", result.render())


def test_single_negotiation_round_trip_cost(benchmark):
    """Micro-benchmark: one complete negotiation on a 50-household population."""
    from repro.core.scenario import synthetic_scenario
    from repro.core.session import NegotiationSession

    def run_once():
        scenario = synthetic_scenario(num_households=50, seed=0)
        return NegotiationSession(scenario, seed=0).run()

    result = benchmark(run_once)
    assert result.rounds >= 1
    assert result.peak_reduction_fraction > 0
