"""Coalescing determinism: served results are bit-identical to solo runs.

The serving layer's core contract — packing N requests into one combined
kernel arena and negotiating them in lockstep must change *nothing* about any
request's result.  Every test here compares the canonical JSON payload of a
coalesced member against a solo ``repro.api.run`` of the same request with
``json.dumps(..., sort_keys=True)`` equality, i.e. byte-for-byte.
"""

from __future__ import annotations

import json

import pytest

import repro.api as api
from repro.serve.coalesce import (
    execute_batch,
    request_coalesces,
    run_solo,
)
from repro.serve.schemas import ServeRequest, result_payload


def _request(mapping: dict) -> ServeRequest:
    return ServeRequest.from_mapping(mapping)


def _solo_payload_oracle(request: ServeRequest) -> str:
    """The canonical payload of a solo façade run of the same request."""
    scenario = request.scenario.build_scenario()
    result = api.run(scenario, backend=request.backend, config=request.config)
    return json.dumps(result_payload(result), sort_keys=True)


def _served(outcome) -> str:
    assert outcome.error is None, outcome.error
    return json.dumps(outcome.payload, sort_keys=True)


class TestCoalescedDeterminism:
    def test_distinct_seeds_byte_identical_to_solo(self):
        requests = [
            _request({"scenario": {"households": 40, "seed": seed}})
            for seed in range(5)
        ]
        outcomes, report = execute_batch(requests)
        assert report.coalesced == 5
        assert report.solo == 0
        assert report.arena_rows == 200
        for request, outcome in zip(requests, outcomes):
            assert _served(outcome) == _solo_payload_oracle(request)

    def test_mixed_methods_and_families_byte_identical(self):
        requests = [
            _request({"scenario": {"households": 30, "seed": 0, "method": "reward_tables"}}),
            _request({"scenario": {"households": 30, "seed": 1, "method": "offer"}}),
            _request({"scenario": {"households": 30, "seed": 2, "method": "request_for_bids"}}),
            _request({"scenario": {"family": "paper"}}),
            _request({"scenario": {"households": 25, "seed": 3, "beta": 4.0, "max_reward": 80.0}}),
        ]
        outcomes, report = execute_batch(requests)
        assert report.coalesced == len(requests)
        for request, outcome in zip(requests, outcomes):
            assert _served(outcome) == _solo_payload_oracle(request)

    def test_identical_requests_fuse_into_shared_kernel_calls(self):
        requests = [
            _request({"scenario": {"households": 30, "seed": 7}, "backend": "vectorized"})
            for _ in range(4)
        ]
        outcomes, report = execute_batch(requests)
        # Same population, same method state → every reward-table cycle runs
        # one kernel over the whole arena instead of four slice kernels.
        assert report.fused_cycles > 0
        oracle = _solo_payload_oracle(requests[0])
        for outcome in outcomes:
            assert _served(outcome) == oracle

    def test_single_member_batch_matches_solo(self):
        request = _request({"scenario": {"households": 35, "seed": 11}})
        outcomes, report = execute_batch([request])
        assert report.coalesced == 1
        assert _served(outcomes[0]) == _solo_payload_oracle(request)

    @pytest.mark.chaos
    def test_nonzero_fault_plan_byte_identical_under_coalescing(self):
        # Per-member fault injectors draw masks keyed on (plan seed, stream,
        # round) — order-independent, so lockstep members replay exactly the
        # draws a solo run makes, chaos included.
        plan = {
            "seed": 13,
            "message_drop_rate": 0.15,
            "message_delay_rate": 0.1,
            "crash_rate": 0.05,
        }
        requests = [
            _request({
                "scenario": {"households": 40, "seed": seed},
                "config": {"fault_plan": dict(plan)},
            })
            for seed in range(3)
        ] + [
            _request({"scenario": {"households": 40, "seed": 99}})  # fault-free mate
        ]
        outcomes, report = execute_batch(requests)
        assert report.coalesced == 4
        for request, outcome in zip(requests, outcomes):
            assert _served(outcome) == _solo_payload_oracle(request)
        degraded = [outcome.payload["degraded_households"] for outcome in outcomes]
        assert any(count > 0 for count in degraded[:3])
        assert outcomes[0].payload["metadata"]["faults"]["plan"]["seed"] == 13

    def test_progress_events_stream_per_round(self):
        request = _request({"scenario": {"households": 40, "seed": 0}})
        seen: list[tuple[int, dict]] = []
        outcomes, _report = execute_batch(
            [request], progress=lambda index, event: seen.append((index, event))
        )
        rounds = [event for _index, event in seen if event["event"] == "round"]
        assert len(rounds) >= 1
        assert rounds == outcomes[0].events
        assert rounds[-1]["round"] == outcomes[0].payload["rounds"]
        assert rounds[-1]["messages_sent"] <= outcomes[0].payload["messages_sent"]


class TestRoutingAndSolos:
    def test_pinned_object_backend_does_not_coalesce(self):
        request = _request({"scenario": {"households": 12, "seed": 0}, "backend": "object"})
        assert not request_coalesces(request)
        outcome = run_solo(request)
        assert _served(outcome) == _solo_payload_oracle(request)
        # The object solo streams progress off the bus counters.
        rounds = [event for event in outcome.events if event["event"] == "round"]
        assert rounds and rounds[-1]["messages_sent"] > 0

    def test_full_society_config_routes_solo(self):
        request = _request({
            "scenario": {"households": 10, "seed": 0},
            "config": {"include_producer": True},
        })
        assert not request_coalesces(request)
        outcomes, report = execute_batch([request])
        assert report.solo == 1 and report.coalesced == 0
        assert outcomes[0].error is None
        assert outcomes[0].payload["metadata"]["backend"] == "object"

    def test_object_solo_and_coalesced_vectorized_agree(self):
        # The cross-backend equivalence, end to end through the serving path.
        coalesced = _request({"scenario": {"households": 15, "seed": 4}})
        solo = _request({"scenario": {"households": 15, "seed": 4}, "backend": "object"})
        outcomes, _report = execute_batch([coalesced])
        object_outcome = run_solo(solo)
        served = json.loads(_served(outcomes[0]))
        objected = json.loads(_served(object_outcome))
        assert served["metadata"]["backend"] == "vectorized"
        assert objected["metadata"]["backend"] == "object"
        for payload in (served, objected):
            payload["metadata"].pop("backend")
        assert served == objected

    def test_batch_isolates_a_failing_member(self):
        good = _request({"scenario": {"households": 20, "seed": 0}})
        bad = _request({"scenario": {"households": 20, "seed": 1}})
        # Sabotage one member's scenario construction.
        object.__setattr__(bad.scenario, "planning", "broken-mode")
        outcomes, report = execute_batch([good, bad])
        assert outcomes[0].error is None
        assert outcomes[1].error is not None and outcomes[1].payload is None
        assert report.coalesced == 1
        assert _served(outcomes[0]) == _solo_payload_oracle(good)
