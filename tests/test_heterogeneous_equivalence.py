"""Mixed-appliance populations across every backend, end to end.

PR 10 removes the scalar-fallback cliff for heterogeneous household sets:
planning runs on a :class:`~repro.grid.fleet.BucketedFleet` (one
:class:`~repro.grid.fleet.HouseholdFleet` per appliance signature, results
scattered back into population order) and negotiation runs the grouped
per-grid kernels when requirement grids differ.  These tests pin the whole
chain on a deliberately mixed population — two appliance libraries, permuted
ownership-dict orders, an appliance-less household — from the day-ahead
planner through ``repro.api.run`` on the object, vectorized and sharded
backends, under object and array rounds, with and without a chaos
:class:`~repro.runtime.faults.FaultPlan`.  The object path is the oracle;
everything must match it bit for bit.
"""

from __future__ import annotations

import pytest

from repro.api import run
from repro.core.planning import DayAheadPlanner
from repro.core.scenario import Scenario
from repro.grid.demand import DemandModel
from repro.grid.fleet import BucketedFleet
from repro.grid.weather import WeatherCondition, WeatherSample
from repro.negotiation.methods.offer import OfferMethod
from repro.negotiation.methods.request_for_bids import RequestForBidsMethod
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.reward_table import CutdownRewardRequirements
from repro.negotiation.strategy import ConstantBeta
from repro.runtime.faults import FaultPlan
from repro.runtime.rng import RandomSource

from test_array_rounds import assert_array_equivalent
from test_fast_session_equivalence import assert_equivalent
from test_grid_fleet import make_mixed_households

MILD = WeatherSample(temperature_c=12.0, condition=WeatherCondition.MILD)
COLD_FORECAST = WeatherSample(
    temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD
)
CHAOS_PLAN = FaultPlan(
    seed=11, message_drop_rate=0.08, message_delay_rate=0.1, crash_rate=0.05
)

METHOD_FACTORIES = {
    "reward_tables": lambda: RewardTablesMethod(
        max_reward=60.0, beta_controller=ConstantBeta(2.0)
    ),
    "request_for_bids": lambda: RequestForBidsMethod(),
    "offer": lambda: OfferMethod(x_max=0.8),
}


def make_planned_scenario(method_name: str = "reward_tables") -> Scenario:
    """Plan a peak day for the mixed population, deterministically.

    Everything is seeded, so repeated calls build bit-identical scenarios —
    each backend run gets its own independent Scenario instance, exactly as
    the fast-session equivalence tests do.
    """
    households = make_mixed_households()
    random = RandomSource(31, "hetero_equiv")
    demand_model = DemandModel(households, random.spawn("d"))
    capacity = demand_model.normal_capacity_for_target(quantile=0.8)
    planner = DayAheadPlanner(households, capacity, random=random.spawn("planner"))
    assert isinstance(planner.fleet, BucketedFleet)
    assert planner.planning_fallback is None
    for __ in range(3):
        planner.observe_day(MILD)
    scenario = planner.plan(COLD_FORECAST, method=METHOD_FACTORIES[method_name]())
    assert scenario is not None, "the cold forecast must predict a peak"
    return scenario


def make_hetero_grid_scenario(num_customers: int = 24) -> Scenario:
    """Calibrated population with a handful of *distinct* requirement grids."""
    requirements = []
    for i in range(num_customers):
        step = round(0.15 + 0.05 * (i % 4), 6)
        requirements.append(
            CutdownRewardRequirements(
                requirements={0.0: 0.0, step: 4.0 + i % 4, 0.8: 60.0 + i % 4},
                max_feasible_cutdown=0.8,
            )
        )
    from repro.agents.population import CustomerPopulation

    population = CustomerPopulation.calibrated(
        predicted_uses=[10.0 + (i % 7) for i in range(num_customers)],
        requirements=requirements,
        normal_use=8.0 * num_customers,
        max_allowed_overuse=2.0,
    )
    return Scenario(
        name="hetero_grids",
        population=population,
        method=RewardTablesMethod(max_reward=40.0, beta_controller=ConstantBeta(2.0)),
    )


class TestPlannedMixedPopulation:
    """The tentpole, end to end: plan on buckets, negotiate batched."""

    def test_auto_selects_a_batched_backend(self):
        result = run(make_planned_scenario(), backend="auto")
        assert result.metadata["backend"] in ("vectorized", "sharded")
        assert "planning_fallback" not in result.metadata

    @pytest.mark.parametrize("method_name", sorted(METHOD_FACTORIES))
    def test_vectorized_matches_object(self, method_name):
        reference = run(make_planned_scenario(method_name), backend="object")
        result = run(make_planned_scenario(method_name), backend="vectorized")
        assert_equivalent(reference, result)

    def test_sharded_matches_object(self):
        reference = run(make_planned_scenario(), backend="object")
        result = run(make_planned_scenario(), backend="sharded", shards=2)
        assert_equivalent(reference, result)

    def test_array_rounds_match_object_rounds(self):
        reference = run(
            make_planned_scenario(), backend="vectorized", rounds="object"
        )
        result = run(make_planned_scenario(), backend="vectorized", rounds="array")
        assert_array_equivalent(reference, result)

    def test_chaos_plan_agrees_across_batched_backends(self):
        # Fault injection is a fast-session-family contract: the object
        # path's message-bus faults are mechanically different, so the
        # oracle here is the vectorized session, matched by the sharded one.
        reference = run(
            make_planned_scenario(), backend="vectorized", fault_plan=CHAOS_PLAN
        )
        sharded = run(
            make_planned_scenario(),
            backend="sharded",
            shards=2,
            fault_plan=CHAOS_PLAN,
        )
        assert_equivalent(reference, sharded)
        assert reference.metadata["faults"]["injected"]["agent_crashes"] > 0

    def test_chaos_array_rounds_match(self):
        reference = run(
            make_planned_scenario(),
            backend="vectorized",
            rounds="object",
            fault_plan=CHAOS_PLAN,
        )
        result = run(
            make_planned_scenario(),
            backend="vectorized",
            rounds="array",
            fault_plan=CHAOS_PLAN,
        )
        assert_array_equivalent(reference, result)


class TestHeterogeneousGridScenarios:
    """Grouped-grid kernels across backends and round modes."""

    def test_auto_rides_grouped_kernels(self):
        result = run(make_hetero_grid_scenario(), backend="auto")
        assert result.metadata["backend"] == "vectorized"

    def test_vectorized_and_sharded_match_object(self):
        reference = run(make_hetero_grid_scenario(), backend="object")
        vectorized = run(make_hetero_grid_scenario(), backend="vectorized")
        assert_equivalent(reference, vectorized)
        sharded = run(
            make_hetero_grid_scenario(), backend="sharded", shards=2
        )
        assert_equivalent(reference, sharded)

    def test_array_rounds_with_chaos_match(self):
        reference = run(
            make_hetero_grid_scenario(),
            backend="vectorized",
            rounds="object",
            fault_plan=CHAOS_PLAN,
        )
        result = run(
            make_hetero_grid_scenario(),
            backend="vectorized",
            rounds="array",
            fault_plan=CHAOS_PLAN,
        )
        assert_array_equivalent(reference, result)
