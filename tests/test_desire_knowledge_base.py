"""Tests for repro.desire.knowledge_base."""

from __future__ import annotations

import pytest

from repro.desire.errors import KnowledgeError
from repro.desire.information_types import Atom, InformationState, TruthValue
from repro.desire.knowledge_base import Fact, KnowledgeBase, Pattern, Rule, var


class TestPattern:
    def test_match_binds_variables(self):
        pattern = Pattern("predicted_use", (var("C"), var("X")))
        binding = pattern.match(Atom("predicted_use", ("c1", 6.75)), {})
        assert binding == {"C": "c1", "X": 6.75}

    def test_match_respects_existing_binding(self):
        pattern = Pattern("predicted_use", (var("C"), var("X")))
        binding = pattern.match(Atom("predicted_use", ("c1", 6.75)), {"C": "c2"})
        assert binding is None

    def test_match_constant_mismatch(self):
        pattern = Pattern("predicted_use", ("c1", var("X")))
        assert pattern.match(Atom("predicted_use", ("c2", 1.0)), {}) is None

    def test_ground_requires_full_binding(self):
        pattern = Pattern("bid", (var("C"), var("X")))
        atom = pattern.ground({"C": "c1", "X": 0.4})
        assert atom == Atom("bid", ("c1", 0.4))
        with pytest.raises(KnowledgeError):
            pattern.ground({"C": "c1"})

    def test_variables_and_str(self):
        pattern = Pattern("bid", (var("C"), 0.4), negated=True)
        assert pattern.variables() == {"C"}
        assert str(pattern).startswith("not ")


class TestRule:
    def test_rule_requires_conclusion(self):
        with pytest.raises(KnowledgeError):
            Rule("empty", antecedent=(), consequent=())

    def test_rule_rejects_unbound_conclusion_variable(self):
        with pytest.raises(KnowledgeError):
            Rule(
                "unbound",
                antecedent=(Pattern("a", (var("X"),)),),
                consequent=(Pattern("b", (var("Y"),)),),
            )

    def test_negated_antecedent_variables_must_be_bound_positively(self):
        with pytest.raises(KnowledgeError):
            Rule(
                "bad_negation",
                antecedent=(Pattern("a", (var("X"),), negated=True),),
                consequent=(Pattern("b", ("constant",)),),
            )

    def test_bindings_with_guard(self):
        rule = Rule(
            "acceptable",
            antecedent=(
                Pattern("offered", (var("Cut"), var("Reward"))),
                Pattern("required", (var("Cut"), var("Need"))),
            ),
            consequent=(Pattern("acceptable_cutdown", (var("Cut"),)),),
            guards=(lambda b: b["Reward"] >= b["Need"],),
        )
        state = InformationState()
        state.assert_atom(Atom("offered", (0.3, 9.0)))
        state.assert_atom(Atom("offered", (0.2, 5.0)))
        state.assert_atom(Atom("required", (0.3, 10.0)))
        state.assert_atom(Atom("required", (0.2, 4.0)))
        bindings = rule.bindings(state)
        assert len(bindings) == 1
        assert bindings[0]["Cut"] == 0.2


class TestKnowledgeBase:
    def build_acceptability_kb(self) -> KnowledgeBase:
        """The Customer Agent's acceptability knowledge expressed as rules."""
        return KnowledgeBase(
            "acceptability",
            rules=[
                Rule(
                    "acceptable_when_reward_sufficient",
                    antecedent=(
                        Pattern("offered", (var("Cut"), var("Reward"))),
                        Pattern("required", (var("Cut"), var("Need"))),
                    ),
                    consequent=(Pattern("acceptable", (var("Cut"),)),),
                    guards=(lambda b: b["Reward"] >= b["Need"],),
                ),
            ],
        )

    def test_forward_chain_derives_acceptable_cutdowns(self):
        kb = self.build_acceptability_kb()
        state = InformationState()
        for cutdown, reward in [(0.1, 2.0), (0.2, 5.0), (0.3, 9.0), (0.4, 17.0)]:
            state.assert_atom(Atom("offered", (cutdown, reward)))
        for cutdown, need in [(0.1, 1.0), (0.2, 4.0), (0.3, 10.0), (0.4, 21.0)]:
            state.assert_atom(Atom("required", (cutdown, need)))
        kb.forward_chain(state)
        acceptable = {a.arguments[0] for a in state.atoms_of_relation("acceptable")}
        assert acceptable == {0.1, 0.2}

    def test_facts_are_seeded(self):
        kb = KnowledgeBase(
            "facts",
            rules=[
                Rule(
                    "propagate",
                    antecedent=(Pattern("a", (var("X"),)),),
                    consequent=(Pattern("b", (var("X"),)),),
                )
            ],
            facts=[Fact(Atom("a", (1,)))],
        )
        state = InformationState()
        changes = kb.forward_chain(state)
        assert changes >= 2
        assert state.holds(Atom("b", (1,)))

    def test_chaining_through_multiple_rules(self):
        kb = KnowledgeBase(
            "chain",
            rules=[
                Rule("r1", (Pattern("a", (var("X"),)),), (Pattern("b", (var("X"),)),)),
                Rule("r2", (Pattern("b", (var("X"),)),), (Pattern("c", (var("X"),)),)),
                Rule("r3", (Pattern("c", (var("X"),)),), (Pattern("d", (var("X"),)),)),
            ],
        )
        state = InformationState()
        state.assert_atom(Atom("a", ("seed",)))
        kb.forward_chain(state)
        assert state.holds(Atom("d", ("seed",)))

    def test_negated_condition(self):
        kb = KnowledgeBase(
            "negation",
            rules=[
                Rule(
                    "fire_unless_blocked",
                    antecedent=(
                        Pattern("candidate", (var("X"),)),
                        Pattern("blocked", (var("X"),), negated=True),
                    ),
                    consequent=(Pattern("selected", (var("X"),)),),
                )
            ],
        )
        state = InformationState()
        state.assert_atom(Atom("candidate", ("a",)))
        state.assert_atom(Atom("candidate", ("b",)))
        state.assert_atom(Atom("blocked", ("b",)))
        kb.forward_chain(state)
        selected = {a.arguments[0] for a in state.atoms_of_relation("selected")}
        assert selected == {"a"}

    def test_negative_conclusions(self):
        kb = KnowledgeBase(
            "negative",
            rules=[
                Rule(
                    "reject",
                    antecedent=(Pattern("bad", (var("X"),)),),
                    consequent=(Pattern("approved", (var("X"),), negated=True),),
                )
            ],
        )
        state = InformationState()
        state.assert_atom(Atom("bad", ("x",)))
        kb.forward_chain(state)
        assert state.value_of(Atom("approved", ("x",))) is TruthValue.FALSE

    def test_quiescence_is_reached_and_idempotent(self):
        kb = self.build_acceptability_kb()
        state = InformationState()
        state.assert_atom(Atom("offered", (0.2, 5.0)))
        state.assert_atom(Atom("required", (0.2, 4.0)))
        first = kb.forward_chain(state)
        second = kb.forward_chain(state)
        assert first > 0
        assert second == 0

    def test_composition_via_include(self):
        base = KnowledgeBase(
            "base",
            rules=[Rule("r1", (Pattern("a", (var("X"),)),), (Pattern("b", (var("X"),)),))],
        )
        extended = KnowledgeBase(
            "extended",
            rules=[Rule("r2", (Pattern("b", (var("X"),)),), (Pattern("c", (var("X"),)),))],
        )
        extended.include(base)
        assert len(extended.rules()) == 2
        state = InformationState()
        state.assert_atom(Atom("a", (1,)))
        extended.forward_chain(state)
        assert state.holds(Atom("c", (1,)))

    def test_self_inclusion_rejected(self):
        kb = KnowledgeBase("self")
        with pytest.raises(KnowledgeError):
            kb.include(kb)

    def test_empty_name_rejected(self):
        with pytest.raises(KnowledgeError):
            KnowledgeBase("")
