"""Sharded-runtime equivalence and mechanics.

The sharded runtime is only trustworthy if it is *indistinguishable* from
both existing paths at equal seeds: :class:`ShardedSession` must reproduce
:class:`FastSession` and :class:`NegotiationSession` bid for bid while
cutting the population into parallel slices.  These tests pin that contract
(all three backends, every negotiation method, both stock policies, the
scalar fallback), plus the sharding mechanics themselves: the partitioner,
the zero-copy slices, the per-round kernel cache and the between-round
reconciliation of shard-local aggregates.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.agents.sharded import (
    ShardedPopulation,
    default_shard_count,
    partition_bounds,
)
from repro.agents.vectorized import VectorizedPopulation
from repro.core.fast_session import FastSession
from repro.core.scenario import Scenario, paper_prototype_scenario, synthetic_scenario
from repro.core.session import NegotiationSession
from repro.core.sharded_session import ShardedSession
from repro.negotiation.methods.offer import OfferMethod
from repro.negotiation.methods.request_for_bids import RequestForBidsMethod
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.reward_table import CutdownRewardRequirements, RewardTable
from repro.negotiation.strategy import ConstantBeta, ExpectedGainBidding

from test_fast_session_equivalence import assert_equivalent


def run_three_ways(make_scenario, shards: int = 3) -> tuple:
    """Object, fast and sharded results on independently built scenarios."""
    slow_result = NegotiationSession(make_scenario(), seed=0).run()
    fast_result = FastSession(make_scenario(), seed=0).run()
    sharded_result = ShardedSession(make_scenario(), seed=0, shards=shards).run()
    return slow_result, fast_result, sharded_result


class TestPartitioning:
    def test_bounds_cover_population_contiguously(self):
        bounds = partition_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]
        assert bounds[0][0] == 0 and bounds[-1][1] == 10

    def test_shard_sizes_differ_by_at_most_one(self):
        for customers in (1, 7, 100, 10_001):
            for shards in (1, 2, 3, 8):
                sizes = [stop - start for start, stop in partition_bounds(customers, shards)]
                assert sum(sizes) == customers
                assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_customers_clamps(self):
        assert partition_bounds(3, 16) == [(0, 1), (1, 2), (2, 3)]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            partition_bounds(0, 2)
        with pytest.raises(ValueError):
            partition_bounds(5, 0)

    def test_default_shard_count_is_positive(self):
        assert default_shard_count() >= 1


class TestPopulationSlices:
    @pytest.fixture
    def population(self) -> VectorizedPopulation:
        scenario = synthetic_scenario(num_households=20, seed=4)
        return VectorizedPopulation.from_population(scenario.population)

    def test_slices_are_zero_copy_views(self, population):
        shard = population.slice(5, 12)
        assert len(shard) == 7
        assert np.shares_memory(shard.predicted_uses, population.predicted_uses)
        assert np.shares_memory(shard.requirement_matrix, population.requirement_matrix)
        assert shard.customer_ids == population.customer_ids[5:12]

    def test_slice_kernels_match_global_rows(self, population):
        table = RewardTable.convex(35.0, exponent=1.6)
        full = population.highest_acceptable_cutdowns(table)
        shard = population.slice(3, 11)
        assert shard.highest_acceptable_cutdowns(table).tolist() == full[3:11].tolist()

    def test_invalid_ranges_rejected(self, population):
        for start, stop in ((-1, 5), (5, 5), (10, 3), (0, 999)):
            with pytest.raises(ValueError):
                population.slice(start, stop)

    def test_sharded_kernels_concatenate_to_global(self, population):
        sharded = ShardedPopulation(population, 4)
        table = RewardTable.convex(40.0, exponent=1.4)
        assert sharded.num_shards == 4
        for kernel in ("highest_acceptable_cutdowns", "expected_gain_cutdowns"):
            batched = getattr(population, kernel)(table)
            fanned = getattr(sharded, kernel)(table)
            assert fanned.tolist() == batched.tolist()
        queries = np.linspace(0.0, 0.9, len(population))
        assert sharded.interpolated_requirements(queries).tolist() == (
            population.interpolated_requirements(queries).tolist()
        )

    def test_heterogeneous_parent_keeps_shards_on_grouped_kernels(self):
        coarse = CutdownRewardRequirements(
            requirements={0.0: 0.0, 0.2: 4.0, 0.4: 21.0, 0.8: 95.0},
            max_feasible_cutdown=0.8,
        )
        fine = CutdownRewardRequirements.paper_figure_8_customer()
        population = VectorizedPopulation(
            customer_ids=["a", "b", "c", "d"],
            predicted_uses=[12.0, 9.0, 14.0, 11.0],
            allowed_uses=[12.0, 9.0, 14.0, 11.0],
            requirements=[coarse, fine, coarse, fine],
        )
        assert population.is_vectorizable
        assert population.requirement_grid is None
        assert population.num_grid_groups == 2
        sharded = ShardedPopulation(population, 2)
        # Shards of a grouped parent regroup their own rows (never a shared
        # matrix) so every shard runs the same grouped kernel flavour.
        for shard in sharded.shards:
            assert shard.is_vectorizable
            assert shard.requirement_grid is None
            assert shard.num_grid_groups >= 1
        table = RewardTable.convex(40.0, exponent=1.5)
        assert sharded.highest_acceptable_cutdowns(table).tolist() == (
            population.highest_acceptable_cutdowns(table).tolist()
        )


class TestKernelCache:
    @pytest.fixture
    def population(self) -> VectorizedPopulation:
        scenario = synthetic_scenario(num_households=15, seed=2)
        return VectorizedPopulation.from_population(scenario.population)

    def test_required_rewards_cached_per_table(self, population):
        table = RewardTable.convex(30.0, exponent=1.5)
        first = population._required_rewards_for(table)
        assert population.kernel_cache_stats() == {"hits": 0, "misses": 1}
        second = population._required_rewards_for(table)
        assert population.kernel_cache_stats()["hits"] == 1
        assert all(a is b for a, b in zip(first, second))
        # An equal-content table built independently also hits (content key).
        clone = RewardTable(dict(table.entries))
        population._required_rewards_for(clone)
        assert population.kernel_cache_stats()["hits"] == 2

    def test_both_bidding_kernels_share_one_computation(self, population):
        table = RewardTable.convex(45.0, exponent=1.3)
        population.highest_acceptable_cutdowns(table)
        misses = population.kernel_cache_stats()["misses"]
        population.expected_gain_cutdowns(table)
        assert population.kernel_cache_stats()["misses"] == misses
        assert population.kernel_cache_stats()["hits"] >= 1

    def test_interpolation_cached_per_query_vector(self, population):
        queries = np.linspace(0.0, 0.8, len(population))
        first = population.interpolated_requirements(queries)
        second = population.interpolated_requirements(queries.copy())
        assert first is second
        assert population.kernel_cache_stats()["hits"] == 1

    def test_cached_arrays_are_read_only(self, population):
        table = RewardTable.convex(30.0, exponent=1.5)
        __, __, required = population._required_rewards_for(table)
        with pytest.raises(ValueError):
            required[0, 0] = 1.0
        result = population.interpolated_requirements(
            np.linspace(0.0, 0.5, len(population))
        )
        with pytest.raises(ValueError):
            result[0] = 1.0

    def test_cache_is_bounded(self, population):
        from repro.agents.vectorized import KERNEL_CACHE_SIZE

        for index in range(KERNEL_CACHE_SIZE + 3):
            population._required_rewards_for(
                RewardTable.convex(20.0 + index, exponent=1.5)
            )
        assert len(population._required_rewards_cache) <= KERNEL_CACHE_SIZE

    def test_distinct_tables_miss(self, population):
        population._required_rewards_for(RewardTable.convex(30.0, exponent=1.5))
        population._required_rewards_for(RewardTable.convex(31.0, exponent=1.5))
        assert population.kernel_cache_stats() == {"hits": 0, "misses": 2}


class TestThreeWayEquivalence:
    """Acceptance criterion: sharded ≡ vectorized ≡ object at fixed seeds."""

    @pytest.mark.parametrize("num_households", [4, 12, 30])
    @pytest.mark.parametrize("shards", [2, 3])
    def test_reward_tables(self, num_households, shards):
        def make():
            return synthetic_scenario(num_households=num_households, seed=7)

        slow, fast, sharded = run_three_ways(make, shards=shards)
        assert_equivalent(slow, sharded)
        assert_equivalent(fast, sharded)

    def test_expected_gain_policy(self):
        def make():
            method = RewardTablesMethod(
                max_reward=60.0,
                beta_controller=ConstantBeta(2.0),
                bidding_policy=ExpectedGainBidding(),
                reward_epsilon=0.3,
            )
            return synthetic_scenario(num_households=16, seed=2, method=method)

        slow, __, sharded = run_three_ways(make)
        assert_equivalent(slow, sharded)

    def test_offer_method(self):
        def make():
            return synthetic_scenario(
                num_households=20, seed=2, method=OfferMethod(x_max=0.8)
            )

        slow, __, sharded = run_three_ways(make)
        assert_equivalent(slow, sharded)

    def test_request_for_bids_method(self):
        def make():
            return synthetic_scenario(
                num_households=15, seed=1, method=RequestForBidsMethod()
            )

        slow, __, sharded = run_three_ways(make)
        assert_equivalent(slow, sharded)

    def test_paper_prototype(self):
        slow, __, sharded = run_three_ways(paper_prototype_scenario)
        assert_equivalent(slow, sharded)

    def test_heterogeneous_grids_fall_back_and_match(self):
        coarse = CutdownRewardRequirements(
            requirements={0.0: 0.0, 0.2: 4.0, 0.4: 21.0, 0.8: 95.0},
            max_feasible_cutdown=0.8,
        )
        fine = CutdownRewardRequirements.paper_figure_8_customer()

        def make():
            from repro.agents.population import CustomerPopulation

            population = CustomerPopulation.calibrated(
                predicted_uses=[12.0, 9.0, 14.0, 11.0],
                requirements=[coarse, fine, coarse, fine],
                normal_use=30.0,
                max_allowed_overuse=2.0,
            )
            method = RewardTablesMethod(
                max_reward=40.0, beta_controller=ConstantBeta(2.0)
            )
            return Scenario(name="hetero", population=population, method=method)

        slow, __, sharded = run_three_ways(make, shards=2)
        assert_equivalent(slow, sharded)

    @pytest.mark.tier2
    @pytest.mark.parametrize("num_households", [200, 1000])
    @pytest.mark.parametrize("seed", [0, 11])
    def test_large_population_matrix(self, num_households, seed):
        def make():
            return synthetic_scenario(num_households=num_households, seed=seed)

        fast = FastSession(make(), seed=0).run()
        sharded = ShardedSession(make(), seed=0, shards=4).run()
        assert_equivalent(fast, sharded)


class TestShardedSessionMechanics:
    def test_build_is_idempotent_and_population_is_sharded(self):
        session = ShardedSession(paper_prototype_scenario(), seed=0, shards=2)
        first = session.build()
        assert session.build() is first
        assert isinstance(first, ShardedPopulation)
        assert session.num_shards == 2

    def test_shards_clamped_to_population(self):
        session = ShardedSession(paper_prototype_scenario(), seed=0, shards=64)
        assert session.num_shards == len(session.build())

    def test_refuses_second_run(self):
        session = ShardedSession(paper_prototype_scenario(), seed=0, shards=2)
        session.run()
        with pytest.raises(RuntimeError, match="already ran"):
            session.run()

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="positive worker count"):
            ShardedSession(paper_prototype_scenario(), shards=0)

    def test_executor_is_released_after_run(self):
        session = ShardedSession(paper_prototype_scenario(), seed=0, shards=3)
        session.run()
        assert session._executor is None
        assert session.sharded._executor is None

    def test_reconciled_overuse_matches_authoritative_estimate(self):
        session = ShardedSession(
            synthetic_scenario(num_households=40, seed=5), seed=0, shards=4
        )
        result = session.run()
        reconciled = session.reconciled_overuses()
        authoritative = [r.predicted_overuse_after for r in result.record.rounds]
        assert len(reconciled) == len(authoritative)
        for ours, theirs in zip(reconciled, authoritative):
            assert ours == pytest.approx(theirs, abs=1e-9)

    def test_reconciliation_aligns_when_round_limit_cuts_the_run_short(self):
        # The final bid exchange of a max_simulation_rounds-bounded run is
        # never evaluated into a RoundRecord; the reconciliation must drop
        # its cut-down vector too, staying one-to-one with record.rounds.
        session = ShardedSession(
            synthetic_scenario(num_households=40, seed=5),
            seed=0, shards=4, max_simulation_rounds=3,
        )
        result = session.run()
        reconciled = session.reconciled_overuses()
        assert len(reconciled) == len(result.record.rounds) == 2
        for ours, theirs in zip(
            reconciled, [r.predicted_overuse_after for r in result.record.rounds]
        ):
            assert ours == pytest.approx(theirs, abs=1e-9)

    def test_shard_outcome_stats_reduce_to_global_totals(self):
        session = ShardedSession(
            synthetic_scenario(num_households=30, seed=3), seed=0, shards=3
        )
        result = session.run()
        stats = session.shard_outcome_stats()
        assert len(stats) == 3
        assert sum(s["customers"] for s in stats) == 30
        assert sum(s["accepted"] for s in stats) == sum(
            1 for o in result.customer_outcomes.values() if o.awarded
        )
        assert math.fsum(s["reward_sum"] for s in stats) == pytest.approx(
            result.total_reward_paid
        )
        assert math.fsum(s["surplus_sum"] for s in stats) == pytest.approx(
            math.fsum(o.surplus for o in result.customer_outcomes.values())
        )

    def test_stats_require_a_completed_run(self):
        session = ShardedSession(paper_prototype_scenario(), seed=0, shards=2)
        with pytest.raises(RuntimeError, match="run\\(\\)"):
            session.shard_outcome_stats()
        with pytest.raises(RuntimeError, match="run\\(\\)"):
            session.reconciled_overuses()
