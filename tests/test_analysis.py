"""Tests for the analysis package (metrics, convergence, statistics, reporting, plotting)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.convergence import (
    analyse_convergence,
    analyse_trajectory,
    bid_trajectory_is_monotone,
    reward_trajectory_is_monotone,
)
from repro.analysis.metrics import (
    compare_methods,
    reward_statistics,
    rounds_statistics,
    summarise_results,
)
from repro.analysis.plotting import ascii_bar_chart, ascii_line_chart, ascii_trajectories
from repro.analysis.reporting import format_key_values, format_table, render_report
from repro.analysis.statistics import (
    confidence_interval,
    relative_difference,
    summarise,
    within_factor,
)


class TestStatistics:
    def test_summarise(self):
        stats = summarise([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        assert stats.median == pytest.approx(2.5)
        assert stats.std > 0
        assert summarise([5.0]).std == 0.0

    def test_summarise_empty_rejected(self):
        with pytest.raises(ValueError):
            summarise([])

    def test_confidence_interval_contains_mean(self):
        values = [10.0, 11.0, 9.0, 10.5, 9.5]
        low, high = confidence_interval(values, 0.95)
        assert low < 10.0 < high
        narrow_low, narrow_high = confidence_interval(values, 0.90)
        assert (narrow_high - narrow_low) <= (high - low)

    def test_confidence_interval_single_sample(self):
        assert confidence_interval([3.0]) == (3.0, 3.0)

    def test_confidence_interval_validation(self):
        with pytest.raises(ValueError):
            confidence_interval([], 0.95)
        with pytest.raises(ValueError):
            confidence_interval([1.0], 1.5)

    def test_confidence_interval_unusual_level(self):
        low, high = confidence_interval([10.0, 12.0, 8.0, 11.0], confidence=0.8)
        assert low < 10.25 < high

    def test_relative_difference_and_within_factor(self):
        assert relative_difference(12.0, 10.0) == pytest.approx(0.2)
        assert relative_difference(0.0, 0.0) == 0.0
        assert math.isinf(relative_difference(1.0, 0.0))
        assert within_factor(12.0, 10.0, 1.5)
        assert not within_factor(20.0, 10.0, 1.5)
        assert within_factor(0.0, 0.0, 2.0)
        with pytest.raises(ValueError):
            within_factor(1.0, 1.0, 0.5)


class TestConvergence:
    def test_analyse_trajectory(self):
        analysis = analyse_trajectory([35.0, 30.0, 25.0, 13.0])
        assert analysis.rounds == 3
        assert analysis.initial_overuse == 35.0
        assert analysis.final_overuse == 13.0
        assert analysis.overuse_monotone_nonincreasing
        assert analysis.mean_reduction_per_round == pytest.approx(22.0 / 3)
        assert 0 < analysis.geometric_decay_rate < 1
        assert analysis.rounds_to_halve_overuse == 3
        assert analysis.as_dict()["rounds"] == 3

    def test_non_monotone_detected(self):
        analysis = analyse_trajectory([10.0, 12.0, 8.0])
        assert not analysis.overuse_monotone_nonincreasing

    def test_trajectory_needs_initial_value(self):
        with pytest.raises(ValueError):
            analyse_trajectory([])

    def test_already_converged(self):
        analysis = analyse_trajectory([0.0])
        assert analysis.rounds == 0
        assert analysis.rounds_to_halve_overuse == 0
        assert analysis.mean_reduction_per_round == 0.0

    def test_never_halves(self):
        analysis = analyse_trajectory([10.0, 9.0, 8.0])
        assert analysis.rounds_to_halve_overuse is None

    def test_monotone_helpers(self):
        assert reward_trajectory_is_monotone([17.0, 21.5, 24.6])
        assert not reward_trajectory_is_monotone([17.0, 16.0])
        assert bid_trajectory_is_monotone([0.2, 0.4, 0.4])
        assert not bid_trajectory_is_monotone([0.4, 0.2])

    def test_analyse_convergence_of_result(self, paper_result):
        analysis = analyse_convergence(paper_result)
        assert analysis.rounds == paper_result.rounds
        assert analysis.overuse_monotone_nonincreasing


class TestMetrics:
    def test_summarise_results_and_statistics(self, paper_result):
        metrics = summarise_results([paper_result, paper_result])
        assert metrics.runs == 2
        assert metrics.method == "reward_tables"
        assert metrics.mean_rounds == paper_result.rounds
        assert metrics.mean_reward_paid == pytest.approx(paper_result.total_reward_paid)
        assert metrics.as_dict()["mean_participation"] > 0
        assert reward_statistics([paper_result]).mean == pytest.approx(
            paper_result.total_reward_paid
        )
        assert rounds_statistics([paper_result]).mean == paper_result.rounds

    def test_summarise_results_rejects_mixed_methods(self, paper_result):
        import copy

        other = copy.copy(paper_result)
        other.method_name = "offer"
        with pytest.raises(ValueError):
            summarise_results([paper_result, other])
        with pytest.raises(ValueError):
            summarise_results([])

    def test_compare_methods(self, paper_result):
        rows = compare_methods({"reward_tables": [paper_result]})
        assert len(rows) == 1
        with pytest.raises(ValueError):
            compare_methods({})


class TestReportingAndPlotting:
    def test_format_table_alignment_and_precision(self):
        table = format_table(
            [{"name": "a", "value": 1.23456}, {"name": "bb", "value": 10.0}],
            precision=2,
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "1.23" in table and "10.00" in table
        assert "name" in lines[1] and "value" in lines[1]

    def test_format_table_empty_and_booleans(self):
        assert "(empty table)" in format_table([])
        rendered = format_table([{"ok": True, "bad": False}])
        assert "yes" in rendered and "no" in rendered

    def test_format_key_values(self):
        rendered = format_key_values({"alpha": 1.5, "beta_long_name": "x"})
        assert "alpha" in rendered and "beta_long_name" in rendered
        assert format_key_values({}) == "(no values)"

    def test_render_report(self):
        report = render_report({"Section": "content"}, title="Title")
        assert report.startswith("Title")
        assert "Section" in report and "content" in report

    def test_ascii_bar_chart(self):
        chart = ascii_bar_chart({"offer": 1.0, "reward_tables": 3.0}, width=20, title="rounds")
        assert "offer" in chart and "#" in chart
        assert ascii_bar_chart({}) == "(no data)"
        with pytest.raises(ValueError):
            ascii_bar_chart({"a": 1.0}, width=0)

    def test_ascii_bar_chart_zero_values(self):
        chart = ascii_bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart

    def test_ascii_line_chart(self):
        chart = ascii_line_chart([1, 2, 3, 4, 5, 4, 3], height=5, threshold=3.0, title="demand")
        assert "demand" in chart
        assert "*" in chart and "-" in chart
        assert ascii_line_chart([]) == "(no data)"
        with pytest.raises(ValueError):
            ascii_line_chart([1.0], height=1)

    def test_ascii_line_chart_flat_series(self):
        chart = ascii_line_chart([2.0, 2.0, 2.0], height=4)
        assert "*" in chart

    def test_ascii_line_chart_resampling(self):
        chart = ascii_line_chart(list(range(100)), height=5, width=20)
        longest_row = max(len(line) for line in chart.splitlines())
        assert longest_row <= 20 + 15

    def test_ascii_trajectories(self):
        rendered = ascii_trajectories({"overuse": [35.0, 30.0, 13.0]}, title="traj")
        assert "overuse" in rendered and "35.00" in rendered
        assert ascii_trajectories({}) == "(no data)"
