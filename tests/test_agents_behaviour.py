"""Behavioural tests for the runtime agents (UA, CA, Producer, World, RCA)."""

from __future__ import annotations

import pytest

from repro.agents.customer_agent import CustomerAgent
from repro.agents.external_world import ExternalWorld
from repro.agents.population import CustomerPopulation, PopulationConfig
from repro.agents.producer_agent import ProducerAgent
from repro.agents.resource_consumer_agent import ResourceConsumerAgent
from repro.agents.utility_agent import NegotiationPhase, UtilityAgent
from repro.grid.appliances import standard_appliance_library
from repro.grid.household import Household
from repro.grid.production import ProductionModel
from repro.grid.weather import WeatherCondition, WeatherSample
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.reward_table import CutdownRewardRequirements
from repro.negotiation.strategy import ConstantBeta
from repro.negotiation.termination import TerminationReason
from repro.runtime.clock import TimeInterval
from repro.runtime.messaging import Message, Performative
from repro.runtime.rng import RandomSource
from repro.runtime.simulation import Simulation


def build_negotiation(tiny_population, method=None, max_rounds=50):
    """Wire a UA and CAs for the tiny population onto a fresh simulation."""
    method = method or RewardTablesMethod(max_reward=60.0, beta_controller=ConstantBeta(2.0))
    simulation = Simulation(seed=0, max_rounds=max_rounds)
    customer_agents = tiny_population.build_customer_agents(method)
    utility = UtilityAgent(
        context=tiny_population.utility_context(),
        method=method,
        customer_agent_names=[agent.name for agent in customer_agents],
    )
    simulation.add_participant(utility)
    for agent in customer_agents:
        simulation.add_participant(agent)
    return simulation, utility, customer_agents


class TestUtilityAndCustomerAgents:
    def test_negotiation_runs_to_completion(self, tiny_population):
        simulation, utility, customers = build_negotiation(tiny_population)
        simulation.run(stop_when=lambda: utility.finished)
        assert utility.finished
        assert utility.record.final_overuse is not None
        assert utility.record.final_overuse <= tiny_population.initial_overuse

    def test_announcements_and_bids_flow_through_bus(self, tiny_population):
        simulation, utility, customers = build_negotiation(tiny_population)
        simulation.run(stop_when=lambda: utility.finished)
        histogram = simulation.bus.messages_by_performative()
        assert histogram[Performative.ANNOUNCE] == utility.record.num_rounds * len(customers)
        assert histogram[Performative.BID] >= len(customers)
        assert (
            histogram.get(Performative.AWARD, 0) + histogram.get(Performative.REJECT, 0)
            == len(customers)
        )

    def test_no_negotiation_when_no_peak(self):
        population = CustomerPopulation.calibrated(
            predicted_uses=[5.0, 5.0],
            requirements=[CutdownRewardRequirements.paper_figure_8_customer()] * 2,
            normal_use=20.0,
        )
        method = RewardTablesMethod(max_reward=30.0)
        simulation = Simulation(seed=0)
        agents = population.build_customer_agents(method)
        utility = UtilityAgent(
            context=population.utility_context(),
            method=method,
            customer_agent_names=[a.name for a in agents],
        )
        simulation.add_participant(utility)
        for agent in agents:
            simulation.add_participant(agent)
        simulation.run(rounds=2)
        assert utility.phase is NegotiationPhase.FINISHED
        assert utility.record.termination_reason is TerminationReason.OVERUSE_ACCEPTABLE
        assert utility.record.num_rounds == 0

    def test_customer_bid_history_is_monotone(self, tiny_population):
        simulation, utility, customers = build_negotiation(tiny_population)
        simulation.run(stop_when=lambda: utility.finished)
        for agent in customers:
            cutdowns = agent.bids_as_cutdowns()
            assert all(b >= a for a, b in zip(cutdowns, cutdowns[1:]))

    def test_awards_are_recorded_on_both_sides(self, tiny_population):
        simulation, utility, customers = build_negotiation(tiny_population)
        simulation.run(stop_when=lambda: utility.finished)
        for agent in customers:
            award = utility.awards[agent.customer_id]
            if award.accepted:
                assert agent.award is not None
                assert agent.award.reward == award.reward
                assert agent.total_reward_received == award.reward
        assert utility.total_reward_paid == pytest.approx(
            sum(award.reward for award in utility.awards.values())
        )

    def test_monotonic_concession_protocol_not_violated(self, tiny_population):
        simulation, utility, customers = build_negotiation(tiny_population)
        simulation.run(stop_when=lambda: utility.finished)
        assert utility.protocol.violations == []

    def test_utility_requires_customers(self, tiny_population):
        with pytest.raises(ValueError):
            UtilityAgent(
                context=tiny_population.utility_context(),
                method=RewardTablesMethod(),
                customer_agent_names=[],
            )

    def test_customer_realised_surplus_nonnegative_for_awarded(self, tiny_population):
        simulation, utility, customers = build_negotiation(tiny_population)
        simulation.run(stop_when=lambda: utility.finished)
        for agent in customers:
            if agent.award is not None and agent.award.accepted and agent.award.committed_cutdown > 0:
                # The customer only ever bids acceptable cut-downs, so its
                # reward covers its requirement.
                assert agent.realised_surplus() >= -1e-9


class TestInformationAgents:
    def test_producer_agent_replies_to_requests(self):
        production = ProductionModel.two_tier(100.0, 40.0)
        producer = ProducerAgent(production)
        simulation = Simulation(seed=0)
        simulation.add_participant(producer)
        simulation.bus.register("asker")
        simulation.bus.send(
            Message(
                sender="asker", receiver=producer.name,
                performative=Performative.REQUEST, content={"requested": "status"},
            )
        )
        simulation.step_round()
        replies = simulation.bus.mailbox("asker").collect_matching(Performative.REPLY)
        assert len(replies) == 1
        assert replies[0].content["normal_capacity_kw"] == 100.0

    def test_external_world_observation_and_subscription(self, cold_day):
        world = ExternalWorld(weather=cold_day)
        simulation = Simulation(seed=0)
        simulation.add_participant(world)
        simulation.bus.register("utility_agent")
        world.subscribe("utility_agent")
        simulation.step_round()
        informs = simulation.bus.mailbox("utility_agent").collect_matching(Performative.INFORM)
        assert len(informs) == 1
        observation = informs[0].content
        assert observation["weather_condition"] == WeatherCondition.SEVERE_COLD.value
        assert observation["heating_factor"] > 1.0

    def test_external_world_lazy_weather(self):
        world = ExternalWorld()
        assert world.weather is not None
        fixed = WeatherSample(0.0, WeatherCondition.COLD)
        world.set_weather(fixed)
        assert world.weather == fixed

    def test_resource_consumer_agent_reports_and_accepts_instructions(self, cold_day):
        library = standard_appliance_library()
        household = Household.generate("h9", RandomSource(2, "rca"), library)
        appliance = library.get("hot_water_boiler")
        rca = ResourceConsumerAgent(
            household=household, appliance=appliance, usage_scale=1.0,
            owner_agent="customer_agent_h9", weather=cold_day,
        )
        interval = TimeInterval.from_hours(17, 20)
        assert rca.saveable_energy(interval) > 0
        assert rca.energy_in(interval) >= rca.saveable_energy(interval)

        simulation = Simulation(seed=0)
        simulation.add_participant(rca)
        simulation.bus.register("customer_agent_h9")
        simulation.bus.send(Message(
            sender="customer_agent_h9", receiver=rca.name,
            performative=Performative.REQUEST, content=interval,
        ))
        simulation.bus.send(Message(
            sender="customer_agent_h9", receiver=rca.name,
            performative=Performative.INFORM, content={"cutdown": 0.3},
        ))
        simulation.step_round()
        mailbox = simulation.bus.mailbox("customer_agent_h9")
        replies = mailbox.collect_matching(Performative.REPLY)
        confirms = mailbox.collect_matching(Performative.CONFIRM)
        assert len(replies) == 1 and replies[0].content["saveable_kwh"] > 0
        assert len(confirms) == 1
        assert rca.instructed_cutdown == pytest.approx(0.3)

    def test_rca_ignores_invalid_instructions(self, cold_day):
        library = standard_appliance_library()
        household = Household.generate("h9", RandomSource(2, "rca"), library)
        rca = ResourceConsumerAgent(
            household=household, appliance=library.get("lighting"), usage_scale=1.0,
            owner_agent="owner", weather=cold_day,
        )
        simulation = Simulation(seed=0)
        simulation.add_participant(rca)
        simulation.bus.register("owner")
        simulation.bus.send(Message(
            sender="owner", receiver=rca.name,
            performative=Performative.INFORM, content={"cutdown": 5.0},
        ))
        simulation.step_round()
        assert rca.instructed_cutdown == 0.0

    def test_utility_agent_gathers_producer_and_world_information(self, tiny_population, cold_day):
        method = RewardTablesMethod(max_reward=60.0)
        simulation = Simulation(seed=0)
        customer_agents = tiny_population.build_customer_agents(method)
        production = ProductionModel.two_tier(
            tiny_population.normal_use, tiny_population.initial_overuse * 2
        )
        producer = ProducerAgent(production)
        world = ExternalWorld(weather=cold_day)
        utility = UtilityAgent(
            context=tiny_population.utility_context(),
            method=method,
            customer_agent_names=[a.name for a in customer_agents],
            producer_agent=producer.name,
            external_world=world.name,
        )
        simulation.add_participant(utility)
        for agent in customer_agents:
            simulation.add_participant(agent)
        simulation.add_participant(producer)
        simulation.add_participant(world)
        simulation.run(stop_when=lambda: utility.finished)
        assert utility.finished
        assert len(utility.producer_reports) >= 1
        assert len(utility.world_observations) >= 1


class TestPopulation:
    def test_synthetic_population_has_peak(self, cold_day):
        population = CustomerPopulation.synthetic(
            PopulationConfig(num_households=15, seed=1), weather=cold_day
        )
        assert len(population) == 15
        assert population.initial_overuse > 0
        assert population.interval is not None
        context = population.utility_context()
        assert context.total_predicted_use == pytest.approx(population.total_predicted_use)

    def test_synthetic_population_reproducible(self, cold_day):
        a = CustomerPopulation.synthetic(PopulationConfig(num_households=8, seed=5), weather=cold_day)
        b = CustomerPopulation.synthetic(PopulationConfig(num_households=8, seed=5), weather=cold_day)
        assert a.normal_use == b.normal_use
        assert [s.predicted_use for s in a.specs] == [s.predicted_use for s in b.specs]

    def test_calibrated_population_validation(self):
        from repro.negotiation.reward_table import CutdownRewardRequirements

        base = CutdownRewardRequirements.paper_figure_8_customer()
        with pytest.raises(ValueError):
            CustomerPopulation.calibrated([1.0, 2.0], [base], normal_use=1.0)
        with pytest.raises(ValueError):
            CustomerPopulation.calibrated([1.0], [base], normal_use=0.0)
        with pytest.raises(ValueError):
            CustomerPopulation.calibrated([1.0], [base], normal_use=1.0, allowed_uses=[1.0, 2.0])

    def test_spec_lookup(self, tiny_population):
        assert tiny_population.spec("c000").predicted_use == 10.0
        with pytest.raises(KeyError):
            tiny_population.spec("ghost")

    def test_build_customer_agents_with_resource_consumers(self, cold_day):
        population = CustomerPopulation.synthetic(
            PopulationConfig(num_households=3, seed=2), weather=cold_day
        )
        method = RewardTablesMethod(max_reward=60.0)
        agents = population.build_customer_agents(method, with_resource_consumers=True)
        assert len(agents) == 3
        assert all(len(agent.resource_consumers) > 0 for agent in agents)

    def test_population_config_validation(self):
        with pytest.raises(ValueError):
            PopulationConfig(num_households=0)
        with pytest.raises(ValueError):
            PopulationConfig(behavioural_noise=-0.1)
