"""Campaign determinism and fleet/scalar planning equivalence.

Two contracts from the columnar planning pipeline:

* **Backend determinism** — at a fixed seed, a campaign produces identical
  ``CampaignResult.rows()`` whichever engine backend runs the negotiations
  (``"object"`` / ``"vectorized"`` / ``"auto"``): the backend choice changes
  wall-clock, never outcomes.
* **Planning equivalence** — the columnar fleet path and the scalar
  per-household path build bit-identical plans: same predicted uses, same
  requirement tables per household, hence identical campaigns.

A small population runs in tier-1; the 10k-household planning equivalence
runs in tier-2.
"""

from __future__ import annotations

import pytest

from repro.api import EngineConfig, campaign
from repro.core.planning import DayAheadPlanner
from repro.experiments.campaign_bench import (
    CONDITION_CYCLE,
    build_campaign_planner,
)
from repro.grid.weather import WeatherCondition, WeatherSample


def small_planner(planning: str = "columnar") -> DayAheadPlanner:
    return build_campaign_planner(30, seed=7, planning=planning)


def run_small_campaign(backend: str, planning: str = "columnar"):
    return campaign(
        small_planner(),
        6,
        conditions=CONDITION_CYCLE,
        backend=backend,
        config=EngineConfig(planning=planning),
        warmup_days=2,
        seed=7,
    )


class TestCampaignBackendDeterminism:
    def test_rows_identical_across_backends(self):
        reference = run_small_campaign("object")
        assert reference.days_negotiated >= 1
        for backend in ("vectorized", "auto"):
            other = run_small_campaign(backend)
            assert other.rows() == reference.rows(), (
                f"backend {backend!r} diverged from the object path"
            )

    def test_backends_are_recorded_per_day(self):
        result = run_small_campaign("auto")
        assert result.metadata["backend"] == "auto"
        assert result.metadata["planning"] == "columnar"
        assert len(result.backends) == result.num_days
        for day in result.days:
            if day.negotiated:
                assert day.backend in ("object", "vectorized", "sharded")
            else:
                assert day.backend is None
        # The backend never leaks into the rows: they must stay comparable
        # across backends.
        assert all("backend" not in row for row in result.rows())

    def test_phase_timers_are_populated(self):
        result = run_small_campaign("auto")
        assert result.planning_seconds > 0
        assert result.negotiation_seconds > 0


class TestPlanningEquivalence:
    def test_campaign_rows_identical_across_planning_modes(self):
        columnar = run_small_campaign("auto", planning="columnar")
        scalar = run_small_campaign("auto", planning="scalar")
        assert scalar.metadata["planning"] == "scalar"
        assert columnar.rows() == scalar.rows()

    def test_campaign_without_config_respects_planner_mode(self):
        result = campaign(
            small_planner("scalar"), 3,
            conditions=CONDITION_CYCLE, warmup_days=2, seed=7,
        )
        assert result.metadata["planning"] == "scalar"

    def test_planned_scenarios_bit_identical(self):
        planner = small_planner()
        mild = WeatherSample(temperature_c=10.0, condition=WeatherCondition.MILD)
        cold = WeatherSample(temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD)
        planner.observe_days([mild, mild])
        columnar = planner.plan(cold, planning="columnar")
        scalar = planner.plan(cold, planning="scalar")
        assert columnar is not None and scalar is not None
        assert columnar.population.normal_use == scalar.population.normal_use
        assert columnar.population.interval == scalar.population.interval
        assert len(columnar.population.specs) == len(scalar.population.specs)
        for fleet_spec, scalar_spec in zip(
            columnar.population.specs, scalar.population.specs
        ):
            assert fleet_spec.customer_id == scalar_spec.customer_id
            assert fleet_spec.predicted_use == scalar_spec.predicted_use
            assert (
                fleet_spec.requirements.requirements
                == scalar_spec.requirements.requirements
            )
            assert (
                fleet_spec.requirements.max_feasible_cutdown
                == scalar_spec.requirements.max_feasible_cutdown
            )

    def test_prediction_is_memoised_per_forecast(self):
        planner = small_planner()
        mild = WeatherSample(temperature_c=10.0, condition=WeatherCondition.MILD)
        cold = WeatherSample(temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD)
        planner.observe_day(mild)
        first = planner._predict(cold)
        # Same forecast, same history: the cached prediction object is reused
        # (predicted_peak_interval + plan cost one predictor run per day).
        assert planner._predict(cold) is first
        assert planner.predicted_peak_interval(cold) is not None
        assert planner._predict(cold) is first
        # New history invalidates the memo.
        planner.observe_day(mild)
        assert planner._predict(cold) is not first

    def test_synthetic_population_columnar_equals_scalar(self):
        from repro.core.scenario import synthetic_scenario

        columnar = synthetic_scenario(num_households=40, planning="columnar")
        scalar = synthetic_scenario(num_households=40, planning="scalar")
        assert columnar.population.normal_use == scalar.population.normal_use
        for fleet_spec, scalar_spec in zip(
            columnar.population.specs, scalar.population.specs
        ):
            assert fleet_spec.predicted_use == scalar_spec.predicted_use
            assert (
                fleet_spec.requirements.requirements
                == scalar_spec.requirements.requirements
            )


class TestColumnarAccountingGuards:
    def test_divergent_customer_ids_fall_back_to_scalar_accounting(self):
        """Populations whose customer ids differ from their household ids must
        not ride the fleet accounting path (outcomes are keyed by customer id,
        the fleet by household id)."""
        from repro.agents.population import CustomerPopulation, CustomerSpec
        from repro.core.scenario import synthetic_scenario
        from repro.core.system import LoadBalancingSystem

        base = synthetic_scenario(num_households=20)
        renamed = CustomerPopulation(
            specs=[
                CustomerSpec(
                    customer_id=f"c{i:03d}",
                    predicted_use=spec.predicted_use,
                    allowed_use=spec.allowed_use,
                    requirements=spec.requirements,
                    household=spec.household,
                )
                for i, spec in enumerate(base.population.specs)
            ],
            normal_use=base.population.normal_use,
            interval=base.population.interval,
            max_allowed_overuse=base.population.max_allowed_overuse,
            households=base.population.households,
            weather=base.population.weather,
        )
        base.population.fleet = None
        renamed_scenario = type(base)(
            name="renamed", population=renamed, method=base.method,
            weather=base.weather,
        )
        system = LoadBalancingSystem(renamed_scenario, seed=0)
        assert system._accounting_fleet() is None
        outcome = system.run(backend="vectorized")
        # The awarded cut-downs must actually be applied.
        assert outcome.negotiated
        assert outcome.peak_after_kw < outcome.peak_before_kw

    def test_matching_ids_produce_identical_accounting_either_path(self):
        from repro.core.scenario import synthetic_scenario
        from repro.core.system import LoadBalancingSystem

        scenario = synthetic_scenario(num_households=20)
        fleet_result = LoadBalancingSystem(scenario, seed=0).run(backend="vectorized")
        scalar_result = LoadBalancingSystem(scenario, seed=0)._run_scalar(
            backend="vectorized"
        )
        assert fleet_result.peak_after_kw == scalar_result.peak_after_kw
        assert fleet_result.production_cost_after == scalar_result.production_cost_after
        assert fleet_result.reward_paid == scalar_result.reward_paid


@pytest.mark.tier2
class TestPlanningEquivalenceAtScale:
    def test_10k_plan_bit_identical(self):
        planner = build_campaign_planner(10_000, seed=7)
        mild = WeatherSample(temperature_c=10.0, condition=WeatherCondition.MILD)
        cold = WeatherSample(temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD)
        planner.observe_days([mild, mild])
        columnar = planner.plan(cold, planning="columnar")
        scalar = planner.plan(cold, planning="scalar")
        assert columnar is not None and scalar is not None
        for fleet_spec, scalar_spec in zip(
            columnar.population.specs, scalar.population.specs
        ):
            assert fleet_spec.predicted_use == scalar_spec.predicted_use
            assert (
                fleet_spec.requirements.requirements
                == scalar_spec.requirements.requirements
            )
            assert (
                fleet_spec.requirements.max_feasible_cutdown
                == scalar_spec.requirements.max_feasible_cutdown
            )
