"""Campaign determinism and fleet/scalar planning equivalence.

Two contracts from the columnar planning pipeline:

* **Backend determinism** — at a fixed seed, a campaign produces identical
  ``CampaignResult.rows()`` whichever engine backend runs the negotiations
  (``"object"`` / ``"vectorized"`` / ``"auto"``): the backend choice changes
  wall-clock, never outcomes.
* **Planning equivalence** — the columnar fleet path and the scalar
  per-household path build bit-identical plans: same predicted uses, same
  requirement tables per household, hence identical campaigns.

A small population runs in tier-1; the 10k-household planning equivalence
runs in tier-2.
"""

from __future__ import annotations

import pytest

from repro.api import EngineConfig, campaign
from repro.core.planning import DayAheadPlanner
from repro.experiments.campaign_bench import (
    CONDITION_CYCLE,
    build_campaign_planner,
)
from repro.grid.weather import WeatherCondition, WeatherSample


def small_planner(planning: str = "columnar") -> DayAheadPlanner:
    return build_campaign_planner(30, seed=7, planning=planning)


def run_small_campaign(backend: str, planning: str = "columnar", **config_fields):
    return campaign(
        small_planner(),
        6,
        conditions=CONDITION_CYCLE,
        backend=backend,
        config=EngineConfig(planning=planning, **config_fields),
        warmup_days=2,
        seed=7,
    )


class TestCampaignBackendDeterminism:
    def test_rows_identical_across_backends(self):
        reference = run_small_campaign("object")
        assert reference.days_negotiated >= 1
        for backend in ("vectorized", "auto"):
            other = run_small_campaign(backend)
            assert other.rows() == reference.rows(), (
                f"backend {backend!r} diverged from the object path"
            )
        # The sharded runtime joins the matrix at campaign level: explicitly
        # requested (ignoring the threshold) …
        sharded = run_small_campaign("sharded", shards=2)
        assert sharded.rows() == reference.rows()
        assert all(
            day.backend == "sharded" for day in sharded.days if day.negotiated
        )
        # … and via auto-selection across the shard_threshold boundary.
        auto_sharded = run_small_campaign("auto", shards=2, shard_threshold=30)
        assert auto_sharded.rows() == reference.rows()
        assert all(
            day.backend == "sharded" for day in auto_sharded.days if day.negotiated
        )
        auto_below = run_small_campaign("auto", shards=2, shard_threshold=31)
        assert auto_below.rows() == reference.rows()
        assert all(
            day.backend == "vectorized" for day in auto_below.days if day.negotiated
        )

    def test_backends_are_recorded_per_day(self):
        result = run_small_campaign("auto")
        assert result.metadata["backend"] == "auto"
        assert result.metadata["planning"] == "columnar"
        assert len(result.backends) == result.num_days
        for day in result.days:
            if day.negotiated:
                assert day.backend in ("object", "vectorized", "sharded")
            else:
                assert day.backend is None
        # The backend never leaks into the rows: they must stay comparable
        # across backends.
        assert all("backend" not in row for row in result.rows())

    def test_phase_timers_are_populated(self):
        result = run_small_campaign("auto")
        assert result.planning_seconds > 0
        assert result.negotiation_seconds > 0


class TestPlanningEquivalence:
    def test_campaign_rows_identical_across_planning_modes(self):
        columnar = run_small_campaign("auto", planning="columnar")
        scalar = run_small_campaign("auto", planning="scalar")
        assert scalar.metadata["planning"] == "scalar"
        assert columnar.rows() == scalar.rows()

    def test_campaign_without_config_respects_planner_mode(self):
        result = campaign(
            small_planner("scalar"), 3,
            conditions=CONDITION_CYCLE, warmup_days=2, seed=7,
        )
        assert result.metadata["planning"] == "scalar"

    def test_planned_scenarios_bit_identical(self):
        planner = small_planner()
        mild = WeatherSample(temperature_c=10.0, condition=WeatherCondition.MILD)
        cold = WeatherSample(temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD)
        planner.observe_days([mild, mild])
        columnar = planner.plan(cold, planning="columnar")
        scalar = planner.plan(cold, planning="scalar")
        assert columnar is not None and scalar is not None
        assert columnar.population.normal_use == scalar.population.normal_use
        assert columnar.population.interval == scalar.population.interval
        assert len(columnar.population.specs) == len(scalar.population.specs)
        for fleet_spec, scalar_spec in zip(
            columnar.population.specs, scalar.population.specs
        ):
            assert fleet_spec.customer_id == scalar_spec.customer_id
            assert fleet_spec.predicted_use == scalar_spec.predicted_use
            assert (
                fleet_spec.requirements.requirements
                == scalar_spec.requirements.requirements
            )
            assert (
                fleet_spec.requirements.max_feasible_cutdown
                == scalar_spec.requirements.max_feasible_cutdown
            )

    def test_prediction_is_memoised_per_forecast(self):
        planner = small_planner()
        mild = WeatherSample(temperature_c=10.0, condition=WeatherCondition.MILD)
        cold = WeatherSample(temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD)
        planner.observe_day(mild)
        first = planner._predict(cold)
        # Same forecast, same history: the cached prediction object is reused
        # (predicted_peak_interval + plan cost one predictor run per day).
        assert planner._predict(cold) is first
        assert planner.predicted_peak_interval(cold) is not None
        assert planner._predict(cold) is first
        # New history invalidates the memo.
        planner.observe_day(mild)
        assert planner._predict(cold) is not first

    def test_synthetic_population_columnar_equals_scalar(self):
        from repro.core.scenario import synthetic_scenario

        columnar = synthetic_scenario(num_households=40, planning="columnar")
        scalar = synthetic_scenario(num_households=40, planning="scalar")
        assert columnar.population.normal_use == scalar.population.normal_use
        for fleet_spec, scalar_spec in zip(
            columnar.population.specs, scalar.population.specs
        ):
            assert fleet_spec.predicted_use == scalar_spec.predicted_use
            assert (
                fleet_spec.requirements.requirements
                == scalar_spec.requirements.requirements
            )


class TestLazyMaterialisationEquivalence:
    """Acceptance criterion: lazy-vs-eager rows bit-identical at 300 (tier-1)."""

    def test_lazy_rows_bit_identical_at_300(self):
        def run(materialise: str, **fields):
            return campaign(
                build_campaign_planner(300, seed=7),
                6,
                conditions=CONDITION_CYCLE,
                config=EngineConfig(materialise=materialise, **fields),
                warmup_days=2,
                seed=7,
            )

        eager = run("eager")
        assert eager.days_negotiated >= 1
        lazy = run("lazy")
        assert lazy.metadata["materialise"] == "lazy"
        assert lazy.rows() == eager.rows()
        # Bounded history and dropped bid retention are orthogonal to the
        # hand-off: with the *same* window both modes still agree bit for bit.
        eager_windowed = run("eager", history_window=4)
        lazy_windowed = run("lazy", history_window=4, retain_message_log=False)
        assert lazy_windowed.metadata["history_window"] == 4
        assert lazy_windowed.rows() == eager_windowed.rows()

    def test_lazy_campaign_days_never_materialise(self):
        planner = build_campaign_planner(30, seed=7)
        seen: list[bool] = []
        original = DayAheadPlanner.plan

        def spying_plan(self, *args, **kwargs):
            scenario = original(self, *args, **kwargs)
            if scenario is not None:
                seen.append(scenario.population)
            return scenario

        DayAheadPlanner.plan = spying_plan
        try:
            result = campaign(
                planner, 6,
                conditions=CONDITION_CYCLE,
                config=EngineConfig(materialise="lazy"),
                warmup_days=2, seed=7,
            )
        finally:
            DayAheadPlanner.plan = original
        assert result.days_negotiated >= 1
        assert seen, "no day was planned"
        assert all(population.materialised is False for population in seen), (
            "a lazy campaign day materialised its specs"
        )

    def test_shrinking_the_window_invalidates_the_prediction_memo(self):
        """Re-bounding the window must drop the planner's memoised prediction:
        the next plan has to see exactly the windowed history, not a stale
        full-history prediction cached under an unchanged observed-day count."""
        planner = small_planner()
        mild = WeatherSample(temperature_c=10.0, condition=WeatherCondition.MILD)
        cold = WeatherSample(temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD)
        planner.observe_days([mild] * 5)
        stale = planner._predict(cold)
        planner.set_history_window(2)
        fresh = planner._predict(cold)
        assert fresh is not stale
        oracle = small_planner()
        oracle.observe_days([mild] * 5)
        oracle.predictor.set_history_window(2)
        assert fresh.matrix.tolist() == oracle.predictor.predict_columnar(cold).matrix.tolist()

    def test_window_with_custom_predictor_fails_clearly(self):
        class MinimalPredictor:
            history_length = 0

            def observe_many(self, demands):
                pass

        planner = build_campaign_planner(30, seed=7)
        planner.predictor = MinimalPredictor()
        with pytest.raises(ValueError, match="MinimalPredictor"):
            campaign(
                planner, 2,
                config=EngineConfig(history_window=3),
                warmup_days=1, seed=7,
            )

    def test_campaign_metadata_records_the_knobs(self):
        result = run_small_campaign("auto", materialise="lazy", history_window=5)
        assert result.metadata["materialise"] == "lazy"
        assert result.metadata["history_window"] == 5
        default = run_small_campaign("auto")
        assert default.metadata["materialise"] == "eager"
        assert default.metadata["history_window"] is None


class TestColumnarAccountingGuards:
    def test_divergent_customer_ids_fall_back_to_scalar_accounting(self):
        """Populations whose customer ids differ from their household ids must
        not ride the fleet accounting path (outcomes are keyed by customer id,
        the fleet by household id)."""
        from repro.agents.population import CustomerPopulation, CustomerSpec
        from repro.core.scenario import synthetic_scenario
        from repro.core.system import LoadBalancingSystem

        base = synthetic_scenario(num_households=20)
        renamed = CustomerPopulation(
            specs=[
                CustomerSpec(
                    customer_id=f"c{i:03d}",
                    predicted_use=spec.predicted_use,
                    allowed_use=spec.allowed_use,
                    requirements=spec.requirements,
                    household=spec.household,
                )
                for i, spec in enumerate(base.population.specs)
            ],
            normal_use=base.population.normal_use,
            interval=base.population.interval,
            max_allowed_overuse=base.population.max_allowed_overuse,
            households=base.population.households,
            weather=base.population.weather,
        )
        base.population.fleet = None
        renamed_scenario = type(base)(
            name="renamed", population=renamed, method=base.method,
            weather=base.weather,
        )
        system = LoadBalancingSystem(renamed_scenario, seed=0)
        assert system._accounting_fleet() is None
        outcome = system.run(backend="vectorized")
        # The awarded cut-downs must actually be applied.
        assert outcome.negotiated
        assert outcome.peak_after_kw < outcome.peak_before_kw

    def test_matching_ids_produce_identical_accounting_either_path(self):
        from repro.core.scenario import synthetic_scenario
        from repro.core.system import LoadBalancingSystem

        scenario = synthetic_scenario(num_households=20)
        fleet_result = LoadBalancingSystem(scenario, seed=0).run(backend="vectorized")
        scalar_result = LoadBalancingSystem(scenario, seed=0)._run_scalar(
            backend="vectorized"
        )
        assert fleet_result.peak_after_kw == scalar_result.peak_after_kw
        assert fleet_result.production_cost_after == scalar_result.production_cost_after
        assert fleet_result.reward_paid == scalar_result.reward_paid


@pytest.mark.tier2
class TestCampaignBackendMatrixAtScale:
    """Three-way backend matrix at campaign level (tier-2 extension).

    The single-negotiation three-way matrix lives in ``test_api.py`` /
    ``test_sharded_session.py``; this runs the whole observe → predict →
    negotiate → account loop per backend — including the sharded runtime
    auto-selected across the ``shard_threshold`` boundary — and requires
    identical campaign rows.
    """

    def run_matrix_campaign(self, backend: str, **config_fields):
        return campaign(
            build_campaign_planner(800, seed=7),
            5,
            conditions=CONDITION_CYCLE,
            backend=backend,
            config=EngineConfig(**config_fields),
            warmup_days=2,
            seed=7,
        )

    def test_campaign_rows_identical_across_all_backends(self):
        reference = self.run_matrix_campaign("object")
        assert reference.days_negotiated >= 1
        explicit_sharded = self.run_matrix_campaign("sharded", shards=4)
        assert explicit_sharded.rows() == reference.rows()
        auto_sharded = self.run_matrix_campaign(
            "auto", shards=4, shard_threshold=800
        )
        assert auto_sharded.rows() == reference.rows()
        assert all(
            day.backend == "sharded" for day in auto_sharded.days if day.negotiated
        )
        for backend, fields in (
            ("vectorized", {}),
            ("auto", {"shards": 4, "shard_threshold": 801}),
        ):
            result = self.run_matrix_campaign(backend, **fields)
            assert result.rows() == reference.rows(), (
                f"campaign backend {backend!r} diverged from the object path"
            )
            assert all(
                day.backend == "vectorized"
                for day in result.days
                if day.negotiated
            )
        # The lazy hand-off slots into the same matrix unchanged.
        lazy = self.run_matrix_campaign(
            "auto", materialise="lazy", shards=4, shard_threshold=800
        )
        assert lazy.rows() == reference.rows()


@pytest.mark.tier2
class TestPlanningEquivalenceAtScale:
    def test_10k_lazy_campaign_rows_bit_identical(self):
        """Acceptance criterion: lazy-vs-eager rows bit-identical at 10k (tier-2)."""

        def run(materialise: str):
            return campaign(
                build_campaign_planner(10_000, seed=7),
                6,
                conditions=CONDITION_CYCLE,
                config=EngineConfig(materialise=materialise),
                warmup_days=2,
                seed=7,
            )

        eager = run("eager")
        lazy = run("lazy")
        assert eager.days_negotiated >= 1
        assert lazy.rows() == eager.rows()
        assert lazy.backends == eager.backends

    def test_10k_plan_bit_identical(self):
        planner = build_campaign_planner(10_000, seed=7)
        mild = WeatherSample(temperature_c=10.0, condition=WeatherCondition.MILD)
        cold = WeatherSample(temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD)
        planner.observe_days([mild, mild])
        columnar = planner.plan(cold, planning="columnar")
        scalar = planner.plan(cold, planning="scalar")
        assert columnar is not None and scalar is not None
        for fleet_spec, scalar_spec in zip(
            columnar.population.specs, scalar.population.specs
        ):
            assert fleet_spec.predicted_use == scalar_spec.predicted_use
            assert (
                fleet_spec.requirements.requirements
                == scalar_spec.requirements.requirements
            )
            assert (
                fleet_spec.requirements.max_feasible_cutdown
                == scalar_spec.requirements.max_feasible_cutdown
            )
