"""Tests for the DESIRE knowledge-level formulation of the agents' decisions.

The key property: the knowledge-based components derive exactly the same
decisions as the procedural implementations used by the sessions, so the
DESIRE specification and the executable system agree.
"""

from __future__ import annotations

import pytest

from repro.agents.knowledge import (
    CustomerBidComponent,
    UtilityEvaluationComponent,
    customer_bid_knowledge,
    negotiation_ontology,
    utility_evaluation_knowledge,
)
from repro.core.scenario import PAPER_INITIAL_REWARD_TABLE, paper_requirement_table
from repro.desire.information_types import Atom, InformationState
from repro.negotiation.formulas import update_reward_table
from repro.negotiation.reward_table import CutdownRewardRequirements, RewardTable
from repro.negotiation.strategy import HighestAcceptableCutdownBidding


class TestOntology:
    def test_declares_all_negotiation_relations(self):
        ontology = negotiation_ontology()
        for relation in (
            "offered_reward", "required_reward", "feasible", "acceptable_cutdown",
            "preferred_cutdown", "predicted_overuse", "max_allowed_overuse",
            "overuse_acceptable", "continue_negotiation",
        ):
            assert ontology.find_relation(relation) is not None

    def test_atoms_validate(self):
        ontology = negotiation_ontology()
        assert ontology.accepts(Atom("offered_reward", (0.4, 17.0)))
        assert not ontology.accepts(Atom("offered_reward", ("not a number", 17.0)))


class TestCustomerBidKnowledge:
    def test_figure_6_round_1_derivation(self):
        """The knowledge base derives the Figure 8 customer's round-1 choice."""
        component = CustomerBidComponent()
        table = RewardTable(PAPER_INITIAL_REWARD_TABLE)
        requirements = CutdownRewardRequirements.paper_figure_8_customer()
        component.load(table, requirements)
        component.activate()
        assert component.preferred_cutdown() == pytest.approx(0.2)
        assert 0.3 not in component.acceptable_cutdowns()

    def test_matches_procedural_policy_across_rounds(self):
        """Knowledge-level and procedural bids agree on every escalated table."""
        policy = HighestAcceptableCutdownBidding()
        requirements = CutdownRewardRequirements.paper_figure_8_customer()
        component = CustomerBidComponent()
        table = RewardTable(PAPER_INITIAL_REWARD_TABLE)
        for overuse in (0.35, 0.30, 0.25, 0.15, 0.05):
            component.load(table, requirements)
            component.activate()
            assert component.preferred_cutdown() == pytest.approx(
                policy.choose_cutdown(table, requirements)
            )
            table = update_reward_table(table, beta=2.0, overuse=overuse, max_reward=30.0)

    def test_matches_procedural_policy_for_scaled_customers(self):
        policy = HighestAcceptableCutdownBidding()
        table = RewardTable(PAPER_INITIAL_REWARD_TABLE)
        for scale in (0.8, 1.0, 1.5, 3.5):
            requirements = paper_requirement_table(scale)
            component = CustomerBidComponent()
            component.load(table, requirements)
            component.activate()
            assert component.preferred_cutdown() == pytest.approx(
                policy.choose_cutdown(table, requirements)
            )

    def test_infeasible_cutdowns_never_acceptable(self):
        component = CustomerBidComponent()
        generous = RewardTable({0.8: 1000.0, 0.9: 1000.0, 1.0: 1000.0})
        requirements = CutdownRewardRequirements.paper_figure_8_customer()  # feasible <= 0.8
        component.load(generous, requirements)
        component.activate()
        assert all(c <= 0.8 + 1e-9 for c in component.acceptable_cutdowns())

    def test_reload_clears_previous_state(self):
        component = CustomerBidComponent()
        requirements = CutdownRewardRequirements.paper_figure_8_customer()
        component.load(RewardTable({0.4: 100.0}), requirements)
        component.activate()
        assert component.preferred_cutdown() == pytest.approx(0.4)
        component.load(RewardTable({0.4: 1.0}), requirements)
        component.activate()
        assert component.preferred_cutdown() == 0.0

    def test_raw_knowledge_base_is_reusable(self):
        kb = customer_bid_knowledge()
        state = InformationState()
        state.assert_atom(Atom("offered_reward", (0.3, 12.0)))
        state.assert_atom(Atom("required_reward", (0.3, 10.0)))
        state.assert_atom(Atom("feasible", (0.3,)))
        kb.forward_chain(state)
        assert state.holds(Atom("acceptable_cutdown", (0.3,)))


class TestUtilityEvaluationKnowledge:
    def test_acceptable_and_continue_are_mutually_exclusive(self):
        component = UtilityEvaluationComponent()
        component.load(predicted_overuse=12.7, max_allowed_overuse=15.0)
        component.activate()
        assert component.overuse_acceptable()
        assert not component.should_continue()

        component.load(predicted_overuse=25.6, max_allowed_overuse=15.0)
        component.activate()
        assert not component.overuse_acceptable()
        assert component.should_continue()

    def test_boundary_is_acceptable(self):
        component = UtilityEvaluationComponent()
        component.load(predicted_overuse=15.0, max_allowed_overuse=15.0)
        component.activate()
        assert component.overuse_acceptable()

    def test_matches_paper_round_decisions(self, paper_result):
        """The knowledge component reproduces the UA's per-round continue/stop choices."""
        component = UtilityEvaluationComponent()
        trajectory = paper_result.overuse_trajectory()[1:]  # after each round
        for index, overuse in enumerate(trajectory):
            component.load(predicted_overuse=overuse, max_allowed_overuse=15.0)
            component.activate()
            is_last_round = index == len(trajectory) - 1
            assert component.overuse_acceptable() == is_last_round
            assert component.should_continue() == (not is_last_round)

    def test_raw_knowledge_base(self):
        kb = utility_evaluation_knowledge()
        state = InformationState()
        state.assert_atom(Atom("predicted_overuse", (35.0,)))
        state.assert_atom(Atom("max_allowed_overuse", (15.0,)))
        kb.forward_chain(state)
        assert state.holds(Atom("continue_negotiation", ()))
        assert not state.holds(Atom("overuse_acceptable", ()))
