"""Admission control, deadlines and the batch watchdog, unit level.

Everything here runs without a live server: the token bucket and the
admission controller take injectable monotonic clocks, the watchdog exposes
a synchronous ``sweep``, and the deadline semantics of
:func:`~repro.serve.coalesce.execute_batch` are driven directly.  The
end-to-end behaviour of the same machinery over HTTP lives in
``tests/test_serve_http.py``.
"""

from __future__ import annotations

import json

import pytest

import repro.api as api
from repro.serve.admission import (
    DEFAULT_RETRY_AFTER,
    REASON_QUEUE_FULL,
    REASON_RATE_LIMITED,
    AdmissionController,
    TokenBucket,
)
from repro.serve.batcher import _BatchWatchdog
from repro.serve.coalesce import execute_batch, run_solo
from repro.serve.metrics import ServeMetrics
from repro.serve.repository import SessionRepository
from repro.serve.schemas import ServeRequest, result_payload


class _FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_capacity_then_refusal_with_exact_hint(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_take()[0] for _ in range(3)] == [True, True, True]
        ok, retry_after = bucket.try_take()
        assert not ok
        # Empty bucket at 2 tokens/second: one token accrues in 0.5s.
        assert retry_after == pytest.approx(0.5)

    def test_tokens_accrue_lazily_from_elapsed_time(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1, clock=clock)
        assert bucket.try_take()[0]
        assert not bucket.try_take()[0]
        clock.advance(1.0)
        assert bucket.try_take()[0]

    def test_refill_never_exceeds_burst(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(60.0)
        takes = [bucket.try_take()[0] for _ in range(3)]
        assert takes == [True, True, False]

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestAdmissionController:
    def test_queue_fills_and_releases(self):
        controller = AdmissionController(max_queue=2)
        assert controller.try_admit().admitted
        assert controller.try_admit().admitted
        decision = controller.try_admit()
        assert not decision.admitted
        assert decision.reason == REASON_QUEUE_FULL
        assert decision.retry_after == DEFAULT_RETRY_AFTER
        controller.release()
        assert controller.try_admit().admitted
        assert controller.in_flight == 2

    def test_queue_full_hint_tracks_observed_completion_latency(self):
        controller = AdmissionController(max_queue=1)
        assert controller.try_admit().admitted
        controller.release(busy_seconds=4.0)
        assert controller.try_admit().admitted
        decision = controller.try_admit()
        assert not decision.admitted
        assert decision.retry_after == pytest.approx(4.0)

    def test_rate_limit_gate_sheds_with_reason(self):
        clock = _FakeClock()
        controller = AdmissionController(rate_limit=1.0, burst=1, clock=clock)
        assert controller.try_admit().admitted
        decision = controller.try_admit()
        assert not decision.admitted
        assert decision.reason == REASON_RATE_LIMITED
        assert decision.retry_after > 0
        clock.advance(1.0)
        assert controller.try_admit().admitted

    def test_force_admit_bypasses_gates_but_occupies_a_slot(self):
        controller = AdmissionController(max_queue=1)
        controller.force_admit()
        decision = controller.try_admit()
        assert not decision.admitted
        assert decision.reason == REASON_QUEUE_FULL
        controller.release()
        assert controller.try_admit().admitted

    def test_unbounded_controller_admits_everything(self):
        controller = AdmissionController()
        assert all(controller.try_admit().admitted for _ in range(100))

    def test_invalid_max_queue_is_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue=0)


class TestMetricsAccounting:
    def test_queue_depth_underflow_is_counted_not_hidden(self):
        metrics = ServeMetrics()
        metrics.admitted()
        metrics.dequeued(2)  # one more than was ever enqueued
        snapshot = metrics.snapshot()
        assert snapshot["queue_depth"] == 0
        assert snapshot["queue_depth_underflows"] == 1
        # Balanced accounting never touches the counter.
        metrics.admitted()
        metrics.dequeued()
        assert metrics.snapshot()["queue_depth_underflows"] == 1

    def test_shed_reasons_and_admission_split(self):
        metrics = ServeMetrics()
        metrics.admitted()
        metrics.shed(REASON_QUEUE_FULL)
        metrics.shed(REASON_QUEUE_FULL)
        metrics.shed(REASON_RATE_LIMITED)
        snapshot = metrics.snapshot()
        assert snapshot["requests_submitted"] == 4
        assert snapshot["requests_admitted"] == 1
        assert snapshot["requests_shed"] == 3
        assert snapshot["shed_reasons"] == {
            REASON_QUEUE_FULL: 2,
            REASON_RATE_LIMITED: 1,
        }

    def test_queue_wait_quantiles(self):
        metrics = ServeMetrics()
        for wait in (0.1, 0.2, 0.3, 0.4, 1.0):
            metrics.queue_wait(wait)
        waits = metrics.snapshot()["queue_wait_seconds"]
        assert waits["count"] == 5
        assert waits["p50"] == pytest.approx(0.3)
        assert waits["p99"] == pytest.approx(1.0)

    def test_expired_requests_count_as_deadline_exceeded_and_failed(self):
        metrics = ServeMetrics()
        metrics.request_finished(0.5, expired=True)
        snapshot = metrics.snapshot()
        assert snapshot["deadline_exceeded_total"] == 1
        assert snapshot["requests_failed"] == 1
        assert snapshot["requests_completed"] == 0


class TestBatchWatchdog:
    def _request_and_record(self, repository, seed=1):
        request = ServeRequest.from_mapping(
            {"scenario": {"households": 10, "seed": seed}}
        )
        return request, repository.create(request.describe())

    def test_sweep_fails_overdue_unfinished_sessions(self):
        repository = SessionRepository()
        metrics = ServeMetrics()
        watchdog = _BatchWatchdog(repository, metrics, timeout=10.0)
        request, record = self._request_and_record(repository)
        watchdog.register([(request, record)])
        assert watchdog.sweep() == 0  # not overdue yet
        import time as _time

        assert watchdog.sweep(now=_time.time() + 11.0) == 1
        failed = repository.get(record.session_id)
        assert failed.state == "failed"
        assert "watchdog" in failed.error
        snapshot = metrics.snapshot()
        assert snapshot["watchdog_failures"] == 1
        assert snapshot["requests_failed"] == 1

    def test_cleared_tokens_are_never_swept(self):
        repository = SessionRepository()
        metrics = ServeMetrics()
        watchdog = _BatchWatchdog(repository, metrics, timeout=10.0)
        request, record = self._request_and_record(repository)
        token = watchdog.register([(request, record)])
        watchdog.clear(token)
        import time as _time

        assert watchdog.sweep(now=_time.time() + 100.0) == 0
        assert repository.get(record.session_id).state == "queued"

    def test_late_worker_completion_after_watchdog_failure_is_a_noop(self):
        repository = SessionRepository()
        metrics = ServeMetrics()
        watchdog = _BatchWatchdog(repository, metrics, timeout=10.0)
        request, record = self._request_and_record(repository)
        watchdog.register([(request, record)])
        import time as _time

        assert watchdog.sweep(now=_time.time() + 11.0) == 1
        # The wedged worker eventually reports; first transition wins.
        assert repository.finish(record.session_id, {"rounds": 3}) is None
        persisted = repository.get(record.session_id)
        assert persisted.state == "failed"
        assert persisted.payload is None


class TestDeadlinesInExecution:
    def _request(self, seed=1, households=12):
        return ServeRequest.from_mapping(
            {"scenario": {"households": households, "seed": seed}}
        )

    def _solo(self, request):
        result = api.run(
            request.scenario.build_scenario(),
            backend=request.backend,
            config=request.config,
        )
        return json.dumps(result_payload(result), sort_keys=True)

    def test_expired_member_fails_fast_without_stalling_batchmates(self):
        expired = self._request(seed=1)
        healthy = self._request(seed=2)
        outcomes, _report = execute_batch(
            [expired, healthy], deadlines=[0.0, None]
        )
        assert outcomes[0].expired
        assert "deadline_exceeded" in outcomes[0].error
        assert outcomes[0].payload is None
        assert outcomes[1].error is None
        # The surviving batch-mate's result is untouched by the expiry.
        assert (
            json.dumps(outcomes[1].payload, sort_keys=True)
            == self._solo(healthy)
        )

    def test_unbudgeted_batch_is_unchanged_by_the_deadline_machinery(self):
        request = self._request(seed=3)
        outcomes, _report = execute_batch([request], deadlines=[None])
        assert not outcomes[0].expired
        assert (
            json.dumps(outcomes[0].payload, sort_keys=True)
            == self._solo(request)
        )

    def test_run_solo_fails_fast_on_an_expired_deadline(self):
        outcome = run_solo(self._request(seed=4), deadline=0.0)
        assert outcome.expired
        assert "deadline_exceeded" in outcome.error
