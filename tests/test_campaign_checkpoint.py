"""Campaign checkpoint/resume: kill-and-resume equivalence and partial results.

The contract under test: a campaign checkpointed after day *k* and resumed in
a *fresh* process (simulated here with a freshly built campaign) produces
``CampaignResult.rows()`` bit-identical to the uninterrupted run — the
checkpoint captures everything the day loop threads between days (predictor
ring buffer, accumulated rows, weather and demand RNG positions), and
nothing else matters because the rest is reconstructed deterministically
from the campaign parameters.

Also covered: a day that raises degrades the campaign to a *partial* result
(``metadata["failed_day"]``) instead of discarding every completed day, and
a checkpoint refuses to resume a differently-parameterised campaign.
"""

from __future__ import annotations

import pickle

import pytest

from repro.api import CampaignCheckpoint, EngineConfig, FaultPlan, campaign
from repro.core.checkpoint import CHECKPOINT_VERSION
from repro.core.planning import MultiDayCampaign
from repro.experiments.campaign_bench import CONDITION_CYCLE, build_campaign_planner

NUM_DAYS = 6
KILL_AFTER = 3


def fresh_planner(num_households: int = 30, seed: int = 7):
    return build_campaign_planner(num_households, seed=seed)


def run_campaign(num_days: int = NUM_DAYS, *, planner=None, **kwargs):
    return campaign(
        planner if planner is not None else fresh_planner(),
        num_days,
        conditions=CONDITION_CYCLE,
        warmup_days=2,
        seed=7,
        **kwargs,
    )


class TestKillAndResume:
    def test_resumed_rows_are_bit_identical(self, tmp_path):
        ckpt = tmp_path / "campaign.ckpt"
        uninterrupted = run_campaign()
        # "Kill" after day KILL_AFTER: run a shorter campaign, checkpointing.
        killed = run_campaign(KILL_AFTER, checkpoint_path=ckpt)
        assert killed.num_days == KILL_AFTER
        assert ckpt.exists()
        # Resume in a freshly built campaign — nothing carried over in memory.
        resumed = run_campaign(resume_from=ckpt)
        assert resumed.metadata["resumed_from_day"] == KILL_AFTER
        assert resumed.rows() == uninterrupted.rows()
        assert resumed.backends == uninterrupted.backends

    def test_resume_with_faults_is_bit_identical_too(self, tmp_path):
        ckpt = tmp_path / "campaign.ckpt"
        config = EngineConfig(
            fault_plan=FaultPlan(seed=5, message_drop_rate=0.1, crash_rate=0.05)
        )
        uninterrupted = run_campaign(config=config)
        run_campaign(KILL_AFTER, checkpoint_path=ckpt, config=config)
        resumed = run_campaign(resume_from=ckpt, config=config)
        assert resumed.rows() == uninterrupted.rows()

    def test_checkpoint_write_is_atomic(self, tmp_path):
        ckpt = tmp_path / "campaign.ckpt"
        run_campaign(2, checkpoint_path=ckpt)
        # No temp residue; the snapshot itself loads cleanly.
        assert list(tmp_path.iterdir()) == [ckpt]
        snapshot = CampaignCheckpoint.load(ckpt)
        assert snapshot.version == CHECKPOINT_VERSION
        assert snapshot.next_day == 2
        assert len(snapshot.days) == 2

    def test_fully_complete_checkpoint_resumes_to_a_noop(self, tmp_path):
        ckpt = tmp_path / "campaign.ckpt"
        full = run_campaign(checkpoint_path=ckpt)
        resumed = run_campaign(resume_from=ckpt)
        assert resumed.rows() == full.rows()


class TestCheckpointValidation:
    def test_foreign_campaign_is_rejected(self, tmp_path):
        ckpt = tmp_path / "campaign.ckpt"
        run_campaign(2, checkpoint_path=ckpt)
        with pytest.raises(ValueError, match="does not match this campaign"):
            campaign(
                fresh_planner(),
                NUM_DAYS,
                conditions=CONDITION_CYCLE,
                warmup_days=3,  # differs from the checkpointed warmup_days=2
                seed=7,
                resume_from=ckpt,
            )

    def test_non_checkpoint_pickle_is_rejected(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(ValueError, match="does not contain a campaign checkpoint"):
            CampaignCheckpoint.load(path)

    def test_stale_version_is_rejected(self, tmp_path):
        ckpt = tmp_path / "campaign.ckpt"
        run_campaign(2, checkpoint_path=ckpt)
        snapshot = CampaignCheckpoint.load(ckpt)
        snapshot.version = CHECKPOINT_VERSION + 1
        snapshot.save(ckpt)
        with pytest.raises(ValueError, match="version"):
            CampaignCheckpoint.load(ckpt)


class TestPartialCampaignResult:
    def test_failed_day_yields_partial_result(self, monkeypatch, tmp_path):
        ckpt = tmp_path / "campaign.ckpt"
        planner = fresh_planner()
        original_plan = planner.plan
        calls = {"n": 0}

        def failing_plan(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == KILL_AFTER + 1:
                raise RuntimeError("planner exploded")
            return original_plan(*args, **kwargs)

        monkeypatch.setattr(planner, "plan", failing_plan)
        partial = run_campaign(planner=planner, checkpoint_path=ckpt)
        assert partial.metadata["failed_day"] == KILL_AFTER
        assert partial.metadata["failure"] == "RuntimeError: planner exploded"
        assert partial.num_days == KILL_AFTER  # completed days survive
        # The checkpoint from the last good day resumes to the full campaign.
        resumed = run_campaign(resume_from=ckpt)
        reference = run_campaign()
        assert resumed.rows() == reference.rows()

    def test_num_days_still_validated(self):
        runner = MultiDayCampaign(fresh_planner(), warmup_days=2, seed=7)
        with pytest.raises(ValueError, match="num_days"):
            runner.run(0)
