"""Tests for repro.runtime.clock."""

from __future__ import annotations

import pytest

from repro.runtime.clock import MINUTES_PER_DAY, SimulationClock, TimeInterval, TimeSlot


class TestTimeSlot:
    def test_hourly_slot_basics(self):
        slot = TimeSlot(18, 24)
        assert slot.minutes == 60
        assert slot.hours == 1.0
        assert slot.start_hour == 18.0
        assert slot.end_hour == 19.0

    def test_quarter_hour_resolution(self):
        slot = TimeSlot(0, 96)
        assert slot.minutes == 15
        assert slot.hours == 0.25

    def test_label_format(self):
        assert TimeSlot(17, 24).label() == "17:00-18:00"
        assert TimeSlot(0, 24).label() == "00:00-01:00"

    def test_last_slot_label_wraps_to_midnight(self):
        assert TimeSlot(23, 24).label() == "23:00-00:00"

    def test_next_and_previous_wrap_around(self):
        assert TimeSlot(23, 24).next() == TimeSlot(0, 24)
        assert TimeSlot(0, 24).previous() == TimeSlot(23, 24)

    def test_from_hour(self):
        assert TimeSlot.from_hour(17.5) == TimeSlot(17, 24)
        assert TimeSlot.from_hour(0.0) == TimeSlot(0, 24)

    def test_from_hour_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            TimeSlot.from_hour(24.0)
        with pytest.raises(ValueError):
            TimeSlot.from_hour(-1.0)

    def test_invalid_index_rejected(self):
        with pytest.raises(ValueError):
            TimeSlot(24, 24)
        with pytest.raises(ValueError):
            TimeSlot(-1, 24)

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ValueError):
            TimeSlot(0, 0)
        with pytest.raises(ValueError):
            TimeSlot(0, 7)  # 7 does not divide 1440 minutes

    def test_ordering(self):
        assert TimeSlot(3, 24) < TimeSlot(4, 24)


class TestTimeInterval:
    def test_slots_iteration_and_count(self):
        interval = TimeInterval(TimeSlot(17, 24), TimeSlot(19, 24))
        slots = list(interval.slots())
        assert len(slots) == interval.num_slots == 3
        assert slots[0].index == 17 and slots[-1].index == 19

    def test_duration_hours(self):
        interval = TimeInterval.from_hours(17, 20)
        assert interval.duration_hours == pytest.approx(3.0)

    def test_contains(self):
        interval = TimeInterval.from_hours(17, 20)
        assert interval.contains(TimeSlot(18, 24))
        assert not interval.contains(TimeSlot(20, 24))
        assert not interval.contains(TimeSlot(18, 48))  # resolution mismatch

    def test_label(self):
        assert TimeInterval.from_hours(17, 20).label() == "17:00-20:00"

    def test_mixed_resolutions_rejected(self):
        with pytest.raises(ValueError):
            TimeInterval(TimeSlot(0, 24), TimeSlot(10, 48))

    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            TimeInterval(TimeSlot(19, 24), TimeSlot(17, 24))

    def test_from_hours_rejects_empty(self):
        with pytest.raises(ValueError):
            TimeInterval.from_hours(20, 17)

    def test_from_hours_fine_resolution(self):
        interval = TimeInterval.from_hours(17, 20, slots_per_day=96)
        assert interval.num_slots == 12
        assert interval.duration_hours == pytest.approx(3.0)


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now == 0.0

    def test_advance_to_and_by(self):
        clock = SimulationClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0
        clock.advance_by(2.5)
        assert clock.now == 7.5

    def test_cannot_move_backwards(self):
        clock = SimulationClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)
        with pytest.raises(ValueError):
            clock.advance_by(-1.0)

    def test_reset(self):
        clock = SimulationClock(10.0)
        clock.reset()
        assert clock.now == 0.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock(-1.0)


def test_minutes_per_day_constant():
    assert MINUTES_PER_DAY == 1440
