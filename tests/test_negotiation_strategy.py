"""Tests for negotiation strategies: beta controllers, acceptance, bidding."""

from __future__ import annotations

import pytest

from repro.negotiation.reward_table import CutdownRewardRequirements, RewardTable
from repro.negotiation.strategy import (
    AcceptAllBids,
    AdaptiveBeta,
    ConstantBeta,
    ExpectedGainBidding,
    GenerateAndSelectAnnouncements,
    HighestAcceptableCutdownBidding,
    SelectiveBidAcceptance,
    StatisticalAnnouncementOptimisation,
)


class TestBetaControllers:
    def test_constant_beta_never_changes(self):
        controller = ConstantBeta(2.0)
        assert controller.next_beta(0, 0.35, None) == 2.0
        assert controller.next_beta(5, 0.05, 0.06) == 2.0

    def test_constant_beta_validation(self):
        with pytest.raises(ValueError):
            ConstantBeta(-1.0)

    def test_adaptive_beta_raises_when_progress_is_slow(self):
        controller = AdaptiveBeta(initial_beta=1.0, target_improvement=0.3)
        # Only 5% improvement between rounds: speed up.
        beta = controller.next_beta(1, overuse=0.38, previous_overuse=0.40)
        assert beta > 1.0

    def test_adaptive_beta_lowers_when_progress_is_fast(self):
        controller = AdaptiveBeta(initial_beta=4.0, target_improvement=0.3)
        # 75% improvement: slow down to save reward budget.
        beta = controller.next_beta(1, overuse=0.10, previous_overuse=0.40)
        assert beta < 4.0

    def test_adaptive_beta_respects_bounds(self):
        controller = AdaptiveBeta(initial_beta=2.0, min_beta=1.0, max_beta=3.0)
        for __ in range(10):
            controller.next_beta(1, 0.40, 0.40)  # no progress at all
        assert controller.beta <= 3.0
        for __ in range(10):
            controller.next_beta(1, 0.01, 0.40)
        assert controller.beta >= 1.0

    def test_adaptive_beta_first_round_keeps_initial(self):
        controller = AdaptiveBeta(initial_beta=2.0)
        assert controller.next_beta(0, 0.35, None) == 2.0

    def test_adaptive_beta_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBeta(initial_beta=0.1, min_beta=0.5)
        with pytest.raises(ValueError):
            AdaptiveBeta(target_improvement=1.5)
        with pytest.raises(ValueError):
            AdaptiveBeta(adjustment=0.9)


class TestAnnouncementPolicies:
    def test_generate_and_select_scales_with_overuse(self):
        policy = GenerateAndSelectAnnouncements()
        mild = policy.initial_table(relative_overuse=0.05, max_reward=30.0)
        severe = policy.initial_table(relative_overuse=0.6, max_reward=30.0)
        assert severe.max_reward_offered() > mild.max_reward_offered()
        assert severe.max_reward_offered() <= 30.0
        assert severe.is_monotone_in_cutdown()

    def test_generate_and_select_validation(self):
        with pytest.raises(ValueError):
            GenerateAndSelectAnnouncements(generosity_levels=())
        with pytest.raises(ValueError):
            GenerateAndSelectAnnouncements(generosity_levels=(1.5,))
        with pytest.raises(ValueError):
            GenerateAndSelectAnnouncements().initial_table(0.3, 0.0)

    def test_statistical_optimisation_covers_needed_cutdown(self):
        policy = StatisticalAnnouncementOptimisation()
        table = policy.initial_table(relative_overuse=0.35, max_reward=50.0)
        assert table.is_monotone_in_cutdown()
        assert table.max_reward_offered() <= 50.0
        # The needed per-customer cut-down for a 35% overuse is about 0.26;
        # the covered range should be rewarded above the assumed requirement.
        assert table.reward_for(0.2) > 0

    def test_statistical_optimisation_validation(self):
        with pytest.raises(ValueError):
            StatisticalAnnouncementOptimisation(assumed_requirement_scale=0.0)
        with pytest.raises(ValueError):
            StatisticalAnnouncementOptimisation(acceptance_margin=0.5)


class TestBidAcceptance:
    def test_accept_all_accepts_positive_cutdowns_only(self):
        policy = AcceptAllBids()
        decisions = policy.select(
            bids={"a": 0.2, "b": 0.0}, predicted_uses={"a": 10, "b": 10},
            normal_use=15, total_predicted=20,
        )
        assert decisions == {"a": True, "b": False}

    def test_selective_acceptance_stops_when_enough(self):
        policy = SelectiveBidAcceptance(safety_margin=0.0)
        decisions = policy.select(
            bids={"big": 0.5, "small": 0.1, "tiny": 0.05},
            predicted_uses={"big": 20.0, "small": 10.0, "tiny": 10.0},
            normal_use=30.0,
            total_predicted=40.0,
        )
        # The overuse is 10; the big bid alone saves 10, so the others are declined.
        assert decisions["big"] is True
        assert decisions["small"] is False and decisions["tiny"] is False

    def test_selective_acceptance_no_overuse_declines_all(self):
        policy = SelectiveBidAcceptance()
        decisions = policy.select(
            bids={"a": 0.3}, predicted_uses={"a": 10.0}, normal_use=20.0, total_predicted=15.0
        )
        assert decisions == {"a": False}

    def test_selective_acceptance_validation(self):
        with pytest.raises(ValueError):
            SelectiveBidAcceptance(safety_margin=-0.1)


class TestCustomerBidding:
    def figure_table(self) -> RewardTable:
        return RewardTable(
            {0.0: 0, 0.1: 2, 0.2: 5, 0.3: 9, 0.4: 17, 0.5: 21,
             0.6: 24, 0.7: 26, 0.8: 27.5, 0.9: 28.5, 1.0: 29}
        )

    def test_highest_acceptable_matches_paper(self):
        policy = HighestAcceptableCutdownBidding()
        requirements = CutdownRewardRequirements.paper_figure_8_customer()
        assert policy.choose_cutdown(self.figure_table(), requirements) == 0.2

    def test_highest_acceptable_never_retreats(self):
        policy = HighestAcceptableCutdownBidding()
        requirements = CutdownRewardRequirements.paper_figure_8_customer()
        chosen = policy.choose_cutdown(self.figure_table(), requirements, previous_bid=0.3)
        assert chosen == 0.3

    def test_expected_gain_prefers_best_surplus(self):
        policy = ExpectedGainBidding()
        requirements = CutdownRewardRequirements(
            {0.0: 0.0, 0.2: 1.0, 0.4: 16.0}, max_feasible_cutdown=0.8
        )
        table = RewardTable({0.0: 0.0, 0.2: 5.0, 0.4: 17.0})
        # Surplus: 0.2 -> 4, 0.4 -> 1; the expected-gain bidder picks 0.2 while
        # the highest-acceptable bidder would pick 0.4.
        assert policy.choose_cutdown(table, requirements) == 0.2
        assert HighestAcceptableCutdownBidding().choose_cutdown(table, requirements) == 0.4

    def test_expected_gain_respects_previous_bid(self):
        policy = ExpectedGainBidding()
        requirements = CutdownRewardRequirements({0.0: 0.0, 0.2: 1.0}, max_feasible_cutdown=0.8)
        table = RewardTable({0.0: 0.0, 0.2: 5.0})
        assert policy.choose_cutdown(table, requirements, previous_bid=0.4) == 0.4

    def test_expected_gain_ties_go_to_larger_cutdown(self):
        policy = ExpectedGainBidding()
        requirements = CutdownRewardRequirements(
            {0.0: 0.0, 0.2: 3.0, 0.4: 15.0}, max_feasible_cutdown=0.8
        )
        table = RewardTable({0.0: 0.0, 0.2: 5.0, 0.4: 17.0})  # both surplus 2
        assert policy.choose_cutdown(table, requirements) == 0.4

    def test_no_acceptable_cutdown_bids_zero(self):
        policy = HighestAcceptableCutdownBidding()
        requirements = CutdownRewardRequirements({0.2: 100.0}, max_feasible_cutdown=0.8)
        table = RewardTable({0.2: 5.0})
        assert policy.choose_cutdown(table, requirements) == 0.0
