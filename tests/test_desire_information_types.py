"""Tests for repro.desire.information_types."""

from __future__ import annotations

import pytest

from repro.desire.errors import OntologyError
from repro.desire.information_types import (
    Atom,
    InformationState,
    InformationType,
    TruthValue,
)


@pytest.fixture
def ontology() -> InformationType:
    info = InformationType("negotiation_domain")
    info.declare_sort("customer")
    info.declare_sort("amount", numeric=True)
    info.declare_object("customer", "c1")
    info.declare_object("customer", "c2")
    info.declare_relation("predicted_use", "customer", "amount")
    info.declare_relation("peak_expected")
    return info


class TestInformationType:
    def test_atom_construction_and_validation(self, ontology):
        atom = ontology.atom("predicted_use", "c1", 6.75)
        assert atom.relation == "predicted_use"
        assert atom.arity == 2
        assert str(atom) == "predicted_use(c1, 6.75)"

    def test_unknown_relation_rejected(self, ontology):
        with pytest.raises(OntologyError):
            ontology.atom("unknown_relation", "c1")

    def test_wrong_arity_rejected(self, ontology):
        with pytest.raises(OntologyError):
            ontology.atom("predicted_use", "c1")

    def test_undeclared_object_rejected(self, ontology):
        with pytest.raises(OntologyError):
            ontology.atom("predicted_use", "c99", 1.0)

    def test_numeric_sort_accepts_numbers_only(self, ontology):
        with pytest.raises(OntologyError):
            ontology.atom("predicted_use", "c1", "not-a-number")
        with pytest.raises(OntologyError):
            ontology.atom("predicted_use", "c1", True)

    def test_zero_arity_relation(self, ontology):
        atom = ontology.atom("peak_expected")
        assert atom.arity == 0
        assert str(atom) == "peak_expected"

    def test_accepts_helper(self, ontology):
        assert ontology.accepts(Atom("peak_expected"))
        assert not ontology.accepts(Atom("nonexistent"))

    def test_inclusion_makes_sorts_and_relations_visible(self, ontology):
        extended = InformationType("extended", includes=[ontology])
        extended.declare_relation("allowed_use", "customer", "amount")
        atom = extended.atom("predicted_use", "c2", 3.0)
        assert extended.accepts(atom)
        assert extended.find_sort("customer") is not None
        assert "predicted_use" in extended.relations()
        assert "customer" in extended.sorts()

    def test_redeclaring_sort_consistently_is_idempotent(self, ontology):
        ontology.declare_sort("customer")
        with pytest.raises(OntologyError):
            ontology.declare_sort("customer", numeric=True)

    def test_redeclaring_relation_with_other_signature_rejected(self, ontology):
        with pytest.raises(OntologyError):
            ontology.declare_relation("predicted_use", "customer")

    def test_relation_with_unknown_sort_rejected(self, ontology):
        with pytest.raises(OntologyError):
            ontology.declare_relation("broken", "nonexistent_sort")

    def test_object_for_unknown_sort_rejected(self, ontology):
        with pytest.raises(OntologyError):
            ontology.declare_object("nonexistent_sort", "x")

    def test_invalid_names_rejected(self):
        with pytest.raises(OntologyError):
            InformationType("")
        info = InformationType("ok")
        with pytest.raises(OntologyError):
            info.declare_sort("bad name!")


class TestInformationState:
    def test_unknown_by_default(self, ontology):
        state = InformationState()
        atom = ontology.atom("peak_expected")
        assert state.value_of(atom) is TruthValue.UNKNOWN
        assert not state.holds(atom)

    def test_assert_and_change_detection(self, ontology):
        state = InformationState()
        atom = ontology.atom("peak_expected")
        assert state.assert_atom(atom) is True
        assert state.assert_atom(atom) is False  # no change
        assert state.holds(atom)
        assert state.assert_atom(atom, TruthValue.FALSE) is True
        assert not state.holds(atom)

    def test_retract(self, ontology):
        state = InformationState()
        atom = ontology.atom("peak_expected")
        state.assert_atom(atom)
        assert state.retract(atom) is True
        assert state.value_of(atom) is TruthValue.UNKNOWN
        assert state.retract(atom) is False

    def test_atoms_of_relation(self, ontology):
        state = InformationState()
        state.assert_atom(ontology.atom("predicted_use", "c1", 5.0))
        state.assert_atom(ontology.atom("predicted_use", "c2", 7.0))
        state.assert_atom(ontology.atom("peak_expected"))
        atoms = state.atoms_of_relation("predicted_use")
        assert len(atoms) == 2

    def test_copy_is_independent(self, ontology):
        state = InformationState()
        atom = ontology.atom("peak_expected")
        state.assert_atom(atom)
        duplicate = state.copy()
        duplicate.assert_atom(atom, TruthValue.FALSE)
        assert state.holds(atom)

    def test_merge_counts_changes(self, ontology):
        state = InformationState()
        other = InformationState()
        other.assert_atom(ontology.atom("peak_expected"))
        other.assert_atom(ontology.atom("predicted_use", "c1", 5.0), TruthValue.FALSE)
        assert state.merge_from(other) == 2
        assert state.merge_from(other) == 0

    def test_truth_value_negate(self):
        assert TruthValue.TRUE.negate() is TruthValue.FALSE
        assert TruthValue.FALSE.negate() is TruthValue.TRUE
        assert TruthValue.UNKNOWN.negate() is TruthValue.UNKNOWN

    def test_invalid_truth_value_rejected(self, ontology):
        state = InformationState()
        with pytest.raises(TypeError):
            state.assert_atom(ontology.atom("peak_expected"), "true")  # type: ignore[arg-type]

    def test_as_dict_rendering(self, ontology):
        state = InformationState()
        state.assert_atom(ontology.atom("peak_expected"))
        rendered = state.as_dict()
        assert rendered == {"peak_expected": "true"}

    def test_iteration_and_len(self, ontology):
        state = InformationState()
        state.assert_atom(ontology.atom("peak_expected"))
        state.assert_atom(ontology.atom("predicted_use", "c1", 5.0))
        assert len(state) == 2
        assert len(list(state)) == 2
