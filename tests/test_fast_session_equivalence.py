"""Fast-path equivalence: FastSession must reproduce NegotiationSession.

The vectorized fast path is only trustworthy if it is *indistinguishable*
from the faithful object path at equal seeds: same rounds, same announced
tables, same per-customer bids, same message counts, same awards and the same
final :class:`~repro.core.results.NegotiationResult`.  These tests pin that
contract across both negotiation methods, several population sizes, both
stock bidding policies, the calibrated paper scenario, heterogeneous
requirement grids (scalar fallback) and the no-negotiation edge case.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.population import CustomerPopulation
from repro.agents.vectorized import VectorizedPopulation
from repro.core.fast_session import FastSession
from repro.core.scenario import Scenario, paper_prototype_scenario, synthetic_scenario
from repro.core.session import NegotiationSession
from repro.negotiation.methods.offer import OfferMethod
from repro.negotiation.methods.request_for_bids import RequestForBidsMethod
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.reward_table import CutdownRewardRequirements, RewardTable
from repro.negotiation.strategy import ConstantBeta, ExpectedGainBidding


def assert_equivalent(slow_result, fast_result) -> None:
    """Field-by-field equality of two NegotiationResults."""
    assert fast_result.rounds == slow_result.rounds
    assert fast_result.messages_sent == slow_result.messages_sent
    assert fast_result.simulation_rounds == slow_result.simulation_rounds
    assert fast_result.total_reward_paid == slow_result.total_reward_paid
    assert fast_result.record.termination_reason == slow_result.record.termination_reason
    assert fast_result.record.final_overuse == slow_result.record.final_overuse
    assert fast_result.record.initial_overuse == slow_result.record.initial_overuse
    for slow_round, fast_round in zip(slow_result.record.rounds, fast_result.record.rounds):
        assert fast_round.announcement == slow_round.announcement
        assert fast_round.bids == slow_round.bids
        assert fast_round.predicted_overuse_before == slow_round.predicted_overuse_before
        assert fast_round.predicted_overuse_after == slow_round.predicted_overuse_after
    assert fast_result.customer_outcomes == slow_result.customer_outcomes


def run_both(make_scenario) -> tuple:
    """Run object and fast paths on independently built scenarios."""
    slow = NegotiationSession(make_scenario(), seed=0)
    slow_result = slow.run()
    fast = FastSession(make_scenario(), seed=0)
    fast_result = fast.run()
    return slow, slow_result, fast, fast_result


class TestRewardTablesEquivalence:
    @pytest.mark.parametrize("num_households", [4, 12, 30])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_synthetic_population(self, num_households, seed):
        def make():
            return synthetic_scenario(num_households=num_households, seed=seed)

        _, slow_result, _, fast_result = run_both(make)
        assert_equivalent(slow_result, fast_result)

    def test_paper_prototype(self):
        slow, slow_result, fast, fast_result = run_both(paper_prototype_scenario)
        assert_equivalent(slow_result, fast_result)
        assert slow_result.rounds == 3
        # The fast path's streaming counters match the bus histogram exactly.
        assert fast.messages_by_performative() == (
            slow.simulation.bus.messages_by_performative()
        )

    def test_expected_gain_bidding_policy(self):
        def make():
            method = RewardTablesMethod(
                max_reward=60.0,
                beta_controller=ConstantBeta(2.0),
                bidding_policy=ExpectedGainBidding(),
                reward_epsilon=0.3,
            )
            return synthetic_scenario(num_households=16, seed=2, method=method)

        _, slow_result, _, fast_result = run_both(make)
        assert_equivalent(slow_result, fast_result)

    def test_heterogeneous_requirement_grids_ride_grouped_kernels(self):
        # Customers whose requirement tables cover *different* cut-down grids
        # cannot be packed into one matrix; the fast path runs the grouped
        # per-grid kernels instead and still matches the object path.
        coarse = CutdownRewardRequirements(
            requirements={0.0: 0.0, 0.2: 4.0, 0.4: 21.0, 0.8: 95.0},
            max_feasible_cutdown=0.8,
        )
        fine = CutdownRewardRequirements.paper_figure_8_customer()

        def make():
            population = CustomerPopulation.calibrated(
                predicted_uses=[12.0, 9.0, 14.0, 11.0],
                requirements=[coarse, fine, coarse, fine],
                normal_use=30.0,
                max_allowed_overuse=2.0,
            )
            method = RewardTablesMethod(
                max_reward=40.0, beta_controller=ConstantBeta(2.0)
            )
            return Scenario(name="hetero", population=population, method=method)

        fast = FastSession(make(), seed=0)
        _, slow_result, fast, fast_result = run_both(make)
        assert fast.population.is_vectorizable
        assert fast.population.requirement_grid is None
        assert fast.population.num_grid_groups == 2
        assert_equivalent(slow_result, fast_result)

    def test_no_negotiation_when_overuse_acceptable(self):
        def make():
            population = CustomerPopulation.calibrated(
                predicted_uses=[5.0, 5.0],
                requirements=[CutdownRewardRequirements.paper_figure_8_customer()] * 2,
                normal_use=9.5,
                max_allowed_overuse=2.0,
            )
            return Scenario(
                name="calm",
                population=population,
                method=RewardTablesMethod(max_reward=30.0),
            )

        _, slow_result, _, fast_result = run_both(make)
        assert_equivalent(slow_result, fast_result)
        assert fast_result.messages_sent == 0
        assert fast_result.simulation_rounds == 1


class TestRequestForBidsEquivalence:
    @pytest.mark.parametrize("num_households", [5, 15, 40])
    def test_synthetic_population(self, num_households):
        def make():
            return synthetic_scenario(
                num_households=num_households, seed=1, method=RequestForBidsMethod()
            )

        _, slow_result, _, fast_result = run_both(make)
        assert_equivalent(slow_result, fast_result)


class TestOfferMethodEquivalence:
    """The batched yes/no kernel must reproduce OfferMethod.respond exactly."""

    @pytest.mark.parametrize("num_households", [5, 20])
    @pytest.mark.parametrize("x_max", [0.6, 0.8, 0.95])
    def test_synthetic_population(self, num_households, x_max):
        def make():
            return synthetic_scenario(
                num_households=num_households, seed=2, method=OfferMethod(x_max=x_max)
            )

        _, slow_result, _, fast_result = run_both(make)
        assert_equivalent(slow_result, fast_result)

    def test_heterogeneous_grids_group_and_match(self):
        coarse = CutdownRewardRequirements(
            requirements={0.0: 0.0, 0.25: 3.0, 0.5: 30.0},
            max_feasible_cutdown=0.5,
        )
        fine = CutdownRewardRequirements.paper_figure_8_customer()

        def make():
            population = CustomerPopulation.calibrated(
                predicted_uses=[12.0, 9.0, 14.0, 11.0],
                requirements=[coarse, fine, coarse, fine],
                normal_use=30.0,
                max_allowed_overuse=2.0,
            )
            return Scenario(
                name="hetero_offer", population=population, method=OfferMethod()
            )

        fast = FastSession(make(), seed=0)
        fast.build()
        assert fast.population.is_vectorizable
        assert fast.population.requirement_grid is None
        assert fast.population.num_grid_groups == 2
        _, slow_result, _, fast_result = run_both(make)
        assert_equivalent(slow_result, fast_result)

    def test_offer_kernel_matches_scalar_decisions(self):
        scenario = synthetic_scenario(
            num_households=30, seed=5, method=OfferMethod(x_max=0.7)
        )
        method = scenario.method
        population = VectorizedPopulation.from_population(scenario.population)
        announcement = method.initial_announcement(
            scenario.population.utility_context()
        )
        batched = population.offer_acceptances(announcement, method.peak_hours)
        scalar = [
            method._deal_is_worthwhile(announcement, context)
            for context in scenario.population.customer_contexts()
        ]
        assert batched.tolist() == scalar


class TestSessionContracts:
    """build() idempotency and the no-bare-assert error contract."""

    def test_fast_session_build_is_idempotent(self):
        session = FastSession(paper_prototype_scenario(), seed=0)
        first = session.build()
        assert session.build() is first
        result = session.run()
        assert session.population is first
        assert result.rounds == 3

    def test_fast_session_refuses_second_run(self):
        # build() idempotency means a second run() would replay rounds into
        # the same record; it must refuse, like the object path's simulation.
        session = FastSession(paper_prototype_scenario(), seed=0)
        session.run()
        with pytest.raises(RuntimeError, match="already ran"):
            session.run()

    def test_object_session_build_is_idempotent(self):
        session = NegotiationSession(paper_prototype_scenario(), seed=0)
        first = session.build()
        assert session.build() is first

    def test_object_session_run_without_utility_agent_raises(self):
        session = NegotiationSession(paper_prototype_scenario(), seed=0)
        session.build()
        session.utility_agent = None
        with pytest.raises(RuntimeError, match="Utility Agent"):
            session.run()


class TestVectorizedKernels:
    """Batched kernels against their scalar reference, point by point."""

    @pytest.fixture
    def population(self) -> VectorizedPopulation:
        scenario = synthetic_scenario(num_households=25, seed=4)
        return VectorizedPopulation.from_population(scenario.population)

    def test_highest_acceptable_matches_scalar(self, population):
        table = RewardTable.convex(35.0, exponent=1.6)
        batched = population.highest_acceptable_cutdowns(table)
        scalar = [
            requirements.highest_acceptable_cutdown(table)
            for requirements in population.requirements
        ]
        assert batched.tolist() == scalar

    def test_expected_gain_matches_scalar(self, population):
        table = RewardTable.convex(50.0, exponent=1.4)
        policy = ExpectedGainBidding()
        batched = population.expected_gain_cutdowns(table)
        scalar = [
            policy.choose_cutdown(table, requirements)
            for requirements in population.requirements
        ]
        assert batched.tolist() == scalar

    def test_interpolated_requirements_match_scalar(self, population):
        rng = np.random.default_rng(11)
        queries = rng.uniform(0.0, 1.0, size=len(population.customer_ids))
        batched = population.interpolated_requirements(queries)
        scalar = [
            requirements.interpolated_requirement(float(query))
            for requirements, query in zip(population.requirements, queries)
        ]
        assert batched.tolist() == scalar

    def test_interpolation_covers_off_grid_and_infeasible_points(self):
        requirements = CutdownRewardRequirements(
            requirements={0.1: 2.0, 0.5: 10.0, 0.9: 50.0},
            max_feasible_cutdown=0.95,
        )
        population = VectorizedPopulation(
            customer_ids=["a", "b", "c", "d", "e"],
            predicted_uses=[1.0] * 5,
            allowed_uses=[1.0] * 5,
            requirements=[requirements] * 5,
        )
        queries = np.array([0.05, 0.3, 0.5, 0.93, 0.99])
        batched = population.interpolated_requirements(queries)
        scalar = [requirements.interpolated_requirement(q) for q in queries]
        assert batched.tolist() == scalar
        assert batched[-1] == float("inf")

    def test_rejects_out_of_range_queries(self, population):
        with pytest.raises(ValueError):
            population.interpolated_requirements(
                np.linspace(-0.1, 0.5, len(population.customer_ids))
            )
