"""Memory-regression guards for the bounded campaign path.

The predictor's ``history_window`` ring buffer is what keeps campaign memory
at O(window · N · slots) instead of O(days · N · slots): these tests pin the
footprint directly (buffer bytes must not grow once the ring is full) and
via tracemalloc (running a campaign for 4× the configured window must not
grow the predictor's traced allocations beyond one day's matrix of slack).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.api import EngineConfig, campaign
from repro.experiments.campaign_bench import CONDITION_CYCLE, build_campaign_planner
from repro.grid.demand import PopulationDemand
from repro.grid.prediction import ConsumptionPredictor


NUM_HOUSEHOLDS = 40
SLOTS = 24
WINDOW = 3


def _day(seed: int, n: int = NUM_HOUSEHOLDS, slots: int = SLOTS) -> PopulationDemand:
    rng = np.random.default_rng(seed)
    return PopulationDemand(
        household_ids=[f"h{i}" for i in range(n)],
        matrix=rng.uniform(0.0, 5.0, size=(n, slots)),
    )


class TestRingBufferBound:
    def test_buffer_bytes_constant_beyond_the_window(self):
        predictor = ConsumptionPredictor(history_window=WINDOW)
        sizes = []
        for day in range(4 * WINDOW):
            predictor.observe(_day(day))
            sizes.append(predictor.history_nbytes())
        expected = WINDOW * NUM_HOUSEHOLDS * SLOTS * 8
        assert sizes[-1] == expected
        # Once the ring fills (day index WINDOW-1) the footprint never moves.
        assert set(sizes[WINDOW - 1 :]) == {expected}
        assert predictor.history_length == WINDOW
        assert predictor.observed_days == 4 * WINDOW

    def test_unbounded_predictor_grows(self):
        predictor = ConsumptionPredictor()
        for day in range(4 * WINDOW):
            predictor.observe(_day(day))
        assert predictor.history_length == 4 * WINDOW
        assert predictor.history_nbytes() >= 4 * WINDOW * NUM_HOUSEHOLDS * SLOTS * 8

    def test_traced_predictor_memory_flat_at_4x_window(self):
        predictor = ConsumptionPredictor(history_window=WINDOW)
        days = [_day(day) for day in range(4 * WINDOW)]
        # Fill the ring first, then trace: every further observation must
        # reuse the ring's storage rather than allocate.
        predictor.observe_many(days[:WINDOW])
        one_day_bytes = NUM_HOUSEHOLDS * SLOTS * 8
        tracemalloc.start()
        try:
            baseline, _ = tracemalloc.get_traced_memory()
            predictor.observe_many(days[WINDOW:])
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # Generous slack (one day matrix + bookkeeping) — the point is that
        # 3 windows' worth of observations do not add 3 windows of storage.
        assert current - baseline < 2 * one_day_bytes
        assert peak - baseline < 4 * one_day_bytes


class TestCampaignFootprint:
    @pytest.mark.perf_smoke
    def test_campaign_at_4x_window_keeps_predictor_bounded(self):
        planner = build_campaign_planner(NUM_HOUSEHOLDS, seed=7)
        result = campaign(
            planner,
            4 * WINDOW,
            conditions=CONDITION_CYCLE,
            config=EngineConfig(materialise="lazy", history_window=WINDOW),
            warmup_days=2,
            seed=7,
        )
        assert result.num_days == 4 * WINDOW
        assert result.metadata["history_window"] == WINDOW
        predictor = planner.predictor
        # Warm-up days + campaign days all flowed through the ring …
        assert predictor.observed_days == 2 + 4 * WINDOW
        # … but only the window is retained, at its fixed footprint.
        assert predictor.history_length == WINDOW
        assert predictor.history_nbytes() == WINDOW * NUM_HOUSEHOLDS * SLOTS * 8
