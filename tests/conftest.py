"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

# One fixed, derandomized hypothesis profile for every property suite: tier-1
# (and CI) runs are reproducible — the same examples every time, shrinking
# still reported on failure — and bounded in wall-clock.  Run with
# HYPOTHESIS_PROFILE=dev locally for fresh random examples.
settings.register_profile("repro-ci", derandomize=True, deadline=None, max_examples=25)
settings.register_profile("dev", deadline=None, max_examples=50)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro-ci"))

from repro.agents.population import CustomerPopulation, PopulationConfig
from repro.core.scenario import Scenario, paper_prototype_scenario, synthetic_scenario
from repro.core.session import NegotiationSession
from repro.grid.weather import WeatherCondition, WeatherSample
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.reward_table import CutdownRewardRequirements
from repro.negotiation.strategy import ConstantBeta
from repro.runtime.rng import RandomSource


@pytest.fixture
def rng() -> RandomSource:
    """A deterministic random source."""
    return RandomSource(12345, "test")


@pytest.fixture
def cold_day() -> WeatherSample:
    """A deterministic severe-cold day."""
    return WeatherSample(temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD)


@pytest.fixture(scope="session")
def paper_scenario() -> Scenario:
    """The calibrated prototype scenario (scenario construction is cheap but shared)."""
    return paper_prototype_scenario()


@pytest.fixture(scope="session")
def paper_result():
    """The paper scenario run once per test session (it is deterministic)."""
    return NegotiationSession(paper_prototype_scenario(), seed=0).run()


@pytest.fixture(scope="session")
def small_synthetic_scenario() -> Scenario:
    """A small synthetic scenario shared by integration-style tests."""
    return synthetic_scenario(num_households=12, seed=3)


@pytest.fixture
def tiny_population() -> CustomerPopulation:
    """Three hand-specified customers with an obvious peak."""
    base = CutdownRewardRequirements.paper_figure_8_customer()
    scaled = CutdownRewardRequirements(
        requirements={c: 2.0 * r for c, r in base.requirements.items()},
        max_feasible_cutdown=0.6,
    )
    return CustomerPopulation.calibrated(
        predicted_uses=[10.0, 8.0, 12.0],
        requirements=[base, scaled, base],
        normal_use=24.0,
        max_allowed_overuse=1.0,
    )


@pytest.fixture
def reward_tables_method() -> RewardTablesMethod:
    """A default reward-tables method with a constant beta."""
    return RewardTablesMethod(max_reward=40.0, beta_controller=ConstantBeta(2.0))
