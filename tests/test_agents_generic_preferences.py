"""Tests for the generic agent model (Figures 2-5) and customer preferences."""

from __future__ import annotations

import pytest

from repro.agents.generic import (
    GENERIC_AGENT_TASKS,
    build_customer_agent_model,
    build_generic_agent_model,
    build_utility_agent_model,
    component_names,
)
from repro.agents.preferences import CustomerPreferenceModel
from repro.desire.component import ComposedComponent
from repro.grid.household import Household
from repro.runtime.clock import TimeInterval
from repro.runtime.rng import RandomSource


class TestGenericAgentModel:
    def test_seven_generic_tasks(self):
        assert len(GENERIC_AGENT_TASKS) == 7
        model = build_generic_agent_model("agent")
        assert model.child_names == list(GENERIC_AGENT_TASKS)

    def test_utility_agent_figure_2_hierarchy(self):
        """Own process control refines into the Figure 2 sub-tasks."""
        model = build_utility_agent_model()
        own_process_control = model.child("own_process_control")
        assert isinstance(own_process_control, ComposedComponent)
        assert set(own_process_control.child_names) == {
            "determine_general_negotiation_strategy",
            "evaluate_negotiation_process",
        }
        strategy = own_process_control.child("determine_general_negotiation_strategy")
        assert set(strategy.child_names) == {
            "determine_announcement_method",
            "determine_bid_acceptance_strategy",
        }

    def test_utility_agent_figure_3_hierarchy(self):
        """Cooperation management refines into the Figure 3 sub-tasks."""
        model = build_utility_agent_model()
        cooperation = model.child("cooperation_management")
        assert set(cooperation.child_names) == {
            "determine_announcement",
            "determine_bid_acceptance",
        }
        determine_announcement = cooperation.child("determine_announcement")
        assert "determine_announcement_by_generate_and_select" in determine_announcement.child_names
        assert (
            "determine_announcement_by_statistical_analysis_and_optimisation"
            in determine_announcement.child_names
        )
        generate_and_select = determine_announcement.child(
            "determine_announcement_by_generate_and_select"
        )
        assert set(generate_and_select.child_names) == {
            "generate_announcements",
            "evaluate_prediction_for_announcements",
            "select_announcement",
        }
        bid_acceptance = cooperation.child("determine_bid_acceptance")
        assert set(bid_acceptance.child_names) == {
            "monitor_bid_receipt",
            "evaluate_bids",
            "select_bids",
        }

    def test_utility_agent_specific_task(self):
        model = build_utility_agent_model()
        specific = model.child("agent_specific_task")
        assert set(specific.child_names) == {
            "determine_predicted_balance_consumption_production",
            "evaluate_prediction",
        }

    def test_utility_agent_keeps_all_generic_tasks(self):
        model = build_utility_agent_model()
        assert set(model.child_names) == set(GENERIC_AGENT_TASKS)

    def test_customer_agent_figure_4_hierarchy(self):
        model = build_customer_agent_model()
        own_process_control = model.child("own_process_control")
        strategies = own_process_control.child("determine_general_negotiation_strategies")
        assert set(strategies.child_names) == {
            "determine_general_resource_allocation_strategy",
            "determine_general_bidding_strategy",
        }
        evaluation = own_process_control.child("evaluate_processes")
        assert set(evaluation.child_names) == {
            "evaluate_resource_allocation_process",
            "evaluate_bidding_process",
        }

    def test_customer_agent_figure_5_hierarchy(self):
        model = build_customer_agent_model()
        cooperation = model.child("cooperation_management")
        assert set(cooperation.child_names) == {
            "determine_resource_consumers",
            "determine_bid",
        }
        determine_bid = cooperation.child("determine_bid")
        assert "generate_bids" in determine_bid.child_names
        select_bid = determine_bid.child("select_bid")
        assert set(select_bid.child_names) == {
            "choose_appropriate_bid",
            "calculate_expected_gain",
        }
        resource_consumers = cooperation.child("determine_resource_consumers")
        assert "determine_needs_of_resource_consumers" in resource_consumers.child_names

    def test_models_are_executable_compositions(self):
        """The hierarchies are real DESIRE components, not just name trees."""
        model = build_utility_agent_model()
        changes = model.activate()
        assert changes == 0  # structural placeholders are quiescent immediately
        assert model.activation_count == 1

    def test_component_names_helper(self):
        names = component_names(build_customer_agent_model("ca"))
        assert "ca" in names
        assert "calculate_expected_gain" in names
        assert len(names) > 15


class TestCustomerPreferenceModel:
    def test_requirements_scale_with_energy(self):
        model = CustomerPreferenceModel(comfort_weight=1.0, discomfort_scale=2.0)
        small = model.requirements_for_energy(5.0)
        large = model.requirements_for_energy(20.0)
        assert large.required_reward_for(0.4) > small.required_reward_for(0.4)

    def test_requirements_convex_and_monotone(self):
        model = CustomerPreferenceModel(exponent=1.8)
        requirements = model.requirements_for_energy(10.0)
        assert requirements.is_monotone()
        # Convexity: doubling the cut-down more than doubles the requirement.
        assert requirements.required_reward_for(0.4) > 2 * requirements.required_reward_for(0.2)

    def test_zero_cutdown_needs_no_reward(self):
        requirements = CustomerPreferenceModel().requirements_for_energy(10.0)
        assert requirements.required_reward_for(0.0) == 0.0

    def test_requirements_for_household(self, cold_day):
        household = Household.generate("h1", RandomSource(3, "pref"))
        interval = TimeInterval.from_hours(17, 20)
        model = CustomerPreferenceModel()
        requirements = model.requirements_for_household(household, interval, cold_day)
        assert requirements.is_monotone()
        assert 0.0 < requirements.max_feasible_cutdown <= 1.0

    def test_comfort_weight_raises_requirements(self, cold_day):
        household = Household.generate("h1", RandomSource(3, "pref"))
        interval = TimeInterval.from_hours(17, 20)
        relaxed = CustomerPreferenceModel(comfort_weight=0.5)
        picky = CustomerPreferenceModel(comfort_weight=2.0)
        relaxed_req = relaxed.requirements_for_household(household, interval, cold_day)
        picky_req = picky.requirements_for_household(household, interval, cold_day)
        assert picky_req.required_reward_for(0.4) > relaxed_req.required_reward_for(0.4)

    def test_sample_is_reproducible(self):
        a = CustomerPreferenceModel.sample(RandomSource(11, "p"))
        b = CustomerPreferenceModel.sample(RandomSource(11, "p"))
        assert a.comfort_weight == b.comfort_weight
        assert a.exponent == b.exponent

    def test_validation(self):
        with pytest.raises(ValueError):
            CustomerPreferenceModel(comfort_weight=0.0)
        with pytest.raises(ValueError):
            CustomerPreferenceModel(discomfort_scale=0.0)
        with pytest.raises(ValueError):
            CustomerPreferenceModel(exponent=0.0)
        with pytest.raises(ValueError):
            CustomerPreferenceModel().requirements_for_energy(-1.0)
