"""Tests for repro.grid.load_profile."""

from __future__ import annotations

import pytest

from repro.grid.load_profile import LoadProfile
from repro.runtime.clock import TimeInterval, TimeSlot


@pytest.fixture
def evening_peak() -> LoadProfile:
    """A stylised profile: 2 kW base, 8 kW evening peak at 17-20h."""
    values = [2.0] * 24
    for hour in (17, 18, 19):
        values[hour] = 8.0
    return LoadProfile.from_sequence(values)


class TestConstruction:
    def test_zeros_and_constant(self):
        assert LoadProfile.zeros(24).total_energy() == 0.0
        assert LoadProfile.constant(2.0, 24).total_energy() == pytest.approx(48.0)

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            LoadProfile(())
        with pytest.raises(ValueError):
            LoadProfile((1.0, -0.5))
        with pytest.raises(ValueError):
            LoadProfile.constant(-1.0)

    def test_slot_hours(self):
        assert LoadProfile.zeros(24).slot_hours == 1.0
        assert LoadProfile.zeros(96).slot_hours == pytest.approx(0.25)


class TestMeasures:
    def test_peak_and_peak_slot(self, evening_peak):
        assert evening_peak.peak() == 8.0
        assert evening_peak.peak_slot() == TimeSlot(17, 24)

    def test_total_energy(self, evening_peak):
        assert evening_peak.total_energy() == pytest.approx(21 * 2.0 + 3 * 8.0)

    def test_average_and_load_factor(self, evening_peak):
        assert evening_peak.average() == pytest.approx(evening_peak.total_energy() / 24)
        assert 0 < evening_peak.load_factor() < 1
        assert LoadProfile.constant(3.0).load_factor() == pytest.approx(1.0)
        assert LoadProfile.zeros().load_factor() == 1.0

    def test_energy_and_average_in_interval(self, evening_peak):
        interval = TimeInterval.from_hours(17, 20)
        assert evening_peak.energy_in(interval) == pytest.approx(24.0)
        assert evening_peak.average_in(interval) == pytest.approx(8.0)

    def test_exceedance(self, evening_peak):
        assert evening_peak.exceedance(2.0) == pytest.approx(18.0)
        assert evening_peak.exceedance(100.0) == 0.0

    def test_slots_above(self, evening_peak):
        assert [s.index for s in evening_peak.slots_above(5.0)] == [17, 18, 19]

    def test_peak_interval_detection(self, evening_peak):
        interval = evening_peak.peak_interval(5.0)
        assert interval is not None
        assert (interval.start.index, interval.end.index) == (17, 19)
        assert evening_peak.peak_interval(10.0) is None

    def test_at_requires_matching_resolution(self, evening_peak):
        with pytest.raises(ValueError):
            evening_peak.at(TimeSlot(0, 48))
        assert evening_peak.at(TimeSlot(17, 24)) == 8.0


class TestArithmetic:
    def test_addition_and_aggregate(self, evening_peak):
        total = evening_peak + evening_peak
        assert total.peak() == 16.0
        aggregated = LoadProfile.aggregate([evening_peak] * 3)
        assert aggregated.peak() == 24.0

    def test_subtraction_clamps_at_zero(self, evening_peak):
        diff = LoadProfile.constant(1.0) - evening_peak
        assert min(diff) == 0.0

    def test_mixed_resolutions_rejected(self, evening_peak):
        with pytest.raises(ValueError):
            evening_peak + LoadProfile.zeros(48)

    def test_scaled(self, evening_peak):
        assert evening_peak.scaled(0.5).peak() == 4.0
        with pytest.raises(ValueError):
            evening_peak.scaled(-1.0)

    def test_clipped(self, evening_peak):
        clipped = evening_peak.clipped(5.0)
        assert clipped.peak() == 5.0
        with pytest.raises(ValueError):
            evening_peak.clipped(-1.0)

    def test_with_cutdown_in_interval(self, evening_peak):
        interval = TimeInterval.from_hours(17, 20)
        reduced = evening_peak.with_cutdown_in(interval, 0.5)
        assert reduced.at(TimeSlot(17, 24)) == pytest.approx(4.0)
        assert reduced.at(TimeSlot(12, 24)) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            evening_peak.with_cutdown_in(interval, 1.5)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            LoadProfile.aggregate([])

    def test_indexing_and_iteration(self, evening_peak):
        assert evening_peak[17] == 8.0
        assert len(evening_peak) == 24
        assert list(evening_peak)[0] == 2.0

    def test_as_array_round_trip(self, evening_peak):
        array = evening_peak.as_array()
        rebuilt = LoadProfile.from_sequence(array)
        assert rebuilt == evening_peak
