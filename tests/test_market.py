"""Tests for the computational-market baseline."""

from __future__ import annotations

import pytest

from repro.core.scenario import paper_prototype_scenario
from repro.market.equilibrium import EquilibriumMarket, MarketOutcome
from repro.market.market_agent import CustomerSupplyCurve, UtilityDemandCurve
from repro.negotiation.reward_table import CutdownRewardRequirements


@pytest.fixture
def supply_curve() -> CustomerSupplyCurve:
    return CustomerSupplyCurve(
        customer="c1",
        predicted_use=10.0,
        requirements=CutdownRewardRequirements.paper_figure_8_customer(),
    )


class TestCustomerSupplyCurve:
    def test_zero_price_supplies_nothing(self, supply_curve):
        offer = supply_curve.best_response(0.0)
        assert offer.reduction == 0.0
        assert offer.surplus == 0.0

    def test_supply_is_nondecreasing_in_price(self, supply_curve):
        reductions = [supply_curve.reduction_at(p) for p in (0.0, 2.0, 5.0, 10.0, 20.0)]
        assert all(b >= a for a, b in zip(reductions, reductions[1:]))

    def test_best_response_has_nonnegative_surplus(self, supply_curve):
        for price in (0.5, 1.0, 3.0, 8.0):
            assert supply_curve.best_response(price).surplus >= 0.0

    def test_never_exceeds_feasible_cutdown(self, supply_curve):
        offer = supply_curve.best_response(1e6)
        assert offer.cutdown <= supply_curve.requirements.max_feasible_cutdown + 1e-9

    def test_negative_price_rejected(self, supply_curve):
        with pytest.raises(ValueError):
            supply_curve.best_response(-1.0)

    def test_negative_predicted_use_rejected(self):
        with pytest.raises(ValueError):
            CustomerSupplyCurve("c", -1.0, CutdownRewardRequirements.paper_figure_8_customer())


class TestUtilityDemandCurve:
    def test_demand_is_step_shaped(self):
        demand = UtilityDemandCurve(needed_reduction=20.0, reservation_price=10.0)
        assert demand.demand_at(5.0) == 20.0
        assert demand.demand_at(10.0) == 20.0
        assert demand.demand_at(10.01) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UtilityDemandCurve(-1.0, 5.0)
        with pytest.raises(ValueError):
            UtilityDemandCurve(1.0, -5.0)
        with pytest.raises(ValueError):
            UtilityDemandCurve(1.0, 5.0).demand_at(-1.0)


class TestEquilibriumMarket:
    def build_market(self, needed: float = 6.0, reservation: float = 10.0) -> EquilibriumMarket:
        base = CutdownRewardRequirements.paper_figure_8_customer()
        curves = [
            CustomerSupplyCurve(f"c{i}", 10.0, base) for i in range(4)
        ]
        return EquilibriumMarket(curves, UtilityDemandCurve(needed, reservation))

    def test_clearing_covers_needed_reduction(self):
        market = self.build_market(needed=6.0)
        outcome = market.clear()
        assert outcome.cleared
        assert outcome.total_reduction >= outcome.needed_reduction
        assert outcome.iterations > 0
        assert outcome.reduction_achieved_fraction == 1.0

    def test_clearing_price_is_minimal_up_to_tolerance(self):
        market = self.build_market(needed=6.0)
        outcome = market.clear()
        below = outcome.clearing_price - 5 * market.price_tolerance
        if below > 0:
            assert market.aggregate_supply(below) <= outcome.total_reduction

    def test_zero_needed_reduction_clears_at_zero(self):
        market = self.build_market(needed=0.0)
        outcome = market.clear()
        assert outcome.clearing_price == 0.0
        assert outcome.total_payment == 0.0
        assert outcome.iterations == 0

    def test_infeasible_demand_caps_at_reservation_price(self):
        market = self.build_market(needed=1000.0, reservation=3.0)
        outcome = market.clear()
        assert not outcome.cleared
        assert outcome.clearing_price == 3.0
        assert outcome.reduction_achieved_fraction < 1.0

    def test_payments_and_surplus_are_consistent(self):
        outcome = self.build_market(needed=8.0).clear()
        assert outcome.total_payment == pytest.approx(
            sum(offer.payment for offer in outcome.offers.values())
        )
        assert outcome.total_customer_surplus >= 0
        assert outcome.payment_per_unit_reduction > 0
        summary = outcome.summary()
        assert summary["cleared"] == 1.0

    def test_from_population_uses_same_preferences(self):
        scenario = paper_prototype_scenario()
        market = EquilibriumMarket.from_population(scenario.population)
        outcome = market.clear()
        needed = scenario.population.initial_overuse - scenario.population.max_allowed_overuse
        assert outcome.needed_reduction == pytest.approx(needed)
        assert outcome.cleared
        assert outcome.total_reduction >= needed

    def test_validation(self):
        demand = UtilityDemandCurve(1.0, 1.0)
        with pytest.raises(ValueError):
            EquilibriumMarket([], demand)
        curve = CustomerSupplyCurve(
            "c", 1.0, CutdownRewardRequirements.paper_figure_8_customer()
        )
        with pytest.raises(ValueError):
            EquilibriumMarket([curve], demand, price_tolerance=0.0)
        with pytest.raises(ValueError):
            EquilibriumMarket([curve], demand, max_iterations=0)
