"""Property-based equivalence suite for the campaign pipeline (hypothesis).

The zero-materialisation campaign path rests on three exactness contracts,
each of which must hold for *arbitrary* household fleets, not just the
hand-picked populations of the unit tests:

* **fleet-kernel bit-identity** — every :class:`~repro.grid.fleet
  .HouseholdFleet` kernel row equals the scalar per-household computation
  bit for bit;
* **lazy/eager bit-identity** — a campaign run with ``materialise="lazy"``
  produces ``CampaignResult.rows()`` identical to the eager oracle;
* **ring-buffer neutrality** — a windowed
  :class:`~repro.grid.prediction.ConsumptionPredictor` predicts exactly what
  a fresh unbounded predictor fed only the window's days would.

Households are generated from randomized sizes, appliance-ownership scales,
comfort weights, flexibility scales and day counts.  The suite runs in
tier-1 under the fixed, derandomized hypothesis profile registered in
``tests/conftest.py`` (reproducible examples, shrinking on failure).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, campaign
from repro.core.planning import DayAheadPlanner
from repro.grid.appliances import standard_appliance_library
from repro.grid.demand import PopulationDemand
from repro.grid.fleet import HouseholdFleet
from repro.grid.household import Household, HouseholdProfile
from repro.grid.prediction import ConsumptionPredictor, PredictionModel
from repro.grid.weather import WeatherCondition, WeatherSample
from repro.runtime.clock import TimeInterval

LIBRARY = standard_appliance_library()

# -- strategies --------------------------------------------------------------------

#: Ownership scale per appliance: 0 (not owned) or a modest usage scale.
ownership_scales = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.2, max_value=2.0, allow_nan=False),
)


@st.composite
def households(draw, index: int = 0):
    """One randomized household over the standard appliance library.

    Ownership is drawn per appliance in library order (which is what
    :meth:`Household.generate` guarantees and the fleet packing requires).
    """
    names = LIBRARY.names
    scales = draw(
        st.lists(ownership_scales, min_size=len(names), max_size=len(names))
    )
    if all(scale == 0.0 for scale in scales):
        scales[draw(st.integers(0, len(names) - 1))] = 1.0
    ownership = {
        name: scale for name, scale in zip(names, scales) if scale > 0.0
    }
    profile = HouseholdProfile(
        household_id=f"h{index:03d}",
        size=draw(st.integers(min_value=1, max_value=5)),
        ownership=ownership,
        comfort_weight=draw(
            st.floats(min_value=0.3, max_value=4.0, allow_nan=False)
        ),
        flexibility_scale=draw(
            st.floats(min_value=0.2, max_value=1.2, allow_nan=False)
        ),
    )
    return Household(profile, LIBRARY)


@st.composite
def household_fleets(draw, min_size: int = 1, max_size: int = 6):
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    return [draw(households(index)) for index in range(size)]


weathers = st.one_of(
    st.none(),
    st.builds(
        WeatherSample,
        temperature_c=st.floats(min_value=-25.0, max_value=25.0, allow_nan=False),
        condition=st.sampled_from(WeatherCondition),
    ),
)

intervals = st.integers(min_value=0, max_value=23).flatmap(
    lambda start: st.integers(min_value=start + 1, max_value=24).map(
        lambda end: TimeInterval.from_hours(start, end)
    )
)


# -- fleet-kernel bit-identity vs the scalar household path -------------------------


class TestFleetKernelProperties:
    @given(members=household_fleets(), weather=weathers, interval=intervals)
    def test_fleet_kernels_bit_identical_to_scalar(self, members, weather, interval):
        fleet = HouseholdFleet(members)
        demand = fleet.demand_profiles(weather)
        energies = fleet.energy_in(interval, weather)
        averages = fleet.average_in(interval, weather)
        saveable = fleet.saveable_energy(interval, weather)
        cutdowns = fleet.max_cutdown_fractions(interval, weather)
        for row, household in enumerate(members):
            profile = household.demand_profile(weather)
            assert demand[row].tolist() == list(profile)
            assert energies[row] == profile.energy_in(interval)
            assert averages[row] == profile.average_in(interval)
            assert saveable[row] == household.saveable_energy(interval, weather)
            assert cutdowns[row] == household.max_cutdown_fraction(interval, weather)

    @given(members=household_fleets(), weather=weathers, interval=intervals)
    def test_fleet_requirements_bit_identical_to_scalar_tables(
        self, members, weather, interval
    ):
        from repro.agents.preferences import CustomerPreferenceModel

        model = CustomerPreferenceModel()
        fleet = HouseholdFleet(members)
        requirements = model.requirements_for_fleet(fleet, interval, weather)
        tables = requirements.tables()
        for household, table in zip(members, tables):
            scalar = model.requirements_for_household(household, interval, weather)
            assert table.requirements == scalar.requirements
            assert table.max_feasible_cutdown == scalar.max_feasible_cutdown


# -- predictor ring buffer ----------------------------------------------------------


class TestPredictorWindowProperties:
    @given(
        num_days=st.integers(min_value=1, max_value=12),
        window=st.integers(min_value=1, max_value=5),
        model=st.sampled_from(PredictionModel),
        data=st.data(),
    )
    def test_windowed_predictor_equals_fresh_predictor_over_window(
        self, num_days, window, model, data
    ):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        ids = [f"h{i}" for i in range(3)]
        days = [
            PopulationDemand(
                household_ids=ids,
                matrix=rng.uniform(0.0, 5.0, size=(3, 6)),
                weather=data.draw(weathers),
            )
            for __ in range(num_days)
        ]
        forecast = data.draw(weathers)
        windowed = ConsumptionPredictor(model, history_window=window)
        windowed.observe_many(days)
        fresh = ConsumptionPredictor(model)
        fresh.observe_many(days[-window:])
        bounded = windowed.predict_columnar(forecast)
        oracle = fresh.predict_columnar(forecast)
        assert bounded.matrix.tolist() == oracle.matrix.tolist()
        assert list(bounded.aggregate) == list(oracle.aggregate)
        assert windowed.history_length == min(num_days, window)
        assert windowed.observed_days == num_days


# -- lazy vs eager campaigns --------------------------------------------------------


def _run_campaign(members, materialise, num_days, seed, window=None):
    planner = DayAheadPlanner(
        members,
        normal_capacity_kw=max(
            1e-6, 0.75 * float(HouseholdFleet(members).aggregate_demand().peak())
        ),
        planning="columnar",
    )
    return campaign(
        planner,
        num_days,
        config=EngineConfig(materialise=materialise, history_window=window),
        warmup_days=2,
        seed=seed,
    )


class TestLazyEagerCampaignProperties:
    @settings(max_examples=10)
    @given(
        members=household_fleets(min_size=2, max_size=5),
        num_days=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
        window=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    )
    def test_campaign_rows_bit_identical(self, members, num_days, seed, window):
        eager = _run_campaign(members, "eager", num_days, seed, window)
        lazy = _run_campaign(members, "lazy", num_days, seed, window)
        assert lazy.rows() == eager.rows()
        assert lazy.backends == eager.backends

    @settings(max_examples=10)
    @given(
        members=household_fleets(min_size=2, max_size=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_lazy_population_materialises_bit_identically(self, members, seed):
        """A lazy plan, once forced to materialise, equals the eager plan."""
        cold = WeatherSample(
            temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD
        )
        mild = WeatherSample(temperature_c=10.0, condition=WeatherCondition.MILD)

        def plan(materialise):
            planner = DayAheadPlanner(
                members,
                normal_capacity_kw=max(
                    1e-6,
                    0.75 * float(HouseholdFleet(members).aggregate_demand().peak()),
                ),
            )
            planner.observe_days([mild, mild])
            return planner.plan(cold, materialise=materialise)

        lazy_scenario = plan("lazy")
        eager_scenario = plan("eager")
        assert (lazy_scenario is None) == (eager_scenario is None)
        if lazy_scenario is None:
            return
        population = lazy_scenario.population
        assert population.materialised is False
        assert population.customer_ids == eager_scenario.population.customer_ids
        assert (
            population.total_predicted_use
            == eager_scenario.population.total_predicted_use
        )
        # Forcing the object view must reproduce the eager specs exactly.
        for lazy_spec, eager_spec in zip(
            population.specs, eager_scenario.population.specs
        ):
            assert lazy_spec.customer_id == eager_spec.customer_id
            assert lazy_spec.predicted_use == eager_spec.predicted_use
            assert lazy_spec.allowed_use == eager_spec.allowed_use
            assert lazy_spec.requirements == eager_spec.requirements
        assert population.materialised is True
