"""Tests for appliances, households, weather and demand."""

from __future__ import annotations

import pytest

from repro.grid.appliances import (
    Appliance,
    ApplianceCategory,
    ApplianceLibrary,
    standard_appliance_library,
)
from repro.grid.demand import DemandCurve, DemandModel, PopulationDemand
from repro.grid.household import Household, HouseholdProfile
from repro.grid.load_profile import LoadProfile
from repro.grid.weather import WeatherCondition, WeatherModel, WeatherSample
from repro.runtime.clock import TimeInterval
from repro.runtime.rng import RandomSource


@pytest.fixture
def library() -> ApplianceLibrary:
    return standard_appliance_library()


@pytest.fixture
def household(library) -> Household:
    profile = HouseholdProfile(
        household_id="h1",
        size=3,
        ownership={"electric_space_heating": 1.0, "hot_water_boiler": 1.0, "lighting": 1.0},
        comfort_weight=1.0,
        flexibility_scale=0.8,
    )
    return Household(profile, library)


class TestAppliances:
    def test_standard_library_is_populated(self, library):
        assert len(library) >= 8
        assert "electric_space_heating" in library
        assert library.get("lighting").category is ApplianceCategory.LIGHTING

    def test_library_rejects_duplicates_and_unknown(self, library):
        with pytest.raises(ValueError):
            library.add(library.get("lighting"))
        with pytest.raises(KeyError):
            library.get("flux_capacitor")

    def test_by_category(self, library):
        white_goods = library.by_category(ApplianceCategory.WHITE_GOODS)
        assert {a.name for a in white_goods} >= {"washing_machine", "dishwasher"}

    def test_daily_profile_energy_matches_declared(self, library):
        lighting = library.get("lighting")
        profile = lighting.daily_profile()
        assert profile.total_energy() == pytest.approx(lighting.daily_energy_kwh, rel=0.05)

    def test_per_person_scaling(self, library):
        boiler = library.get("hot_water_boiler")
        single = boiler.daily_profile(household_size=1).total_energy()
        family = boiler.daily_profile(household_size=4).total_energy()
        assert family > 2 * single

    def test_heating_factor_only_affects_heating(self, library):
        heater = library.get("electric_space_heating")
        fridge = library.get("fridge_freezer")
        assert heater.daily_profile(heating_factor=2.0).total_energy() == pytest.approx(
            2 * heater.daily_profile(heating_factor=1.0).total_energy(), rel=0.1
        )
        assert fridge.daily_profile(heating_factor=2.0).total_energy() == pytest.approx(
            fridge.daily_profile(heating_factor=1.0).total_energy()
        )

    def test_rated_power_caps_profile(self, library):
        stove = library.get("electric_stove")
        profile = stove.daily_profile(household_size=1)
        assert profile.peak() <= stove.rated_power_kw + 1e-9

    def test_saveable_energy_respects_flexibility(self, library):
        washing = library.get("washing_machine")
        fridge = library.get("fridge_freezer")
        interval = TimeInterval.from_hours(17, 20)
        washing_profile = washing.daily_profile()
        fridge_profile = fridge.daily_profile()
        assert washing.saveable_energy(washing_profile, interval) == pytest.approx(
            washing_profile.energy_in(interval) * washing.flexibility
        )
        assert fridge.saveable_energy(fridge_profile, interval) < fridge_profile.energy_in(interval)

    def test_appliance_validation(self):
        with pytest.raises(ValueError):
            Appliance("bad", ApplianceCategory.OTHER, -1.0, 1.0, tuple([1.0] * 24), 0.5)
        with pytest.raises(ValueError):
            Appliance("bad", ApplianceCategory.OTHER, 1.0, 1.0, tuple([1.0] * 23), 0.5)
        with pytest.raises(ValueError):
            Appliance("bad", ApplianceCategory.OTHER, 1.0, 1.0, tuple([1.0] * 24), 1.5)
        with pytest.raises(ValueError):
            Appliance("bad", ApplianceCategory.OTHER, 1.0, 1.0, tuple([0.0] * 24), 0.5)

    def test_resolution_resampling(self, library):
        lighting = library.get("lighting")
        fine = lighting.daily_profile(slots_per_day=96)
        assert fine.slots_per_day == 96
        assert fine.total_energy() == pytest.approx(
            lighting.daily_profile(slots_per_day=24).total_energy(), rel=0.05
        )
        with pytest.raises(ValueError):
            lighting.daily_profile(slots_per_day=7)

    def test_sample_ownership(self, library):
        random = RandomSource(0, "ownership")
        ownership = library.sample_ownership(random, household_size=3)
        assert set(ownership) == set(library.names)
        assert all(scale >= 0 for scale in ownership.values())
        # Cold appliances and lighting are (nearly) always owned.
        assert ownership["fridge_freezer"] > 0
        with pytest.raises(ValueError):
            library.sample_ownership(random, 0)


class TestWeather:
    def test_heating_factor_monotone_in_cold(self):
        mild = WeatherSample(10.0, WeatherCondition.MILD)
        cold = WeatherSample(-5.0, WeatherCondition.COLD)
        severe = WeatherSample(-20.0, WeatherCondition.SEVERE_COLD)
        assert mild.heating_factor == pytest.approx(1.0)
        assert severe.heating_factor > cold.heating_factor > mild.heating_factor

    def test_warm_day_floor(self):
        warm = WeatherSample(30.0, WeatherCondition.WARM)
        assert warm.heating_factor >= 0.25

    def test_model_is_deterministic_per_seed(self):
        a = WeatherModel(RandomSource(5, "w")).sample()
        b = WeatherModel(RandomSource(5, "w")).sample()
        assert a == b

    def test_cold_snap_and_reference_day(self):
        model = WeatherModel(RandomSource(0, "w"))
        assert model.cold_snap().condition is WeatherCondition.SEVERE_COLD
        assert model.reference_day().heating_factor == pytest.approx(1.0)

    def test_forced_condition(self):
        model = WeatherModel(RandomSource(0, "w"))
        sample = model.sample(WeatherCondition.WARM)
        assert sample.condition is WeatherCondition.WARM


class TestHousehold:
    def test_demand_profile_covers_owned_appliances(self, household):
        demand = household.demand_profile()
        assert demand.total_energy() > 0
        assert demand.slots_per_day == 24

    def test_cold_weather_raises_demand(self, household, cold_day):
        mild = household.demand_profile()
        cold = household.demand_profile(cold_day)
        assert cold.total_energy() > mild.total_energy()

    def test_saveable_energy_and_max_cutdown(self, household, cold_day):
        interval = TimeInterval.from_hours(17, 20)
        saveable = household.saveable_energy(interval, cold_day)
        max_cutdown = household.max_cutdown_fraction(interval, cold_day)
        assert saveable > 0
        assert 0 < max_cutdown <= 1.0

    def test_unknown_appliance_rejected(self, library):
        profile = HouseholdProfile(
            household_id="bad", size=2, ownership={"warp_drive": 1.0},
            comfort_weight=1.0, flexibility_scale=0.5,
        )
        with pytest.raises(ValueError):
            Household(profile, library)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            HouseholdProfile("h", 0, {}, 1.0, 0.5)
        with pytest.raises(ValueError):
            HouseholdProfile("h", 2, {}, 0.0, 0.5)
        with pytest.raises(ValueError):
            HouseholdProfile("h", 2, {}, 1.0, 0.0)

    def test_generate_is_reproducible(self, library):
        a = Household.generate("h1", RandomSource(9, "h"), library)
        b = Household.generate("h1", RandomSource(9, "h"), library)
        assert a.profile == b.profile

    def test_generated_household_has_plausible_size(self, library):
        household = Household.generate("h1", RandomSource(1, "h"), library)
        assert 1 <= household.size <= 5


class TestDemand:
    def build_model(self, num: int = 10, seed: int = 0) -> DemandModel:
        random = RandomSource(seed, "demand_test")
        households = [
            Household.generate(f"h{i}", random.spawn(f"h{i}")) for i in range(num)
        ]
        return DemandModel(households, random.spawn("noise"), behavioural_noise=0.05)

    def test_realise_covers_all_households(self, cold_day):
        model = self.build_model(8)
        realised = model.realise(cold_day)
        assert len(realised.household_ids) == 8
        assert realised.aggregate.total_energy() > 0

    def test_expected_aggregate_is_noise_free_and_deterministic(self, cold_day):
        model = self.build_model(5, seed=3)
        first = model.expected_aggregate(cold_day)
        second = model.expected_aggregate(cold_day)
        assert first == second

    def test_normal_capacity_sits_below_peak(self, cold_day):
        model = self.build_model(10)
        capacity = model.normal_capacity_for_target(cold_day, quantile=0.75)
        aggregate = model.expected_aggregate(cold_day)
        assert capacity < aggregate.peak()
        assert capacity > aggregate.as_array().min()

    def test_demand_curve_overuse_quantities(self, cold_day):
        model = self.build_model(10)
        realised = model.realise(cold_day)
        capacity = model.normal_capacity_for_target(cold_day)
        curve = realised.curve(capacity)
        assert curve.has_peak
        assert curve.peak_overuse == pytest.approx(curve.peak_demand - capacity)
        assert curve.relative_overuse > 0
        assert curve.expensive_energy() > 0
        assert curve.peak_interval() is not None
        rows = curve.as_rows()
        assert len(rows) == 24
        assert all(row["overuse_kw"] >= 0 for row in rows)

    def test_demand_in_interval(self, cold_day):
        model = self.build_model(4)
        realised = model.realise(cold_day)
        interval = TimeInterval.from_hours(17, 20)
        per_household = realised.demand_in(interval)
        assert set(per_household) == set(realised.household_ids)
        assert all(v >= 0 for v in per_household.values())

    def test_population_demand_validation(self):
        with pytest.raises(ValueError):
            PopulationDemand({})

    def test_curve_validation(self):
        with pytest.raises(ValueError):
            DemandCurve(LoadProfile.constant(1.0), 0.0)

    def test_demand_model_validation(self):
        with pytest.raises(ValueError):
            DemandModel([], behavioural_noise=0.1)
