"""End-to-end integration tests across all layers.

These tests exercise the full stack together: grid substrate -> prediction ->
scenario -> multi-agent negotiation over the message bus (with Producer Agent,
External World and Resource Consumer Agents attached) -> application of the
awarded cut-downs -> cost accounting.
"""

from __future__ import annotations

import pytest

from repro.analysis.convergence import analyse_convergence
from repro.core.planning import DayAheadPlanner, MultiDayCampaign
from repro.core.scenario import paper_prototype_scenario, synthetic_scenario
from repro.core.session import NegotiationSession
from repro.core.system import LoadBalancingSystem
from repro.grid.demand import DemandModel
from repro.grid.household import Household
from repro.grid.load_profile import LoadProfile
from repro.grid.production import ProductionModel
from repro.grid.weather import WeatherCondition, WeatherSample
from repro.negotiation.methods.offer import OfferMethod
from repro.negotiation.methods.request_for_bids import RequestForBidsMethod
from repro.runtime.messaging import Performative
from repro.runtime.rng import RandomSource


class TestFullStackNegotiation:
    def test_synthetic_town_with_all_agent_types(self):
        """UA + CAs + RCAs + Producer + External World on one bus, end to end."""
        scenario = synthetic_scenario(num_households=10, seed=11)
        session = NegotiationSession(
            scenario,
            seed=11,
            include_producer=True,
            include_external_world=True,
            with_resource_consumers=True,
        )
        result = session.run()

        assert result.rounds >= 1
        assert result.final_overuse < result.initial_overuse
        assert session.utility_agent.protocol.violations == []
        # The UA actually received producer and world information.
        assert session.utility_agent.producer_reports
        assert session.utility_agent.world_observations
        # Awarded customers instructed their Resource Consumer Agents.
        histogram = session.simulation.bus.messages_by_performative()
        awarded = [a for a in session.customer_agents if a.award and a.award.accepted]
        if awarded:
            assert histogram.get(Performative.CONFIRM, 0) > 0
            instructed = [
                rca.instructed_cutdown
                for agent in awarded
                for rca in agent.resource_consumers
            ]
            assert any(cutdown > 0 for cutdown in instructed)

    def test_cutdowns_applied_to_profiles_reduce_peak_energy(self):
        scenario = synthetic_scenario(num_households=12, seed=13)
        system = LoadBalancingSystem(scenario, seed=13)
        baseline = system.baseline_profiles()
        outcome = system.run()
        assert outcome.negotiated
        adjusted = system.apply_cutdowns(baseline, outcome.negotiation)
        interval = scenario.population.interval
        before = LoadProfile.aggregate(baseline.values()).energy_in(interval)
        after = LoadProfile.aggregate(adjusted.values()).energy_in(interval)
        assert after < before
        # Off-peak energy is untouched by the cut-downs.
        before_total = LoadProfile.aggregate(baseline.values()).total_energy()
        after_total = LoadProfile.aggregate(adjusted.values()).total_energy()
        assert before_total - after_total == pytest.approx(before - after, rel=1e-6)

    def test_every_method_completes_on_the_same_population(self):
        for method in (OfferMethod(), RequestForBidsMethod(), None):
            scenario = synthetic_scenario(num_households=10, seed=17, method=method)
            result = NegotiationSession(scenario, seed=17).run()
            assert result.final_overuse <= result.initial_overuse + 1e-9
            analysis = analyse_convergence(result)
            assert analysis.overuse_monotone_nonincreasing

    def test_paper_scenario_with_protocol_checking_strict(self):
        scenario = paper_prototype_scenario()
        session = NegotiationSession(scenario, seed=0, check_protocol=True)
        result = session.run()
        assert result.rounds == 3
        assert session.utility_agent.protocol.violations == []


class TestPredictToNegotiateLoop:
    def test_planner_scenario_runs_through_the_full_pipeline(self):
        random = RandomSource(23, "integration_planner")
        households = [
            Household.generate(f"h{i}", random.spawn(f"h{i}")) for i in range(12)
        ]
        demand_model = DemandModel(households, random.spawn("demand"))
        capacity = demand_model.normal_capacity_for_target(quantile=0.8)
        planner = DayAheadPlanner(households, capacity, random=random.spawn("planner"))
        mild = WeatherSample(10.0, WeatherCondition.MILD)
        cold = WeatherSample(-18.0, WeatherCondition.SEVERE_COLD)
        for __ in range(3):
            planner.observe_day(mild)
        scenario = planner.plan(cold)
        assert scenario is not None
        production = ProductionModel.two_tier(capacity, capacity, 0.25, 0.9)
        system = LoadBalancingSystem(scenario, production=production, seed=23)
        outcome = system.run()
        assert outcome.negotiated
        assert outcome.peak_after_kw <= outcome.peak_before_kw + 1e-6
        assert outcome.production_savings >= 0

    def test_short_campaign_is_deterministic(self):
        def run_once():
            random = RandomSource(29, "integration_campaign")
            households = [
                Household.generate(f"h{i}", random.spawn(f"h{i}")) for i in range(10)
            ]
            demand_model = DemandModel(households, random.spawn("demand"))
            capacity = demand_model.normal_capacity_for_target(quantile=0.85)
            planner = DayAheadPlanner(households, capacity, random=random.spawn("planner"))
            campaign = MultiDayCampaign(planner, warmup_days=2, seed=29)
            return campaign.run(
                num_days=3,
                conditions=[WeatherCondition.MILD, WeatherCondition.SEVERE_COLD,
                            WeatherCondition.MILD],
            )

        first = run_once()
        second = run_once()
        assert first.days_negotiated == second.days_negotiated
        assert first.total_reward_paid == pytest.approx(second.total_reward_paid)
        assert [d.negotiated for d in first.days] == [d.negotiated for d in second.days]
