"""Tests for day-ahead planning and multi-day campaigns."""

from __future__ import annotations

import pytest

from repro.core.planning import CampaignResult, DayAheadPlanner, MultiDayCampaign
from repro.grid.demand import DemandModel
from repro.grid.household import Household
from repro.grid.prediction import ConsumptionPredictor, PredictionModel
from repro.grid.production import ProductionModel
from repro.grid.weather import WeatherCondition, WeatherModel, WeatherSample
from repro.runtime.rng import RandomSource


@pytest.fixture
def households():
    random = RandomSource(4, "planning_test")
    return [Household.generate(f"h{i}", random.spawn(f"h{i}")) for i in range(15)]


@pytest.fixture
def planner(households):
    random = RandomSource(4, "planning_test")
    demand_model = DemandModel(households, random.spawn("d"))
    capacity = demand_model.normal_capacity_for_target(quantile=0.8)
    return DayAheadPlanner(households, capacity, random=random.spawn("planner"))


@pytest.fixture
def cold_forecast():
    return WeatherSample(temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD)


@pytest.fixture
def mild_forecast():
    return WeatherSample(temperature_c=12.0, condition=WeatherCondition.MILD)


class TestDayAheadPlanner:
    def test_requires_history_before_planning(self, planner, cold_forecast):
        with pytest.raises(ValueError):
            planner.plan(cold_forecast)

    def test_cold_forecast_produces_scenario(self, planner, mild_forecast, cold_forecast):
        for __ in range(3):
            planner.observe_day(mild_forecast)
        assert planner.history_length == 3
        scenario = planner.plan(cold_forecast)
        assert scenario is not None
        assert scenario.population.initial_overuse > 0
        assert scenario.population.interval is not None
        assert len(scenario.population) == 15
        # Every customer's requirement table is usable by the negotiation.
        for spec in scenario.population.specs:
            assert spec.requirements.is_monotone()
            assert spec.predicted_use >= 0

    def test_planned_scenario_is_negotiable(self, planner, mild_forecast, cold_forecast):
        from repro.core.session import NegotiationSession

        for __ in range(3):
            planner.observe_day(mild_forecast)
        scenario = planner.plan(cold_forecast)
        result = NegotiationSession(scenario, seed=0).run()
        assert result.rounds >= 1
        assert result.final_overuse <= result.initial_overuse

    def test_predicted_peak_interval(self, planner, mild_forecast, cold_forecast):
        for __ in range(3):
            planner.observe_day(mild_forecast)
        interval = planner.predicted_peak_interval(cold_forecast)
        assert interval is not None
        assert interval.num_slots >= 1

    def test_mild_forecast_may_need_no_negotiation(self, households, mild_forecast):
        random = RandomSource(4, "planning_test_mild")
        demand_model = DemandModel(households, random.spawn("d"))
        # Generous capacity: no peak even on the forecast day.
        capacity = demand_model.expected_aggregate(mild_forecast).peak() * 1.5
        planner = DayAheadPlanner(households, capacity, random=random.spawn("p"))
        planner.observe_day(mild_forecast)
        assert planner.plan(mild_forecast) is None

    def test_validation(self, households):
        with pytest.raises(ValueError):
            DayAheadPlanner([], 100.0)
        with pytest.raises(ValueError):
            DayAheadPlanner(households, 0.0)
        with pytest.raises(ValueError):
            DayAheadPlanner(households, 100.0, max_allowed_overuse_fraction=1.5)


class TestMultiDayCampaign:
    def test_campaign_runs_and_learns(self, planner):
        campaign = MultiDayCampaign(planner, warmup_days=2, seed=3)
        conditions = [
            WeatherCondition.MILD,
            WeatherCondition.SEVERE_COLD,
            WeatherCondition.COLD,
            WeatherCondition.MILD,
        ]
        result = campaign.run(num_days=4, conditions=conditions)
        assert result.num_days == 4
        # The predictor saw the warm-up days plus every campaign day.
        assert planner.history_length == 2 + 4
        # At least the severe-cold day triggers a negotiation.
        assert result.days_negotiated >= 1
        negotiated_days = [day for day in result.days if day.negotiated]
        for day in negotiated_days:
            assert day.outcome is not None
            assert day.outcome.peak_after_kw <= day.outcome.peak_before_kw + 1e-6
            assert day.outcome.reward_paid >= 0
        rows = result.rows()
        assert len(rows) == 4
        assert all("negotiated" in row for row in rows)
        assert result.total_reward_paid >= 0

    def test_campaign_with_mild_days_only(self, planner):
        campaign = MultiDayCampaign(planner, warmup_days=2, seed=3)
        result = campaign.run(num_days=2, conditions=[WeatherCondition.WARM])
        assert result.days_negotiated == 0
        assert result.total_reward_paid == 0.0
        assert result.total_net_benefit == 0.0

    def test_campaign_validation(self, planner):
        campaign = MultiDayCampaign(planner, warmup_days=1)
        with pytest.raises(ValueError):
            campaign.run(num_days=0)
        with pytest.raises(ValueError):
            MultiDayCampaign(planner, warmup_days=0)

    def test_campaign_result_empty(self):
        result = CampaignResult()
        assert result.num_days == 0
        assert result.days_negotiated == 0
        assert result.total_reward_paid == 0.0
