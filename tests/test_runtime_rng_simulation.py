"""Tests for repro.runtime.rng and repro.runtime.simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.messaging import Performative
from repro.runtime.rng import RandomSource
from repro.runtime.simulation import Simulation, SimulationError


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert RandomSource(1).uniform() != RandomSource(2).uniform()

    def test_spawn_children_are_independent_and_reproducible(self):
        root_a = RandomSource(7)
        root_b = RandomSource(7)
        child_a = root_a.spawn("weather")
        child_b = root_b.spawn("weather")
        assert child_a.uniform() == child_b.uniform()
        assert child_a.name.endswith("weather")

    def test_spawn_does_not_disturb_parent(self):
        root_a = RandomSource(7)
        root_b = RandomSource(7)
        root_a.spawn("extra")
        assert root_a.uniform() == root_b.spawn("extra") and True or True
        # The parent streams must agree regardless of how many children exist.
        assert RandomSource(7).uniform() == RandomSource(7).uniform()

    def test_integer_bounds_inclusive(self):
        random = RandomSource(0)
        draws = {random.integer(1, 3) for _ in range(200)}
        assert draws == {1, 2, 3}

    def test_integer_invalid_bounds(self):
        with pytest.raises(ValueError):
            RandomSource(0).integer(3, 1)

    def test_boolean_probability_extremes(self):
        random = RandomSource(0)
        assert all(random.boolean(1.0) for _ in range(10))
        assert not any(random.boolean(0.0) for _ in range(10))
        with pytest.raises(ValueError):
            random.boolean(1.5)

    def test_choice_weighted(self):
        random = RandomSource(0)
        picks = [random.choice(["a", "b"], weights=[0.0, 1.0]) for _ in range(20)]
        assert set(picks) == {"b"}

    def test_choice_validation(self):
        random = RandomSource(0)
        with pytest.raises(ValueError):
            random.choice([])
        with pytest.raises(ValueError):
            random.choice(["a", "b"], weights=[1.0])
        with pytest.raises(ValueError):
            random.choice(["a", "b"], weights=[0.0, 0.0])
        with pytest.raises(ValueError):
            random.choice(["a", "b"], weights=[-1.0, 2.0])

    def test_normal_negative_std_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(0).normal(0.0, -1.0)

    def test_arrays(self):
        random = RandomSource(0)
        uniform = random.uniform_array(0.0, 1.0, 100)
        normal = random.normal_array(5.0, 0.1, 100)
        assert uniform.shape == (100,) and np.all((uniform >= 0) & (uniform < 1))
        assert abs(float(normal.mean()) - 5.0) < 0.1

    def test_shuffled_returns_copy(self):
        random = RandomSource(0)
        items = [1, 2, 3, 4, 5]
        shuffled = random.shuffled(items)
        assert sorted(shuffled) == items
        assert items == [1, 2, 3, 4, 5]


class Recorder:
    """Minimal steppable participant used to test the simulation driver."""

    def __init__(self, name: str) -> None:
        self._name = name
        self.rounds_seen: list[int] = []

    @property
    def name(self) -> str:
        return self._name

    def step(self, simulation: Simulation) -> None:
        self.rounds_seen.append(simulation.round_number)


class Stopper(Recorder):
    """Requests a stop on its second step."""

    def step(self, simulation: Simulation) -> None:
        super().step(simulation)
        if len(self.rounds_seen) == 2:
            simulation.request_stop("done")


class TestSimulation:
    def test_participants_step_in_registration_order(self):
        simulation = Simulation(seed=0)
        order = []

        class Ordered(Recorder):
            def step(self, sim):
                order.append(self.name)

        simulation.add_participants([Ordered("first"), Ordered("second"), Ordered("third")])
        simulation.step_round()
        assert order == ["first", "second", "third"]

    def test_run_for_fixed_rounds(self):
        simulation = Simulation(seed=0)
        recorder = Recorder("r")
        simulation.add_participant(recorder)
        report = simulation.run(rounds=4)
        assert report.rounds_executed == 4
        assert recorder.rounds_seen == [0, 1, 2, 3]
        assert report.stop_reason == "round budget exhausted"

    def test_stop_requested_by_participant(self):
        simulation = Simulation(seed=0)
        stopper = Stopper("s")
        simulation.add_participant(stopper)
        report = simulation.run(rounds=10)
        assert report.rounds_executed == 2
        assert report.stop_reason == "done"

    def test_stop_when_condition(self):
        simulation = Simulation(seed=0)
        recorder = Recorder("r")
        simulation.add_participant(recorder)
        report = simulation.run(stop_when=lambda: len(recorder.rounds_seen) >= 3)
        assert report.rounds_executed == 3
        assert report.stop_reason == "stop condition satisfied"

    def test_duplicate_participant_rejected(self):
        simulation = Simulation(seed=0)
        simulation.add_participant(Recorder("x"))
        with pytest.raises(SimulationError):
            simulation.add_participant(Recorder("x"))

    def test_step_without_participants_rejected(self):
        with pytest.raises(SimulationError):
            Simulation(seed=0).step_round()

    def test_finished_simulation_cannot_be_stepped(self):
        simulation = Simulation(seed=0)
        simulation.add_participant(Recorder("r"))
        simulation.run(rounds=1)
        with pytest.raises(SimulationError):
            simulation.step_round()

    def test_max_rounds_bound(self):
        simulation = Simulation(seed=0, max_rounds=3)
        simulation.add_participant(Recorder("r"))
        report = simulation.run()
        assert report.rounds_executed == 3

    def test_participants_registered_on_bus(self):
        simulation = Simulation(seed=0)
        simulation.add_participant(Recorder("agent_a"))
        assert simulation.bus.is_registered("agent_a")

    def test_report_contents(self):
        simulation = Simulation(seed=0)
        simulation.add_participant(Recorder("a"))
        simulation.add_participant(Recorder("b"))
        report = simulation.run(rounds=2)
        data = report.as_dict()
        assert data["participants"] == ["a", "b"]
        assert data["rounds_executed"] == 2

    def test_invalid_round_budget(self):
        simulation = Simulation(seed=0)
        simulation.add_participant(Recorder("a"))
        with pytest.raises(ValueError):
            simulation.run(rounds=0)

    def test_invalid_max_rounds(self):
        with pytest.raises(ValueError):
            Simulation(max_rounds=0)

    def test_participant_lookup(self):
        simulation = Simulation(seed=0)
        recorder = Recorder("a")
        simulation.add_participant(recorder)
        assert simulation.participant("a") is recorder
        with pytest.raises(SimulationError):
            simulation.participant("ghost")
