"""Tests for cut-down allocation across Resource Consumer Agents."""

from __future__ import annotations

import pytest

from repro.agents.allocation import AllocationPolicy, CutdownAllocator
from repro.agents.resource_consumer_agent import ResourceConsumerAgent
from repro.grid.appliances import standard_appliance_library
from repro.grid.household import Household, HouseholdProfile
from repro.grid.weather import WeatherCondition, WeatherSample
from repro.runtime.clock import TimeInterval


@pytest.fixture
def consumers():
    library = standard_appliance_library()
    profile = HouseholdProfile(
        household_id="h_alloc",
        size=3,
        ownership={
            "electric_space_heating": 1.0,
            "hot_water_boiler": 1.0,
            "washing_machine": 1.0,
            "fridge_freezer": 1.0,
        },
        comfort_weight=1.0,
        flexibility_scale=1.0,
    )
    household = Household(profile, library)
    weather = WeatherSample(-10.0, WeatherCondition.COLD)
    return [
        ResourceConsumerAgent(household, library.get(name), 1.0, "customer_agent_h_alloc", weather)
        for name in profile.ownership
    ]


@pytest.fixture
def interval():
    return TimeInterval.from_hours(17, 20)


class TestGreedyAllocation:
    def test_feasible_target_is_met(self, consumers, interval):
        allocator = CutdownAllocator(AllocationPolicy.GREEDY_BY_FLEXIBILITY)
        result = allocator.allocate(consumers, interval, committed_cutdown=0.2)
        assert result.feasible
        assert result.total_curtailed_kwh == pytest.approx(result.target_kwh, rel=1e-6)

    def test_most_flexible_devices_cut_first(self, consumers, interval):
        allocator = CutdownAllocator(AllocationPolicy.GREEDY_BY_FLEXIBILITY)
        result = allocator.allocate(consumers, interval, committed_cutdown=0.1)
        by_appliance = {a.appliance: a for a in result.allocations}
        # The washing machine (flexibility 0.9) is curtailed before the
        # fridge (flexibility 0.2): if anything was cut at all, the most
        # flexible device carries a positive share.
        if result.target_kwh > 0:
            assert by_appliance["washing_machine"].curtailed_kwh > 0
        for allocation in result.allocations:
            assert allocation.curtailed_kwh >= 0
            assert allocation.cutdown_fraction <= 1.0 + 1e-9

    def test_infeasible_target_reports_shortfall(self, consumers, interval):
        allocator = CutdownAllocator(AllocationPolicy.GREEDY_BY_FLEXIBILITY)
        result = allocator.allocate(consumers, interval, committed_cutdown=1.0)
        assert not result.feasible
        assert result.shortfall_kwh > 0
        # Every device is curtailed up to (at most) its saveable energy.
        for allocation, consumer in zip(
            sorted(result.allocations, key=lambda a: a.device),
            sorted(consumers, key=lambda c: c.name),
        ):
            assert allocation.curtailed_kwh <= consumer.saveable_energy(interval) + 1e-9

    def test_zero_cutdown_curtails_nothing(self, consumers, interval):
        result = CutdownAllocator().allocate(consumers, interval, committed_cutdown=0.0)
        assert result.total_curtailed_kwh == 0.0
        assert result.feasible
        assert all(value == 0.0 for value in result.instructions().values())

    def test_invalid_cutdown_rejected(self, consumers, interval):
        with pytest.raises(ValueError):
            CutdownAllocator().allocate(consumers, interval, committed_cutdown=1.5)


class TestProportionalAllocation:
    def test_shares_proportional_to_saveable_energy(self, consumers, interval):
        allocator = CutdownAllocator(AllocationPolicy.PROPORTIONAL)
        result = allocator.allocate(consumers, interval, committed_cutdown=0.15)
        saveable = {c.name: c.saveable_energy(interval) for c in consumers}
        positive = [a for a in result.allocations if saveable[a.device] > 0]
        shares = {a.device: a.curtailed_kwh / saveable[a.device] for a in positive}
        assert len(set(round(s, 6) for s in shares.values())) == 1  # same share everywhere

    def test_matches_target_when_feasible(self, consumers, interval):
        allocator = CutdownAllocator(AllocationPolicy.PROPORTIONAL)
        result = allocator.allocate(consumers, interval, committed_cutdown=0.2)
        assert result.total_curtailed_kwh == pytest.approx(result.target_kwh, rel=1e-6)

    def test_instructions_give_fractions_per_device(self, consumers, interval):
        allocator = CutdownAllocator(AllocationPolicy.PROPORTIONAL)
        result = allocator.allocate(consumers, interval, committed_cutdown=0.2)
        instructions = result.instructions()
        assert set(instructions) == {c.name for c in consumers}
        assert all(0.0 <= fraction <= 1.0 for fraction in instructions.values())
