"""Tests for the experiment harness (registry + each experiment module)."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, get_experiment
from repro.experiments.beta_sweep import run_beta_sweep
from repro.experiments.fig1_demand_curve import run_demand_curve
from repro.experiments.fig6_fig7_utility_rounds import PAPER_REFERENCE, run_utility_rounds
from repro.experiments.fig8_fig9_customer_rounds import run_customer_rounds
from repro.experiments.market_comparison import run_market_comparison
from repro.experiments.method_comparison import run_method_comparison
from repro.experiments.protocol_convergence import run_protocol_convergence
from repro.experiments.reward_update_dynamics import run_reward_dynamics
from repro.experiments.scalability import run_scalability


class TestRegistry:
    def test_all_ten_experiments_registered(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 11)}

    def test_lookup(self):
        info = get_experiment("E2")
        assert info.paper_artefact == "Figure 6"
        assert callable(info.runner)
        with pytest.raises(KeyError):
            get_experiment("E99")


class TestFigure1Experiment:
    def test_cold_day_produces_peak(self):
        result = run_demand_curve(num_households=20, seed=0, cold_snap=True)
        summary = result.summary()
        assert summary["has_peak"]
        assert summary["peak_overuse_kw"] > 0
        assert summary["expensive_energy_kwh"] > 0
        assert summary["expensive_cost"] > 0
        assert 16 <= summary["peak_hour"] <= 22  # evening peak
        assert len(result.rows()) == 24
        assert "Figure 1" in result.render()

    def test_mild_day_has_smaller_peak(self):
        cold = run_demand_curve(num_households=20, seed=0, cold_snap=True)
        mild = run_demand_curve(num_households=20, seed=0, cold_snap=False)
        assert mild.curve.peak_demand < cold.curve.peak_demand


class TestFigure6To9Experiments:
    def test_utility_rounds_match_paper(self):
        result = run_utility_rounds()
        comparison = {row["quantity"]: row for row in result.comparison_rows()}
        assert set(comparison) == set(PAPER_REFERENCE)
        # Exact quantities are exact; calibrated ones within 5%.
        assert comparison["initial_overuse"]["relative_error"] == 0.0
        assert comparison["round1_reward_at_0.4"]["relative_error"] == 0.0
        assert comparison["rounds"]["relative_error"] == 0.0
        assert comparison["round3_reward_at_0.4"]["relative_error"] < 0.05
        assert comparison["final_overuse"]["relative_error"] < 0.10
        rows = result.rows()
        assert len(rows) == 3
        assert rows[0]["reward_at_0.4"] == pytest.approx(17.0)
        assert "Figure 6/7" in result.render()

    def test_utility_rounds_reward_table_rows(self):
        result = run_utility_rounds()
        first = result.reward_table_rows(0)
        assert {row["cutdown"] for row in first} == {round(0.1 * i, 1) for i in range(11)}

    def test_customer_rounds_match_paper(self):
        result = run_customer_rounds()
        assert all(row["match"] for row in result.comparison_rows())
        rows = result.rows()
        assert [row["chosen_bid"] for row in rows] == [0.2, 0.4, 0.4]
        assert rows[0]["highest_acceptable"] == 0.2
        outcome = result.outcome_summary()
        assert outcome["awarded"] == 1.0
        assert "customer requirement table" in result.render()


class TestRewardDynamicsExperiment:
    def test_properties_hold_across_sweep(self):
        result = run_reward_dynamics()
        assert result.all_monotone()
        assert result.all_bounded()
        assert result.saturation_speeds_up_with_beta()
        assert len(result.rows()) == 4 * 3 * 2
        assert "E5" in result.render()

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            run_reward_dynamics(rounds=0)


class TestMethodComparisonExperiment:
    def test_compares_all_three_methods(self):
        result = run_method_comparison(num_households=12, seeds=(0,))
        methods = {row["method"] for row in result.rows()}
        assert methods == {"offer", "request_for_bids", "reward_tables"}
        # The offer method is single-round, hence the fastest (Section 3.2.1).
        assert result.fastest_method() == "offer"
        offer = result.method_metric("offer")
        bids = result.method_metric("request_for_bids")
        assert offer.mean_rounds == 1
        assert bids.mean_rounds >= offer.mean_rounds
        with pytest.raises(KeyError):
            result.method_metric("nonexistent")

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_method_comparison(seeds=())


class TestBetaSweepExperiment:
    def test_sweep_shape_and_monotonicity(self):
        result = run_beta_sweep(betas=(0.5, 2.0, 4.0), include_adaptive=True)
        assert len(result.entries) == 4
        assert result.rounds_nonincreasing_in_beta()
        assert result.entry("adaptive").beta is None
        # Sufficiently large betas solve the peak; a very small beta may
        # saturate prematurely (its increments fall below epsilon=1).
        successful = {e.label for e in result.successful_entries()}
        assert {"2.00", "4.00"} <= successful
        assert result.entry("adaptive").result.final_overuse <= 15.0
        with pytest.raises(KeyError):
            result.entry("42")
        with pytest.raises(ValueError):
            run_beta_sweep(betas=())

    def test_lower_beta_needs_more_rounds(self):
        result = run_beta_sweep(betas=(1.0, 4.0), include_adaptive=False)
        slow = result.entry("1.00").result.rounds
        fast = result.entry("4.00").result.rounds
        assert slow >= fast

    def test_tiny_beta_saturates_before_solving_peak(self):
        result = run_beta_sweep(betas=(0.5,), include_adaptive=False)
        entry = result.entry("0.50")
        assert entry.result.termination_reason.value == "reward_saturated"
        assert entry.result.final_overuse > 15.0


class TestMarketComparisonExperiment:
    def test_paper_population_comparison(self):
        result = run_market_comparison(use_paper_scenario=True)
        rows = {row["mechanism"]: row for row in result.rows()}
        assert set(rows) == {"reward_table_negotiation", "equilibrium_market"}
        assert result.both_remove_needed_reduction(tolerance=0.1)
        assert rows["equilibrium_market"]["rounds_or_iterations"] > 0
        assert "E8" in result.render()

    def test_synthetic_population_comparison(self):
        result = run_market_comparison(use_paper_scenario=False, num_households=12, seed=1)
        assert result.needed_reduction > 0
        assert result.negotiation_reduction() > 0


class TestScalabilityExperiment:
    def test_sweep_properties(self):
        result = run_scalability(sizes=(5, 10, 20), seed=0)
        rows = result.rows()
        assert [row["num_households"] for row in rows] == [5, 10, 20]
        assert result.rounds_bounded(maximum=60)
        assert result.messages_scale_linearly(tolerance=1.0)
        assert all(row["wall_seconds"] > 0 for row in rows)
        assert "E9" in result.render()
        with pytest.raises(ValueError):
            run_scalability(sizes=())


class TestProtocolConvergenceExperiment:
    def test_randomised_runs_always_converge(self):
        result = run_protocol_convergence(seeds=(0, 1, 2))
        assert result.all_converged()
        assert result.all_monotone()
        assert result.max_rounds_observed() <= 50
        assert len(result.rows()) == 3
        with pytest.raises(ValueError):
            run_protocol_convergence(seeds=())
