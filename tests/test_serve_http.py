"""HTTP serving layer: endpoints, streaming, persistence, metrics.

Drives a real :class:`~repro.serve.server.NegotiationServer` bound to an
ephemeral port on a background event-loop thread and talks to it with stdlib
``urllib`` clients from worker threads — the same topology as an external
caller, no asyncio test plumbing required.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.api as api
from repro.serve.schemas import ServeRequest, result_payload
from repro.serve.server import ServerThread


def _post(base: str, path: str, body: dict) -> dict:
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data, method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.load(response)


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=60) as response:
        return json.load(response)


def _stream_lines(base: str, session_id: str) -> list[dict]:
    with urllib.request.urlopen(base + f"/stream/{session_id}", timeout=60) as response:
        return [json.loads(line) for line in response.read().decode().splitlines()]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    state_dir = tmp_path_factory.mktemp("serve-state")
    with ServerThread(port=0, state_dir=os.fspath(state_dir), max_wait=0.02) as thread:
        yield thread.server


class TestServingEndpoints:
    def test_submit_status_result_roundtrip(self, server):
        base = server.base_url
        accepted = _post(base, "/submit", {"scenario": {"households": 30, "seed": 1}})
        session_id = accepted["session_id"]
        assert accepted["state"] == "queued"
        result = _get(base, f"/result/{session_id}?wait=1")
        assert result["state"] == "done"
        assert result["result"]["rounds"] > 0
        assert result["result"]["metadata"]["backend"] == "vectorized"
        status = _get(base, f"/status/{session_id}")
        assert status["state"] == "done"
        assert status["rounds_completed"] == result["result"]["rounds"]
        assert "result" not in status

    def test_served_result_bit_identical_to_solo_run(self, server):
        base = server.base_url
        mapping = {"scenario": {"households": 25, "seed": 6}, "config": {"max_simulation_rounds": 150}}
        session_id = _post(base, "/submit", mapping)["session_id"]
        served = _get(base, f"/result/{session_id}?wait=1")["result"]
        request = ServeRequest.from_mapping(mapping)
        solo = api.run(
            request.scenario.build_scenario(), backend="auto", config=request.config
        )
        assert json.dumps(served, sort_keys=True) == json.dumps(
            result_payload(solo), sort_keys=True
        )

    def test_concurrent_submissions_coalesce_and_stream(self, server):
        base = server.base_url
        before = _get(base, "/metrics")["kernel_passes"]

        def submit(seed: int) -> str:
            return _post(
                base, "/submit", {"scenario": {"households": 30, "seed": seed}}
            )["session_id"]

        with ThreadPoolExecutor(3) as pool:
            ids = list(pool.map(submit, [21, 22, 23]))
        streams = [_stream_lines(base, session_id) for session_id in ids]
        for events in streams:
            assert any(event["event"] == "round" for event in events)
            final = events[-1]
            assert final["event"] == "done"
            assert final["state"] == "done"
            assert final["result"]["rounds"] >= 1
        metrics = _get(base, "/metrics")
        # Three concurrent compatible requests ride few passes, not three.
        assert metrics["kernel_passes"] - before <= 2
        assert metrics["batch_occupancy"]["max"] >= 2

    def test_stream_replays_after_completion(self, server):
        base = server.base_url
        session_id = _post(base, "/submit", {"scenario": {"households": 20, "seed": 3}})["session_id"]
        _get(base, f"/result/{session_id}?wait=1")
        events = _stream_lines(base, session_id)  # terminal: pure replay
        assert events[-1]["event"] == "done"
        assert any(event["event"] == "round" for event in events)

    def test_persistence_and_restart_recovery(self, server, tmp_path):
        base = server.base_url
        session_id = _post(base, "/submit", {"scenario": {"households": 20, "seed": 5}})["session_id"]
        payload = _get(base, f"/result/{session_id}?wait=1")["result"]
        path = os.path.join(server.state_dir, f"{session_id}.json")
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as handle:
            persisted = json.load(handle)
        assert persisted["result"] == payload
        # A fresh server over the same state dir serves the old session.
        with ServerThread(port=0, state_dir=server.state_dir) as restarted:
            recovered = _get(restarted.server.base_url, f"/result/{session_id}")
            assert recovered["state"] == "done"
            assert recovered["result"] == payload

    def test_validation_errors_are_400(self, server):
        base = server.base_url
        for body in (
            {"backend": "warp-drive"},
            {"scenario": {"households": -1}},
            {"scenario": {"method": "bribery"}},
            {"config": {"max_simulation_rounds": 0}},
            {"unexpected": True},
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base, "/submit", body)
            assert excinfo.value.code == 400
            assert "error" in json.load(excinfo.value)

    def test_unknown_session_and_endpoint_are_404(self, server):
        base = server.base_url
        for path in ("/status/nope", "/result/nope", "/stream/nope", "/frobnicate"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base, path)
            assert excinfo.value.code == 404

    def test_metrics_shape(self, server):
        metrics = _get(server.base_url, "/metrics")
        for key in (
            "requests_submitted", "requests_completed", "requests_failed",
            "queue_depth", "kernel_passes", "solo_passes",
            "batch_occupancy", "latency_seconds",
        ):
            assert key in metrics
        assert metrics["requests_completed"] >= 1
        assert metrics["latency_seconds"]["p95"] >= metrics["latency_seconds"]["p50"] >= 0.0
