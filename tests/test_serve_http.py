"""HTTP serving layer: endpoints, streaming, persistence, metrics.

Drives a real :class:`~repro.serve.server.NegotiationServer` bound to an
ephemeral port on a background event-loop thread and talks to it with stdlib
``urllib`` clients from worker threads — the same topology as an external
caller, no asyncio test plumbing required.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.api as api
from repro.serve.schemas import ServeRequest, result_payload
from repro.serve.server import ServerThread


def _post(base: str, path: str, body: dict) -> dict:
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data, method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.load(response)


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=60) as response:
        return json.load(response)


def _stream_lines(base: str, session_id: str) -> list[dict]:
    with urllib.request.urlopen(base + f"/stream/{session_id}", timeout=60) as response:
        return [json.loads(line) for line in response.read().decode().splitlines()]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    state_dir = tmp_path_factory.mktemp("serve-state")
    with ServerThread(port=0, state_dir=os.fspath(state_dir), max_wait=0.02) as thread:
        yield thread.server


class TestServingEndpoints:
    def test_submit_status_result_roundtrip(self, server):
        base = server.base_url
        accepted = _post(base, "/submit", {"scenario": {"households": 30, "seed": 1}})
        session_id = accepted["session_id"]
        assert accepted["state"] == "queued"
        result = _get(base, f"/result/{session_id}?wait=1")
        assert result["state"] == "done"
        assert result["result"]["rounds"] > 0
        assert result["result"]["metadata"]["backend"] == "vectorized"
        status = _get(base, f"/status/{session_id}")
        assert status["state"] == "done"
        assert status["rounds_completed"] == result["result"]["rounds"]
        assert "result" not in status

    def test_served_result_bit_identical_to_solo_run(self, server):
        base = server.base_url
        mapping = {"scenario": {"households": 25, "seed": 6}, "config": {"max_simulation_rounds": 150}}
        session_id = _post(base, "/submit", mapping)["session_id"]
        served = _get(base, f"/result/{session_id}?wait=1")["result"]
        request = ServeRequest.from_mapping(mapping)
        solo = api.run(
            request.scenario.build_scenario(), backend="auto", config=request.config
        )
        assert json.dumps(served, sort_keys=True) == json.dumps(
            result_payload(solo), sort_keys=True
        )

    def test_concurrent_submissions_coalesce_and_stream(self, server):
        base = server.base_url
        before = _get(base, "/metrics")["kernel_passes"]

        def submit(seed: int) -> str:
            return _post(
                base, "/submit", {"scenario": {"households": 30, "seed": seed}}
            )["session_id"]

        with ThreadPoolExecutor(3) as pool:
            ids = list(pool.map(submit, [21, 22, 23]))
        streams = [_stream_lines(base, session_id) for session_id in ids]
        for events in streams:
            assert any(event["event"] == "round" for event in events)
            final = events[-1]
            assert final["event"] == "done"
            assert final["state"] == "done"
            assert final["result"]["rounds"] >= 1
        metrics = _get(base, "/metrics")
        # Three concurrent compatible requests ride few passes, not three.
        assert metrics["kernel_passes"] - before <= 2
        assert metrics["batch_occupancy"]["max"] >= 2

    def test_stream_replays_after_completion(self, server):
        base = server.base_url
        session_id = _post(base, "/submit", {"scenario": {"households": 20, "seed": 3}})["session_id"]
        _get(base, f"/result/{session_id}?wait=1")
        events = _stream_lines(base, session_id)  # terminal: pure replay
        assert events[-1]["event"] == "done"
        assert any(event["event"] == "round" for event in events)

    def test_persistence_and_restart_recovery(self, server, tmp_path):
        base = server.base_url
        session_id = _post(base, "/submit", {"scenario": {"households": 20, "seed": 5}})["session_id"]
        payload = _get(base, f"/result/{session_id}?wait=1")["result"]
        path = os.path.join(server.state_dir, f"{session_id}.json")
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as handle:
            persisted = json.load(handle)
        assert persisted["result"] == payload
        # A fresh server over the same state dir serves the old session.
        with ServerThread(port=0, state_dir=server.state_dir) as restarted:
            recovered = _get(restarted.server.base_url, f"/result/{session_id}")
            assert recovered["state"] == "done"
            assert recovered["result"] == payload

    def test_validation_errors_are_400(self, server):
        base = server.base_url
        for body in (
            {"backend": "warp-drive"},
            {"scenario": {"households": -1}},
            {"scenario": {"method": "bribery"}},
            {"config": {"max_simulation_rounds": 0}},
            {"unexpected": True},
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base, "/submit", body)
            assert excinfo.value.code == 400
            assert "error" in json.load(excinfo.value)

    def test_unknown_session_and_endpoint_are_404(self, server):
        base = server.base_url
        for path in ("/status/nope", "/result/nope", "/stream/nope", "/frobnicate"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base, path)
            assert excinfo.value.code == 404

    def test_metrics_shape(self, server):
        metrics = _get(server.base_url, "/metrics")
        for key in (
            "requests_submitted", "requests_completed", "requests_failed",
            "requests_admitted", "requests_shed", "shed_reasons",
            "deadline_exceeded_total", "watchdog_failures",
            "queue_depth_underflows", "queue_wait_seconds", "admission",
            "queue_depth", "kernel_passes", "solo_passes",
            "batch_occupancy", "latency_seconds",
        ):
            assert key in metrics
        assert metrics["requests_completed"] >= 1
        assert metrics["latency_seconds"]["p95"] >= metrics["latency_seconds"]["p50"] >= 0.0


def _solo_payload(mapping: dict) -> dict:
    request = ServeRequest.from_mapping(mapping)
    result = api.run(
        request.scenario.build_scenario(), backend=request.backend,
        config=request.config,
    )
    return result_payload(result)


class TestOverloadBehaviour:
    def test_queue_full_submissions_shed_with_429_and_retry_after(self):
        # max_wait keeps the first submission buffered (in flight), so the
        # one-slot admission queue is full for the second.
        with ServerThread(port=0, max_queue=1, max_wait=5.0) as thread:
            base = thread.server.base_url
            first = _post(base, "/submit", {"scenario": {"households": 15, "seed": 1}})
            assert first["state"] == "queued"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base, "/submit", {"scenario": {"households": 15, "seed": 2}})
            assert excinfo.value.code == 429
            assert int(excinfo.value.headers["Retry-After"]) >= 1
            body = json.load(excinfo.value)
            assert body["reason"] == "queue_full"
            assert body["retry_after_seconds"] > 0
            metrics = _get(base, "/metrics")
            assert metrics["requests_shed"] == 1
            assert metrics["shed_reasons"] == {"queue_full": 1}
            assert metrics["requests_admitted"] == 1
            assert metrics["admission"]["max_queue"] == 1

    def test_rate_limited_submissions_shed_with_reason(self):
        with ServerThread(port=0, rate_limit=0.001, max_wait=0.02) as thread:
            base = thread.server.base_url
            # The token bucket starts with one burst token; the second
            # submission inside the same millisecond is rate-limited.
            _post(base, "/submit", {"scenario": {"households": 15, "seed": 1}})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base, "/submit", {"scenario": {"households": 15, "seed": 2}})
            assert excinfo.value.code == 429
            assert json.load(excinfo.value)["reason"] == "rate_limited"

    def test_expired_deadline_terminates_with_deadline_exceeded(self):
        # A 1 ms budget dies inside the 200 ms coalescing window: the member
        # is failed fast at flush without ever entering the arena.
        with ServerThread(port=0, max_wait=0.2) as thread:
            base = thread.server.base_url
            body = {"scenario": {"households": 15, "seed": 4}, "deadline_ms": 1}
            session_id = _post(base, "/submit", body)["session_id"]
            record = _get(base, f"/result/{session_id}?wait=1")
            assert record["state"] == "expired"
            assert "deadline_exceeded" in record["error"]
            metrics = _get(base, "/metrics")
            assert metrics["deadline_exceeded_total"] == 1

    def test_default_deadline_applies_to_requests_without_one(self):
        with ServerThread(port=0, max_wait=0.2, default_deadline_ms=1) as thread:
            base = thread.server.base_url
            session_id = _post(
                base, "/submit", {"scenario": {"households": 15, "seed": 4}}
            )["session_id"]
            record = _get(base, f"/result/{session_id}?wait=1")
            assert record["state"] == "expired"
            assert "deadline_exceeded" in record["error"]

    def test_result_wait_timeout_returns_504_with_status(self):
        # The submission sits in the coalescing buffer well past the caller's
        # wait budget, so the wait expires while the session is still queued.
        with ServerThread(port=0, max_wait=5.0) as thread:
            base = thread.server.base_url
            session_id = _post(
                base, "/submit", {"scenario": {"households": 15, "seed": 7}}
            )["session_id"]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base, f"/result/{session_id}?wait=1&timeout=0.2")
            assert excinfo.value.code == 504
            body = json.load(excinfo.value)
            assert "timed out" in body["error"]
            assert body["status"]["state"] in ("queued", "running")

    def test_result_wait_timeout_must_be_a_number(self):
        with ServerThread(port=0, max_wait=0.02) as thread:
            base = thread.server.base_url
            session_id = _post(
                base, "/submit", {"scenario": {"households": 15, "seed": 7}}
            )["session_id"]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base, f"/result/{session_id}?wait=1&timeout=soon")
            assert excinfo.value.code == 400


class TestJournalRecovery:
    def test_killed_server_replays_in_flight_session_bit_identically(self, tmp_path):
        # Kill the server between the 202 and completion: the wide coalescing
        # window keeps the submission buffered in the batcher, and kill()
        # (unlike a graceful stop) never flushes that buffer, so the accepted
        # request exists only as a journal line.
        state_dir = os.fspath(tmp_path)
        mapping = {"scenario": {"households": 20, "seed": 9}}
        thread = ServerThread(port=0, state_dir=state_dir, max_wait=30.0)
        thread.start()
        try:
            base = thread.server.base_url
            session_id = _post(base, "/submit", mapping)["session_id"]
            journal = os.path.join(state_dir, "journal.ndjson")
            with open(journal, encoding="utf-8") as handle:
                ops = [json.loads(line) for line in handle if line.strip()]
            assert [op["op"] for op in ops] == ["accept"]
            assert ops[0]["session_id"] == session_id
        finally:
            thread.kill()
        assert not os.path.exists(os.path.join(state_dir, f"{session_id}.json"))

        # Restart over the same state dir: the journaled session re-runs to
        # a result bit-identical to a solo run of the same request.
        with ServerThread(port=0, state_dir=state_dir, max_wait=0.02) as restarted:
            record = _get(
                restarted.server.base_url, f"/result/{session_id}?wait=1"
            )
            assert record["state"] == "done"
            assert record["recovered"] is True
            assert json.dumps(record["result"], sort_keys=True) == json.dumps(
                _solo_payload(mapping), sort_keys=True
            )

    def test_finished_sessions_are_not_replayed(self, tmp_path):
        state_dir = os.fspath(tmp_path)
        mapping = {"scenario": {"households": 20, "seed": 11}}
        with ServerThread(port=0, state_dir=state_dir, max_wait=0.02) as thread:
            base = thread.server.base_url
            session_id = _post(base, "/submit", mapping)["session_id"]
            payload = _get(base, f"/result/{session_id}?wait=1")["result"]
        with ServerThread(port=0, state_dir=state_dir, max_wait=0.02) as restarted:
            record = _get(restarted.server.base_url, f"/result/{session_id}")
            assert record["state"] == "done"
            assert record.get("recovered") is None
            assert record["result"] == payload
            metrics = _get(restarted.server.base_url, "/metrics")
            assert metrics["requests_submitted"] == 0


class TestServerThreadStartup:
    def test_startup_failure_is_reraised_verbatim(self):
        import socket

        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(OSError) as excinfo:
                ServerThread(port=port).start()
            # The worker's own exception, not a generic startup timeout.
            assert excinfo.value.errno is not None
        finally:
            blocker.close()
