"""Tests for consumption prediction, production and tariffs."""

from __future__ import annotations

import pytest

from repro.grid.demand import DemandModel
from repro.grid.household import Household
from repro.grid.load_profile import LoadProfile
from repro.grid.prediction import ConsumptionPredictor, PredictionModel
from repro.grid.pricing import Tariff, TariffSchedule
from repro.grid.production import ProductionModel, ProductionSegment
from repro.grid.weather import WeatherCondition, WeatherSample
from repro.runtime.clock import TimeInterval
from repro.runtime.rng import RandomSource


def build_demand_model(num: int = 6, seed: int = 0) -> DemandModel:
    random = RandomSource(seed, "prediction_test")
    households = [Household.generate(f"h{i}", random.spawn(f"h{i}")) for i in range(num)]
    return DemandModel(households, random.spawn("noise"), behavioural_noise=0.05)


class TestConsumptionPredictor:
    def test_prediction_requires_history(self):
        with pytest.raises(ValueError):
            ConsumptionPredictor().predict()

    def test_mean_prediction_tracks_history(self, cold_day):
        model = build_demand_model()
        predictor = ConsumptionPredictor(PredictionModel.MEAN)
        for __ in range(5):
            predictor.observe(model.realise(cold_day))
        prediction = predictor.predict()
        actual = model.realise(cold_day)
        mape = predictor.mean_absolute_percentage_error(prediction, actual)
        assert predictor.history_length == 5
        assert mape < 0.25

    def test_exponential_smoothing_weights_recent_days_more(self, cold_day):
        model = build_demand_model()
        mild = WeatherSample(10.0, WeatherCondition.MILD)
        predictor = ConsumptionPredictor(PredictionModel.EXPONENTIAL_SMOOTHING, smoothing_factor=0.7)
        # Old mild days followed by recent cold days.
        for __ in range(3):
            predictor.observe(model.realise(mild))
        for __ in range(3):
            predictor.observe(model.realise(cold_day))
        smoothed = predictor.predict().aggregate.total_energy()
        flat_predictor = ConsumptionPredictor(PredictionModel.MEAN)
        for __ in range(3):
            flat_predictor.observe(model.realise(mild))
        for __ in range(3):
            flat_predictor.observe(model.realise(cold_day))
        flat = flat_predictor.predict().aggregate.total_energy()
        assert smoothed > flat

    def test_weather_adjusted_prediction_scales_with_forecast(self, cold_day):
        model = build_demand_model()
        mild = WeatherSample(10.0, WeatherCondition.MILD)
        predictor = ConsumptionPredictor(PredictionModel.WEATHER_ADJUSTED)
        for __ in range(4):
            predictor.observe(model.realise(mild))
        cold_forecast = predictor.predict(cold_day).aggregate.total_energy()
        mild_forecast = predictor.predict(mild).aggregate.total_energy()
        assert cold_forecast > mild_forecast

    def test_household_coverage_and_interval_view(self, cold_day):
        model = build_demand_model(4)
        predictor = ConsumptionPredictor()
        predictor.observe(model.realise(cold_day))
        prediction = predictor.predict()
        interval = TimeInterval.from_hours(17, 20)
        per_household = prediction.household_prediction_in(interval)
        assert len(per_household) == 4
        assert prediction.aggregate_in(interval) == pytest.approx(
            sum(per_household.values()), rel=1e-6
        )

    def test_mismatched_households_rejected(self, cold_day):
        predictor = ConsumptionPredictor()
        predictor.observe(build_demand_model(3, seed=0).realise(cold_day))
        with pytest.raises(ValueError):
            predictor.observe(build_demand_model(4, seed=1).realise(cold_day))

    def test_invalid_smoothing_factor(self):
        with pytest.raises(ValueError):
            ConsumptionPredictor(smoothing_factor=0.0)

    def test_error_metrics_shape_mismatch(self, cold_day):
        predictor = ConsumptionPredictor()
        model = build_demand_model(3)
        predictor.observe(model.realise(cold_day))
        prediction = predictor.predict()
        other = build_demand_model(3, seed=9).realise(cold_day)
        assert predictor.mean_absolute_error(prediction, other) >= 0


class TestProduction:
    def test_two_tier_structure(self):
        production = ProductionModel.two_tier(100.0, 50.0, 0.25, 0.75)
        assert production.normal_capacity_kw == 100.0
        assert production.total_capacity_kw == 150.0
        assert production.normal_cost == 0.25
        assert production.peak_cost == 0.75

    def test_dispatch_merit_order(self):
        production = ProductionModel.two_tier(100.0, 50.0)
        allocation = production.dispatch(120.0)
        assert allocation[0][1] == 100.0
        assert allocation[1][1] == 20.0
        assert production.unserved(120.0) == 0.0
        assert production.unserved(200.0) == 50.0

    def test_marginal_cost(self):
        production = ProductionModel.two_tier(100.0, 50.0, 0.25, 0.75)
        assert production.marginal_cost_at(50.0) == 0.25
        assert production.marginal_cost_at(100.0) == 0.25
        assert production.marginal_cost_at(101.0) == 0.75
        assert production.marginal_cost_at(1000.0) == 0.75

    def test_cost_of_profile_and_expensive_share(self):
        production = ProductionModel.two_tier(10.0, 10.0, 0.2, 1.0)
        flat = LoadProfile.constant(5.0)
        peaky = LoadProfile.from_sequence([5.0] * 23 + [15.0])
        assert production.cost_of_profile(flat) == pytest.approx(5.0 * 24 * 0.2)
        expensive = production.expensive_cost_of_profile(peaky)
        assert expensive == pytest.approx(5.0 * 1.0)
        assert production.expensive_cost_of_profile(flat) == pytest.approx(0.0)

    def test_savings_between_profiles(self):
        production = ProductionModel.two_tier(10.0, 10.0, 0.2, 1.0)
        before = LoadProfile.from_sequence([12.0] * 24)
        after = LoadProfile.from_sequence([10.0] * 24)
        assert production.savings_between(before, after) > 0

    def test_segment_order_enforced(self):
        with pytest.raises(ValueError):
            ProductionModel(
                [ProductionSegment("peak", 10, 1.0), ProductionSegment("base", 10, 0.2)]
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            ProductionModel([])
        with pytest.raises(ValueError):
            ProductionSegment("bad", 0.0, 0.2)
        with pytest.raises(ValueError):
            ProductionModel.two_tier(10, 10, normal_cost=0.8, peak_cost=0.2)
        production = ProductionModel.two_tier(10, 10)
        with pytest.raises(ValueError):
            production.dispatch(-1.0)
        with pytest.raises(ValueError):
            production.marginal_cost_at(-1.0)
        with pytest.raises(ValueError):
            production.cost_of_slot(5.0, -1.0)


class TestTariffs:
    def test_standard_tariff_ordering(self):
        tariff = Tariff.standard()
        assert tariff.lower_price < tariff.normal_price < tariff.higher_price
        assert tariff.discount > 0
        assert tariff.penalty > 0

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            Tariff(0.4, 0.3, 0.5)
        with pytest.raises(ValueError):
            Tariff(-0.1, 0.3, 0.5)

    def test_cost_without_deal(self):
        schedule = TariffSchedule(Tariff.standard())
        profile = LoadProfile.constant(2.0)
        assert schedule.cost_without_deal(profile) == pytest.approx(48.0 * 0.30)

    def test_offer_deal_cheaper_when_within_allowance(self):
        interval = TimeInterval.from_hours(17, 20)
        schedule = TariffSchedule(Tariff.standard(), interval)
        profile = LoadProfile.constant(2.0)
        peak_energy = profile.energy_in(interval)
        with_deal = schedule.cost_with_offer_deal(profile, allowance_kwh=peak_energy)
        assert with_deal < schedule.cost_without_deal(profile)
        assert schedule.offer_deal_gain(profile, peak_energy) > 0

    def test_offer_deal_penalises_excess(self):
        interval = TimeInterval.from_hours(17, 20)
        schedule = TariffSchedule(Tariff.standard(), interval)
        profile = LoadProfile.constant(4.0)
        tight_allowance = 1.0  # far below actual peak consumption
        cost = schedule.cost_with_offer_deal(profile, tight_allowance)
        assert cost > schedule.cost_without_deal(profile) - 1.0  # penalty kicks in

    def test_no_interval_means_normal_billing(self):
        schedule = TariffSchedule(Tariff.standard(), None)
        profile = LoadProfile.constant(1.0)
        assert schedule.cost_with_offer_deal(profile, 10.0) == schedule.cost_without_deal(profile)

    def test_negative_allowance_rejected(self):
        schedule = TariffSchedule(Tariff.standard(), TimeInterval.from_hours(17, 20))
        with pytest.raises(ValueError):
            schedule.cost_with_offer_deal(LoadProfile.constant(1.0), -1.0)
