"""Tests for the columnar household fleet and its bit-identity contract.

Every fleet kernel must reproduce the scalar per-household path *bit for
bit* — not approximately — because the planner's fleet/scalar equivalence
guarantee (and hence campaign determinism across planning modes) rests on it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.appliances import (
    Appliance,
    ApplianceCategory,
    ApplianceLibrary,
    standard_appliance_library,
)
from repro.grid.demand import DemandModel
from repro.grid.fleet import (
    BucketedFleet,
    FleetIncompatibleError,
    HouseholdFleet,
    pack_fleet,
)
from repro.grid.household import Household, HouseholdProfile
from repro.grid.prediction import ConsumptionPredictor, PredictionModel
from repro.grid.weather import WeatherCondition, WeatherSample
from repro.runtime.clock import TimeInterval
from repro.runtime.rng import RandomSource


@pytest.fixture(scope="module")
def households():
    random = RandomSource(11, "fleet_test")
    return [Household.generate(f"h{i:03d}", random.spawn(f"h{i}")) for i in range(60)]


@pytest.fixture(scope="module")
def fleet(households):
    return HouseholdFleet(households)


@pytest.fixture(params=[None, "cold"])
def weather(request):
    if request.param is None:
        return None
    return WeatherSample(temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD)


@pytest.fixture
def interval():
    return TimeInterval.from_hours(16, 21)


class TestFleetKernels:
    def test_demand_profiles_bit_identical(self, fleet, households, weather):
        matrix = fleet.demand_profiles(weather)
        assert matrix.shape == (len(households), 24)
        for row, household in zip(matrix, households):
            assert np.array_equal(row, household.demand_profile(weather).as_array())

    def test_energy_in_bit_identical(self, fleet, households, weather, interval):
        energies = fleet.energy_in(interval, weather)
        for energy, household in zip(energies, households):
            assert energy == household.demand_profile(weather).energy_in(interval)

    def test_average_in_bit_identical(self, fleet, households, weather, interval):
        averages = fleet.average_in(interval, weather)
        for average, household in zip(averages, households):
            assert average == household.demand_profile(weather).average_in(interval)

    def test_saveable_energy_bit_identical(self, fleet, households, weather, interval):
        saveable = fleet.saveable_energy(interval, weather)
        for energy, household in zip(saveable, households):
            assert energy == household.saveable_energy(interval, weather)

    def test_max_cutdown_fractions_bit_identical(self, fleet, households, weather, interval):
        fractions = fleet.max_cutdown_fractions(interval, weather)
        for fraction, household in zip(fractions, households):
            assert fraction == household.max_cutdown_fraction(interval, weather)

    def test_max_cutdown_fractions_accepts_precomputed_energies(self, fleet, weather, interval):
        energies = fleet.energy_in(interval, weather)
        with_energies = fleet.max_cutdown_fractions(
            interval, weather, demand_energies=energies
        )
        assert np.array_equal(with_energies, fleet.max_cutdown_fractions(interval, weather))

    def test_aggregate_demand_matches_scalar_aggregation(self, fleet, households, weather):
        from repro.grid.load_profile import LoadProfile

        expected = LoadProfile.aggregate(
            household.demand_profile(weather) for household in households
        )
        assert fleet.aggregate_demand(weather).values == expected.values

    def test_demand_matrix_is_cached_and_read_only(self, fleet):
        first = fleet.demand_profiles(None)
        assert fleet.demand_profiles(None) is first
        with pytest.raises(ValueError):
            first[0, 0] = 1.0


class TestFleetCompatibility:
    def test_requires_households(self):
        # A plain ValueError, *not* FleetIncompatibleError: callers treat the
        # latter as a fall-back-to-scalar signal, and an empty population is
        # misuse that must fail loudly at the boundary instead.
        with pytest.raises(ValueError) as excinfo:
            HouseholdFleet([])
        assert not isinstance(excinfo.value, FleetIncompatibleError)
        with pytest.raises(ValueError) as excinfo:
            BucketedFleet([])
        assert not isinstance(excinfo.value, FleetIncompatibleError)
        with pytest.raises(ValueError) as excinfo:
            pack_fleet([])
        assert not isinstance(excinfo.value, FleetIncompatibleError)

    def test_rejects_mixed_resolutions(self, households):
        library = standard_appliance_library()
        odd = Household.generate("odd", RandomSource(1, "odd"), library, slots_per_day=48)
        with pytest.raises(FleetIncompatibleError):
            HouseholdFleet([households[0], odd])

    def test_rejects_out_of_library_order_ownership(self):
        library = standard_appliance_library()
        names = library.names
        profile = HouseholdProfile(
            household_id="reversed",
            size=2,
            ownership={names[3]: 1.0, names[0]: 1.0},
            comfort_weight=1.0,
            flexibility_scale=0.8,
        )
        with pytest.raises(FleetIncompatibleError):
            HouseholdFleet([Household(profile, library)])

    def test_rejects_different_libraries(self, households):
        other = ApplianceLibrary([
            Appliance(
                name="only_heating",
                category=ApplianceCategory.SPACE_HEATING,
                rated_power_kw=5.0,
                daily_energy_kwh=20.0,
                usage_pattern=tuple(1.0 for __ in range(24)),
                flexibility=0.5,
            )
        ])
        profile = HouseholdProfile(
            household_id="alien", size=2, ownership={"only_heating": 1.0},
            comfort_weight=1.0, flexibility_scale=0.8,
        )
        with pytest.raises(FleetIncompatibleError):
            HouseholdFleet([households[0], Household(profile, other)])

    def test_equal_value_library_is_accepted(self, households):
        clone = standard_appliance_library()
        profile = HouseholdProfile(
            household_id="clone", size=2,
            ownership={name: 1.0 for name in clone.names},
            comfort_weight=1.0, flexibility_scale=0.8,
        )
        fleet = HouseholdFleet([households[0], Household(profile, clone)])
        assert len(fleet) == 2


class TestColumnarDemandModel:
    def test_realise_matches_scalar_path(self, households):
        cold = WeatherSample(temperature_c=-15.0, condition=WeatherCondition.COLD)
        columnar = DemandModel(households, RandomSource(5, "d")).realise(cold)
        scalar = DemandModel(households, RandomSource(5, "d"))._realise_scalar(cold)
        assert columnar.household_ids == scalar.household_ids
        for household_id in columnar.household_ids:
            assert columnar.household(household_id).values == scalar.household(household_id).values
        assert columnar.aggregate.values == scalar.aggregate.values

    def test_population_demand_matrix_round_trip(self, households):
        demand = DemandModel(households, RandomSource(6, "d")).realise(None)
        matrix = demand.matrix()
        profiles = demand.household_profiles
        for row, household_id in zip(matrix, demand.household_ids):
            assert tuple(float(v) for v in row) == profiles[household_id].values


class TestColumnarPredictor:
    @pytest.mark.parametrize("model", list(PredictionModel))
    def test_predict_columnar_matches_object_view(self, households, model):
        cold = WeatherSample(temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD)
        demand_model = DemandModel(households, RandomSource(8, "d"))
        predictor = ConsumptionPredictor(model)
        predictor.observe_many([demand_model.realise(cold) for __ in range(4)])
        columnar = predictor.predict_columnar(cold)
        objects = predictor.predict(cold)
        assert list(columnar.household_ids) == list(objects.per_household)
        for household_id, row in zip(columnar.household_ids, columnar.matrix):
            assert tuple(float(v) for v in row) == objects.per_household[household_id].values
        assert columnar.aggregate.values == objects.aggregate.values
        interval = TimeInterval.from_hours(17, 20)
        vector = columnar.average_in(interval)
        mapping = objects.household_prediction_in(interval)
        for household_id, value in zip(columnar.household_ids, vector):
            assert value == mapping[household_id]

    def test_observe_realigns_shuffled_household_order(self, households):
        day_one = DemandModel(households, RandomSource(9, "d")).realise(None)
        profiles = day_one.household_profiles
        shuffled = dict(reversed(list(profiles.items())))
        predictor = ConsumptionPredictor()
        predictor.observe(day_one)
        from repro.grid.demand import PopulationDemand

        predictor.observe(PopulationDemand(shuffled))
        prediction = predictor.predict()
        # Both days carry identical profiles per id, so the mean equals day one.
        for household_id, profile in profiles.items():
            assert prediction.per_household[household_id].values == profile.values

    def test_observe_rejects_different_households(self, households):
        predictor = ConsumptionPredictor()
        predictor.observe(DemandModel(households[:5], RandomSource(1, "a")).realise(None))
        with pytest.raises(ValueError):
            predictor.observe(DemandModel(households[5:10], RandomSource(2, "b")).realise(None))

    def test_history_buffer_grows_incrementally(self, households):
        demand_model = DemandModel(households[:3], RandomSource(3, "d"))
        predictor = ConsumptionPredictor()
        for day in range(20):
            predictor.observe(demand_model.realise(None))
            assert predictor.history_length == day + 1
        assert predictor._buffer.shape[0] >= 20
        predictor.predict()


def _alt_library() -> ApplianceLibrary:
    """A second, value-distinct appliance catalogue for mixed-library tests."""
    flat = tuple(1.0 for __ in range(24))
    return ApplianceLibrary(
        [
            Appliance(
                name="alt_heating",
                category=ApplianceCategory.SPACE_HEATING,
                rated_power_kw=6.0,
                daily_energy_kwh=18.0,
                usage_pattern=flat,
                flexibility=0.6,
            ),
            Appliance(
                name="alt_lighting",
                category=ApplianceCategory.LIGHTING,
                rated_power_kw=0.4,
                daily_energy_kwh=2.0,
                usage_pattern=flat,
                flexibility=0.3,
                per_person=True,
            ),
        ]
    )


def make_mixed_households(count: int = 30) -> list[Household]:
    """A deliberately heterogeneous population: library-ordered ownership,
    permuted (reversed) ownership-dict order, a second library, and one
    appliance-less household — every signature a single HouseholdFleet
    rejects."""
    random = RandomSource(21, "mixed_fleet")
    standard = standard_appliance_library()
    alt = _alt_library()
    households: list[Household] = []
    for i in range(count):
        kind = i % 3
        if kind == 0:
            households.append(
                Household.generate(f"m{i:03d}", random.spawn(f"m{i}"), standard)
            )
        elif kind == 1:
            ownership = standard.sample_ownership(random.spawn(f"perm{i}"), household_size=3)
            permuted = dict(reversed(list(ownership.items())))
            profile = HouseholdProfile(
                household_id=f"m{i:03d}",
                size=3,
                ownership=permuted,
                comfort_weight=1.0 + 0.01 * i,
                flexibility_scale=0.8,
            )
            households.append(Household(profile, standard))
        else:
            profile = HouseholdProfile(
                household_id=f"m{i:03d}",
                size=2,
                ownership={"alt_heating": 1.0, "alt_lighting": 0.8},
                comfort_weight=1.2,
                flexibility_scale=1.0,
            )
            households.append(Household(profile, alt))
    bare = HouseholdProfile(
        household_id="m_bare",
        size=1,
        ownership={},
        comfort_weight=1.0,
        flexibility_scale=0.5,
    )
    households.append(Household(bare, standard))
    return households


@pytest.fixture(scope="module")
def mixed_households():
    return make_mixed_households()


@pytest.fixture(scope="module")
def bucketed(mixed_households):
    fleet = pack_fleet(mixed_households)
    assert isinstance(fleet, BucketedFleet)
    return fleet


class TestApplianceOrder:
    """HouseholdFleet's per-bucket column permutation support."""

    def test_permuted_order_packs_and_matches_scalar(self, weather, interval):
        standard = standard_appliance_library()
        ownership = standard.sample_ownership(RandomSource(3, "p").spawn("h"), household_size=2)
        permuted = dict(reversed(list(ownership.items())))
        profile = HouseholdProfile(
            household_id="perm", size=2, ownership=permuted,
            comfort_weight=1.0, flexibility_scale=0.9,
        )
        household = Household(profile, standard)
        with pytest.raises(FleetIncompatibleError):
            HouseholdFleet([household])  # library order still rejects
        fleet = HouseholdFleet(
            [household], appliance_order=tuple(permuted.keys())
        )
        assert np.array_equal(
            fleet.demand_profiles(weather)[0],
            household.demand_profile(weather).as_array(),
        )
        assert fleet.saveable_energy(interval, weather)[0] == (
            household.saveable_energy(interval, weather)
        )

    def test_order_must_cover_owned_appliances(self):
        standard = standard_appliance_library()
        names = standard.names
        profile = HouseholdProfile(
            household_id="h", size=2, ownership={names[0]: 1.0, names[1]: 1.0},
            comfort_weight=1.0, flexibility_scale=0.9,
        )
        with pytest.raises(FleetIncompatibleError):
            HouseholdFleet([Household(profile, standard)], appliance_order=(names[0],))

    def test_order_rejects_unknown_and_duplicate_names(self, households):
        with pytest.raises(FleetIncompatibleError):
            HouseholdFleet(households[:1], appliance_order=("no_such_appliance",))
        names = standard_appliance_library().names
        with pytest.raises(FleetIncompatibleError):
            HouseholdFleet(households[:1], appliance_order=(names[0], names[0]))


class TestBucketedFleet:
    """Bucketed kernels must match the scalar oracle bit for bit, per row."""

    def test_pack_fleet_prefers_single_fleet(self, households):
        assert isinstance(pack_fleet(households), HouseholdFleet)

    def test_buckets_are_bounded_by_signatures(self, bucketed):
        # generated + permuted-sample + alt-library + bare: signatures stay
        # a handful even though owned subsets vary household to household.
        assert 2 <= bucketed.num_buckets <= 6
        assert sum(len(rows) for rows, __ in bucketed.buckets) == len(bucketed)

    def test_population_order_preserved(self, bucketed, mixed_households):
        assert bucketed.household_ids == [h.household_id for h in mixed_households]

    def test_demand_profiles_bit_identical(self, bucketed, mixed_households, weather):
        matrix = bucketed.demand_profiles(weather)
        assert matrix.shape == (len(mixed_households), 24)
        for row, household in zip(matrix, mixed_households):
            assert np.array_equal(row, household.demand_profile(weather).as_array())

    def test_energy_in_bit_identical(self, bucketed, mixed_households, weather, interval):
        energies = bucketed.energy_in(interval, weather)
        for energy, household in zip(energies, mixed_households):
            assert energy == household.demand_profile(weather).energy_in(interval)

    def test_average_in_bit_identical(self, bucketed, mixed_households, weather, interval):
        averages = bucketed.average_in(interval, weather)
        for average, household in zip(averages, mixed_households):
            assert average == household.demand_profile(weather).average_in(interval)

    def test_saveable_energy_bit_identical(self, bucketed, mixed_households, weather, interval):
        saveable = bucketed.saveable_energy(interval, weather)
        for energy, household in zip(saveable, mixed_households):
            assert energy == household.saveable_energy(interval, weather)

    def test_max_cutdown_fractions_bit_identical(self, bucketed, mixed_households, weather, interval):
        fractions = bucketed.max_cutdown_fractions(interval, weather)
        for fraction, household in zip(fractions, mixed_households):
            assert fraction == household.max_cutdown_fraction(interval, weather)

    def test_max_cutdown_fractions_accepts_precomputed_energies(self, bucketed, weather, interval):
        energies = bucketed.energy_in(interval, weather)
        assert np.array_equal(
            bucketed.max_cutdown_fractions(interval, weather, demand_energies=energies),
            bucketed.max_cutdown_fractions(interval, weather),
        )

    def test_aggregate_demand_matches_scalar_aggregation(self, bucketed, mixed_households, weather):
        from repro.grid.load_profile import LoadProfile

        expected = LoadProfile.aggregate(
            household.demand_profile(weather) for household in mixed_households
        )
        assert bucketed.aggregate_demand(weather).values == expected.values

    def test_demand_matrix_is_cached_and_read_only(self, bucketed):
        first = bucketed.demand_profiles(None)
        assert bucketed.demand_profiles(None) is first
        with pytest.raises(ValueError):
            first[0, 0] = 1.0

    def test_rejects_mixed_resolutions(self, mixed_households):
        odd = Household.generate(
            "odd", RandomSource(1, "odd"), standard_appliance_library(),
            slots_per_day=48,
        )
        with pytest.raises(FleetIncompatibleError):
            BucketedFleet(mixed_households + [odd])
        with pytest.raises(FleetIncompatibleError):
            pack_fleet(mixed_households + [odd])

    def test_realise_matches_scalar_path(self, mixed_households):
        cold = WeatherSample(temperature_c=-15.0, condition=WeatherCondition.COLD)
        model = DemandModel(mixed_households, RandomSource(5, "d"))
        assert isinstance(model._fleet, BucketedFleet)
        assert model.fallback_reason is None
        columnar = model.realise(cold)
        scalar = DemandModel(
            mixed_households, RandomSource(5, "d")
        )._realise_scalar(cold)
        assert columnar.household_ids == scalar.household_ids
        for household_id in columnar.household_ids:
            assert columnar.household(household_id).values == (
                scalar.household(household_id).values
            )

    def test_mixed_resolutions_record_fallback_reason(self, mixed_households):
        odd = Household.generate(
            "odd", RandomSource(1, "odd"), standard_appliance_library(),
            slots_per_day=48,
        )
        model = DemandModel(mixed_households[:3] + [odd], RandomSource(5, "d"))
        assert model._fleet is None
        assert "resolution" in model.fallback_reason
