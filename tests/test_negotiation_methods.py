"""Tests for the three announcement methods (offer, request-for-bids, reward tables)."""

from __future__ import annotations

import pytest

from repro.negotiation.messages import (
    CutdownBid,
    OfferAnnouncement,
    OfferResponse,
    QuantityBid,
    RewardTableAnnouncement,
)
from repro.negotiation.methods.base import CustomerContext, UtilityContext
from repro.negotiation.methods.offer import OfferMethod
from repro.negotiation.methods.request_for_bids import RequestForBidsMethod
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.reward_table import CutdownRewardRequirements, RewardTable
from repro.negotiation.strategy import ConstantBeta, SelectiveBidAcceptance
from repro.negotiation.termination import TerminationReason


def utility_context(num_customers: int = 4, per_customer: float = 10.0, normal: float = 30.0,
                    max_allowed: float = 0.0) -> UtilityContext:
    predicted = {f"c{i}": per_customer for i in range(num_customers)}
    return UtilityContext(
        normal_use=normal,
        predicted_uses=predicted,
        allowed_uses=dict(predicted),
        max_allowed_overuse=max_allowed,
    )


def customer_context(customer: str = "c0", predicted: float = 10.0,
                     scale: float = 1.0) -> CustomerContext:
    base = CutdownRewardRequirements.paper_figure_8_customer()
    requirements = CutdownRewardRequirements(
        {c: r * scale for c, r in base.requirements.items()},
        max_feasible_cutdown=base.max_feasible_cutdown,
    )
    return CustomerContext(
        customer=customer, predicted_use=predicted, allowed_use=predicted,
        requirements=requirements,
    )


class TestUtilityContext:
    def test_derived_quantities(self):
        context = utility_context(4, 10.0, 30.0)
        assert context.total_predicted_use == 40.0
        assert context.initial_overuse == 10.0
        assert context.initial_relative_overuse == pytest.approx(1 / 3)
        assert context.customers == ["c0", "c1", "c2", "c3"]

    def test_validation(self):
        with pytest.raises(ValueError):
            UtilityContext(normal_use=0.0, predicted_uses={"a": 1.0}, allowed_uses={"a": 1.0})
        with pytest.raises(ValueError):
            UtilityContext(normal_use=10.0, predicted_uses={"a": 1.0}, allowed_uses={"b": 1.0})
        with pytest.raises(ValueError):
            CustomerContext("c", -1.0, 1.0, CutdownRewardRequirements({0.2: 1.0}))


class TestRewardTablesMethod:
    def test_initial_announcement_uses_explicit_table(self):
        table = RewardTable({0.2: 5.0, 0.4: 17.0})
        method = RewardTablesMethod(max_reward=30.0, initial_table=table)
        announcement = method.initial_announcement(utility_context())
        assert isinstance(announcement, RewardTableAnnouncement)
        assert announcement.table.reward_for(0.4) == 17.0
        assert announcement.round_number == 0

    def test_initial_table_above_max_reward_rejected(self):
        with pytest.raises(ValueError):
            RewardTablesMethod(max_reward=10.0, initial_table=RewardTable({0.4: 17.0}))

    def test_generated_initial_table_bounded_by_max_reward(self):
        method = RewardTablesMethod(max_reward=25.0)
        announcement = method.initial_announcement(utility_context())
        assert announcement.table.max_reward_offered() <= 25.0

    def test_respond_follows_bidding_policy_and_monotonicity(self):
        method = RewardTablesMethod(max_reward=30.0)
        announcement = RewardTableAnnouncement(
            round_number=0,
            table=RewardTable({0.0: 0, 0.1: 2, 0.2: 5, 0.3: 9, 0.4: 17}),
        )
        customer = customer_context()
        bid = method.respond(announcement, customer)
        assert isinstance(bid, CutdownBid) and bid.cutdown == 0.2
        better = RewardTableAnnouncement(
            round_number=1,
            table=RewardTable({0.0: 0, 0.1: 3, 0.2: 8, 0.3: 13, 0.4: 22}),
        )
        second = method.respond(better, customer, previous_bid=bid)
        assert second.cutdown >= bid.cutdown

    def test_evaluate_round_computes_overuse_and_termination(self):
        method = RewardTablesMethod(max_reward=30.0)
        context = utility_context(4, 10.0, 30.0, max_allowed=2.0)
        announcement = method.initial_announcement(context)
        bids = {
            f"c{i}": CutdownBid(customer=f"c{i}", round_number=0, cutdown=0.3)
            for i in range(4)
        }
        evaluation = method.evaluate_round(context, announcement, bids, 0)
        # 4 customers at 10 each with 0.3 cut-down -> 28 total, overuse -2.
        assert evaluation.predicted_overuse == pytest.approx(-2.0)
        assert evaluation.termination is TerminationReason.OVERUSE_ACCEPTABLE

    def test_next_announcement_is_monotone_concession(self):
        method = RewardTablesMethod(
            max_reward=30.0,
            beta_controller=ConstantBeta(2.0),
            initial_table=RewardTable({0.2: 5.0, 0.4: 17.0}),
        )
        context = utility_context()
        first = method.initial_announcement(context)
        bids = {"c0": CutdownBid(customer="c0", round_number=0, cutdown=0.0)}
        evaluation = method.evaluate_round(context, first, bids, 0)
        second = method.next_announcement(context, first, evaluation, 0)
        assert second is not None
        assert second.round_number == 1
        assert second.table.strictly_more_generous_than(first.table)

    def test_next_announcement_none_when_saturated(self):
        # Rewards already at the maximum: the increment is ~0, so negotiation ends.
        method = RewardTablesMethod(
            max_reward=30.0, initial_table=RewardTable({0.2: 29.99, 0.4: 30.0})
        )
        context = utility_context()
        first = method.initial_announcement(context)
        bids = {"c0": CutdownBid(customer="c0", round_number=0, cutdown=0.0)}
        evaluation = method.evaluate_round(context, first, bids, 0)
        assert method.next_announcement(context, first, evaluation, 0) is None

    def test_rewards_due_and_cutdowns(self):
        method = RewardTablesMethod(max_reward=30.0, initial_table=RewardTable({0.2: 5.0, 0.4: 17.0}))
        context = utility_context(2)
        announcement = method.initial_announcement(context)
        bids = {
            "c0": CutdownBid(customer="c0", round_number=0, cutdown=0.4),
            "c1": CutdownBid(customer="c1", round_number=0, cutdown=0.0),
        }
        rewards = method.rewards_due(context, announcement, bids)
        assert rewards == {"c0": 17.0, "c1": 0.0}
        cutdowns = method.committed_cutdowns(context, bids)
        assert cutdowns == {"c0": 0.4, "c1": 0.0}

    def test_selective_acceptance_plugs_in(self):
        method = RewardTablesMethod(
            max_reward=30.0, acceptance_policy=SelectiveBidAcceptance(safety_margin=0.0)
        )
        context = utility_context(4, 10.0, 38.0)
        announcement = method.initial_announcement(context)
        bids = {
            f"c{i}": CutdownBid(customer=f"c{i}", round_number=0, cutdown=0.3)
            for i in range(4)
        }
        evaluation = method.evaluate_round(context, announcement, bids, 0)
        # Overuse is only 2, a single 0.3 cut-down of 10 covers it.
        assert sum(evaluation.accepted_customers.values()) == 1

    def test_respond_rejects_wrong_announcement_type(self):
        method = RewardTablesMethod()
        with pytest.raises(TypeError):
            method.respond(OfferAnnouncement(round_number=0), customer_context())


class TestOfferMethod:
    def test_single_round_only(self):
        method = OfferMethod(x_max=0.8)
        context = utility_context()
        announcement = method.initial_announcement(context)
        evaluation = method.evaluate_round(context, announcement, {}, 0)
        assert method.next_announcement(context, announcement, evaluation, 0) is None
        assert evaluation.termination is not None

    def test_flexible_customer_accepts(self):
        method = OfferMethod(x_max=0.7)
        announcement = method.initial_announcement(utility_context())
        flexible = customer_context(scale=0.2)  # cheap to cut down
        response = method.respond(announcement, flexible)
        assert isinstance(response, OfferResponse) and response.accept

    def test_inflexible_customer_declines(self):
        method = OfferMethod(x_max=0.7)
        announcement = method.initial_announcement(utility_context())
        stubborn = customer_context(scale=50.0)  # discomfort dwarfs any saving
        assert not method.respond(announcement, stubborn).accept

    def test_customer_within_allowance_always_accepts(self):
        method = OfferMethod(x_max=0.8)
        announcement = method.initial_announcement(utility_context())
        small_user = CustomerContext(
            customer="tiny", predicted_use=5.0, allowed_use=10.0,
            requirements=CutdownRewardRequirements.paper_figure_8_customer(),
        )
        assert method.respond(announcement, small_user).accept

    def test_infeasible_cutdown_declines(self):
        method = OfferMethod(x_max=0.2)  # would require an 80% cut-down
        announcement = method.initial_announcement(utility_context())
        customer = customer_context()  # max feasible 0.8 -> borderline
        limited = CustomerContext(
            customer="limited", predicted_use=10.0, allowed_use=10.0,
            requirements=CutdownRewardRequirements(
                {0.2: 1.0, 0.4: 5.0}, max_feasible_cutdown=0.4
            ),
        )
        assert not method.respond(announcement, limited).accept

    def test_committed_cutdowns_and_rewards(self):
        method = OfferMethod(x_max=0.8)
        context = utility_context(2)
        announcement = method.initial_announcement(context)
        bids = {
            "c0": OfferResponse(customer="c0", round_number=0, accept=True),
            "c1": OfferResponse(customer="c1", round_number=0, accept=False),
        }
        cutdowns = method.committed_cutdowns(context, bids)
        assert cutdowns["c0"] == pytest.approx(0.2)
        assert cutdowns["c1"] == 0.0
        rewards = method.rewards_due(context, announcement, bids)
        assert rewards["c0"] > 0 and rewards["c1"] == 0.0

    def test_evaluate_round_reduces_overuse_with_acceptances(self):
        method = OfferMethod(x_max=0.8)
        context = utility_context(4, 10.0, 35.0)
        announcement = method.initial_announcement(context)
        all_accept = {
            f"c{i}": OfferResponse(customer=f"c{i}", round_number=0, accept=True)
            for i in range(4)
        }
        none_accept = {
            f"c{i}": OfferResponse(customer=f"c{i}", round_number=0, accept=False)
            for i in range(4)
        }
        with_deal = method.evaluate_round(context, announcement, all_accept, 0)
        without = method.evaluate_round(context, announcement, none_accept, 0)
        assert with_deal.predicted_overuse < without.predicted_overuse

    def test_validation(self):
        with pytest.raises(ValueError):
            OfferMethod(x_max=0.0)
        with pytest.raises(ValueError):
            OfferMethod(peak_hours=0.0)


class TestRequestForBidsMethod:
    def test_customer_steps_down_when_worthwhile(self):
        method = RequestForBidsMethod(step_fraction=0.1)
        announcement = method.initial_announcement(utility_context())
        flexible = customer_context(scale=0.05)
        bid = method.respond(announcement, flexible)
        assert isinstance(bid, QuantityBid)
        assert bid.needed_use < flexible.predicted_use

    def test_stubborn_customer_stands_still(self):
        method = RequestForBidsMethod(step_fraction=0.1)
        announcement = method.initial_announcement(utility_context())
        stubborn = customer_context(scale=100.0)
        bid = method.respond(announcement, stubborn)
        assert bid.needed_use == pytest.approx(stubborn.predicted_use)

    def test_successive_bids_never_increase(self):
        method = RequestForBidsMethod(step_fraction=0.1)
        context = utility_context()
        announcement = method.initial_announcement(context)
        customer = customer_context(scale=0.05)
        previous = None
        needs = []
        for __ in range(5):
            bid = method.respond(announcement, customer, previous)
            needs.append(bid.needed_use)
            previous = bid
        assert all(b <= a + 1e-9 for a, b in zip(needs, needs[1:]))

    def test_evaluate_round_stops_when_everyone_stands_still(self):
        method = RequestForBidsMethod(step_fraction=0.1, max_rounds=10)
        context = utility_context(2, 10.0, 15.0)
        announcement = method.initial_announcement(context)
        bids = {
            "c0": QuantityBid(customer="c0", round_number=0, needed_use=10.0),
            "c1": QuantityBid(customer="c1", round_number=0, needed_use=10.0),
        }
        first = method.evaluate_round(context, announcement, bids, 0)
        assert first.termination is None  # first round establishes the baseline
        second = method.evaluate_round(context, announcement, bids, 1)
        assert second.termination is TerminationReason.REWARD_SATURATED

    def test_evaluate_round_overuse_acceptable(self):
        method = RequestForBidsMethod()
        context = utility_context(2, 10.0, 18.0, max_allowed=0.0)
        announcement = method.initial_announcement(context)
        bids = {
            "c0": QuantityBid(customer="c0", round_number=0, needed_use=8.0),
            "c1": QuantityBid(customer="c1", round_number=0, needed_use=9.0),
        }
        evaluation = method.evaluate_round(context, announcement, bids, 0)
        assert evaluation.termination is TerminationReason.OVERUSE_ACCEPTABLE
        assert evaluation.predicted_overuse == pytest.approx(-1.0)

    def test_max_rounds_termination(self):
        method = RequestForBidsMethod(max_rounds=1)
        context = utility_context(1, 10.0, 5.0)
        announcement = method.initial_announcement(context)
        bids = {"c0": QuantityBid(customer="c0", round_number=0, needed_use=10.0)}
        evaluation = method.evaluate_round(context, announcement, bids, 0)
        assert evaluation.termination is TerminationReason.MAX_ROUNDS

    def test_committed_cutdown_fractions(self):
        method = RequestForBidsMethod()
        context = utility_context(2)
        bids = {
            "c0": QuantityBid(customer="c0", round_number=0, needed_use=7.0),
            "c1": QuantityBid(customer="c1", round_number=0, needed_use=10.0),
        }
        fractions = method.committed_cutdowns(context, bids)
        assert fractions["c0"] == pytest.approx(0.3)
        assert fractions["c1"] == 0.0

    def test_next_announcement_continues_until_termination(self):
        method = RequestForBidsMethod()
        context = utility_context()
        first = method.initial_announcement(context)
        bids = {"c0": QuantityBid(customer="c0", round_number=0, needed_use=9.0)}
        evaluation = method.evaluate_round(context, first, bids, 0)
        if evaluation.termination is None:
            second = method.next_announcement(context, first, evaluation, 0)
            assert second is not None and second.round_number == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestForBidsMethod(step_fraction=0.0)
        with pytest.raises(ValueError):
            RequestForBidsMethod(max_rounds=0)
