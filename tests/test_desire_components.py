"""Tests for DESIRE components, links, task control, engine and trace."""

from __future__ import annotations

import pytest

from repro.desire.component import (
    ComposedComponent,
    ComputationalComponent,
    KnowledgeComponent,
)
from repro.desire.engine import DesireEngine
from repro.desire.errors import CompositionError, DesireError
from repro.desire.information_types import Atom, InformationState, InformationType, TruthValue
from repro.desire.knowledge_base import KnowledgeBase, Pattern, Rule, var
from repro.desire.links import InformationLink, LinkMapping
from repro.desire.task_control import TaskControl, TaskControlRule
from repro.desire.trace import ExecutionTrace, TraceEvent, TraceEventKind


def doubling_component(name: str = "doubler") -> ComputationalComponent:
    """A primitive component that doubles every numeric 'value' atom."""

    def double(state: InformationState):
        for atom in state.atoms_of_relation("value"):
            yield Atom("doubled", (atom.arguments[0] * 2,))

    return ComputationalComponent(name, double)


class TestPrimitiveComponents:
    def test_computational_component_produces_output(self):
        component = doubling_component()
        component.receive(Atom("value", (3,)))
        changes = component.activate()
        assert changes == 1
        assert component.output_state.holds(Atom("doubled", (6,)))
        assert component.activation_count == 1

    def test_computational_component_rejects_non_atoms(self):
        component = ComputationalComponent("broken", lambda state: ["not an atom"])
        with pytest.raises(CompositionError):
            component.activate()

    def test_knowledge_component_filters_output_by_type(self):
        output_type = InformationType("out")
        output_type.declare_sort("x", numeric=True)
        output_type.declare_relation("conclusion", "x")
        kb = KnowledgeBase(
            "kb",
            rules=[
                Rule(
                    "conclude",
                    (Pattern("premise", (var("X"),)),),
                    (Pattern("conclusion", (var("X"),)),),
                )
            ],
        )
        component = KnowledgeComponent("reasoner", kb, output_type=output_type)
        component.receive(Atom("premise", (1,)))
        component.activate()
        assert component.output_state.holds(Atom("conclusion", (1,)))
        # The premise itself is not part of the output information type.
        assert not component.output_state.holds(Atom("premise", (1,)))

    def test_reset_clears_interfaces(self):
        component = doubling_component()
        component.receive(Atom("value", (1,)))
        component.activate()
        component.reset()
        assert len(component.input_state) == 0
        assert len(component.output_state) == 0

    def test_empty_name_rejected(self):
        with pytest.raises(CompositionError):
            ComputationalComponent("", lambda state: ())


class TestLinks:
    def test_link_transfers_all_atoms_without_mappings(self):
        source = InformationState()
        target = InformationState()
        source.assert_atom(Atom("a", (1,)))
        source.assert_atom(Atom("b", (2,)), TruthValue.FALSE)
        link = InformationLink("l", "x", "y")
        assert link.transfer(source, target) == 2
        assert target.holds(Atom("a", (1,)))
        assert target.value_of(Atom("b", (2,))) is TruthValue.FALSE

    def test_link_can_drop_negative_information(self):
        source = InformationState()
        target = InformationState()
        source.assert_atom(Atom("a", (1,)), TruthValue.FALSE)
        link = InformationLink("l", "x", "y", carry_negative=False)
        assert link.transfer(source, target) == 0

    def test_mapping_renames_and_permutes(self):
        mapping = LinkMapping("bid_made", "received_bid", argument_indices=(1, 0))
        atom = mapping.apply(Atom("bid_made", ("c1", 0.4)))
        assert atom == Atom("received_bid", (0.4, "c1"))
        assert mapping.apply(Atom("other", ())) is None

    def test_mapping_transform(self):
        mapping = LinkMapping("kw", "mw", transform=lambda args: (args[0] / 1000.0,))
        assert mapping.apply(Atom("kw", (5000.0,))) == Atom("mw", (5.0,))

    def test_mapping_bad_indices_raise(self):
        mapping = LinkMapping("a", "b", argument_indices=(3,))
        with pytest.raises(CompositionError):
            mapping.apply(Atom("a", (1,)))

    def test_self_link_rejected(self):
        with pytest.raises(CompositionError):
            InformationLink("bad", "x", "x")


class TestComposedComponent:
    def build_pipeline(self) -> ComposedComponent:
        """input -> doubler -> negator -> output, linked through the composition."""
        composition = ComposedComponent("pipeline")
        composition.add_child(doubling_component("doubler"))

        def negate(state: InformationState):
            for atom in state.atoms_of_relation("doubled"):
                yield Atom("negated", (-atom.arguments[0],))

        composition.add_child(ComputationalComponent("negator", negate))
        composition.add_link(InformationLink("in_to_doubler", "pipeline", "doubler"))
        composition.add_link(InformationLink("doubler_to_negator", "doubler", "negator"))
        composition.add_link(InformationLink("negator_to_out", "negator", "pipeline"))
        return composition

    def test_information_flows_through_links(self):
        pipeline = self.build_pipeline()
        pipeline.receive(Atom("value", (3,)))
        pipeline.activate()
        assert pipeline.output_state.holds(Atom("negated", (-6,)))

    def test_duplicate_child_rejected(self):
        composition = ComposedComponent("c")
        composition.add_child(doubling_component("child"))
        with pytest.raises(CompositionError):
            composition.add_child(doubling_component("child"))

    def test_link_to_unknown_component_rejected(self):
        composition = ComposedComponent("c")
        with pytest.raises(CompositionError):
            composition.add_link(InformationLink("l", "c", "ghost"))

    def test_unknown_child_lookup_rejected(self):
        with pytest.raises(CompositionError):
            ComposedComponent("c").child("ghost")

    def test_descendants_are_recursive(self):
        outer = ComposedComponent("outer")
        inner = ComposedComponent("inner")
        inner.add_child(doubling_component("leaf"))
        outer.add_child(inner)
        names = [component.name for component in outer.descendants()]
        assert names == ["inner", "leaf"]

    def test_quiescence_reached(self):
        pipeline = self.build_pipeline()
        pipeline.receive(Atom("value", (1,)))
        first = pipeline.activate()
        second = pipeline.activate()
        assert first > 0
        assert second == 0


class TestTaskControl:
    def test_activation_order_is_respected(self):
        composition = ComposedComponent("c")
        composition.add_child(doubling_component("a"))
        composition.add_child(doubling_component("b"))
        composition.task_control.set_activation_order(["b", "a"])
        eligible = composition.task_control.eligible_components(composition, cycle=0)
        assert eligible == ["b", "a"]

    def test_duplicate_order_rejected(self):
        control = TaskControl("c")
        with pytest.raises(CompositionError):
            control.set_activation_order(["a", "a"])

    def test_unknown_component_in_order_rejected(self):
        composition = ComposedComponent("c")
        composition.add_child(doubling_component("a"))
        composition.task_control.set_activation_order(["a", "ghost"])
        with pytest.raises(CompositionError):
            composition.task_control.eligible_components(composition, cycle=0)

    def test_excluded_component_needs_rule_to_run(self):
        composition = ComposedComponent("c")
        composition.add_child(doubling_component("always"))
        composition.add_child(doubling_component("conditional"))
        composition.task_control.exclude("conditional")
        assert composition.task_control.eligible_components(composition, 0) == ["always"]
        composition.task_control.add_rule(
            TaskControlRule("conditional", lambda comp, cycle: cycle >= 2)
        )
        assert composition.task_control.eligible_components(composition, 1) == ["always"]
        assert composition.task_control.eligible_components(composition, 2) == [
            "always",
            "conditional",
        ]

    def test_rule_without_exclusion_gates_component(self):
        composition = ComposedComponent("c")
        composition.add_child(doubling_component("gated"))
        composition.task_control.add_rule(
            TaskControlRule("gated", lambda comp, cycle: cycle == 1)
        )
        assert composition.task_control.eligible_components(composition, 0) == []
        assert composition.task_control.eligible_components(composition, 1) == ["gated"]

    def test_activation_history(self):
        control = TaskControl("c")
        control.record_activation("a", 0, 3)
        control.record_activation("a", 1, 0)
        control.record_activation("b", 1, 1)
        assert control.activations_of("a") == 2
        assert len(control.history) == 3


class TestEngineAndTrace:
    def test_engine_runs_primitive(self):
        engine = DesireEngine()
        component = doubling_component()
        component.receive(Atom("value", (2,)))
        report = engine.run(component)
        assert report.quiescent
        assert report.activations == {"doubler": 1}

    def test_engine_runs_composition_to_quiescence(self):
        engine = DesireEngine()
        composition = TestComposedComponent().build_pipeline()
        composition.receive(Atom("value", (4,)))
        report = engine.run(composition)
        assert report.quiescent
        assert composition.output_state.holds(Atom("negated", (-8,)))
        assert len(engine.trace) > 0
        assert "doubler" in engine.trace.components_seen()

    def test_engine_run_until_condition(self):
        engine = DesireEngine()
        composition = TestComposedComponent().build_pipeline()
        composition.receive(Atom("value", (1,)))
        report = engine.run_until(
            composition, lambda c: c.output_state.holds(Atom("negated", (-2,))), max_runs=3
        )
        assert report.quiescent

    def test_engine_invalid_parameters(self):
        with pytest.raises(DesireError):
            DesireEngine(max_cycles=0)
        with pytest.raises(DesireError):
            DesireEngine().run_until(ComposedComponent("c"), lambda c: True, max_runs=0)

    def test_trace_queries(self):
        trace = ExecutionTrace("t")
        trace.record_activation("a", cycle=0, changes=2)
        trace.record_activation("b", cycle=0, changes=0)
        trace.record_activation("a", cycle=1, changes=1)
        trace.record_note("a", "done")
        assert trace.activation_count("a") == 2
        assert trace.activation_count("b") == 1
        assert trace.components_seen() == ["a", "b"]
        assert len(trace.events_of("a")) == 3
        assert "activation" in trace.render(limit=2)

    def test_trace_merge(self):
        first = ExecutionTrace("first")
        first.record_activation("a")
        second = ExecutionTrace("second")
        second.record_activation("b")
        merged = first.merge([second])
        assert merged.components_seen() == ["a", "b"]
