"""Tests for the monotonic concession protocol, messages and termination."""

from __future__ import annotations

import pytest

from repro.grid.pricing import Tariff
from repro.negotiation.messages import (
    Award,
    CutdownBid,
    OfferAnnouncement,
    OfferResponse,
    QuantityBid,
    RewardTableAnnouncement,
)
from repro.negotiation.protocol import (
    MonotonicConcessionProtocol,
    NegotiationOutcome,
    NegotiationRecord,
    ProtocolViolation,
    RoundRecord,
)
from repro.negotiation.reward_table import RewardTable
from repro.negotiation.termination import (
    CompositeTermination,
    MaxRoundsReached,
    NegotiationStatus,
    OveruseAcceptable,
    RewardSaturated,
    TerminationReason,
)


def table_announcement(round_number: int, base: float) -> RewardTableAnnouncement:
    return RewardTableAnnouncement(
        round_number=round_number,
        table=RewardTable({0.2: base, 0.4: base * 3}),
    )


class TestMessages:
    def test_offer_announcement_allowance(self):
        offer = OfferAnnouncement(round_number=0, x_max=0.8)
        assert offer.allowance_for(10.0) == pytest.approx(8.0)
        assert offer.method_name() == "offer"
        with pytest.raises(ValueError):
            OfferAnnouncement(round_number=0, x_max=1.5)
        with pytest.raises(ValueError):
            offer.allowance_for(-1.0)

    def test_reward_table_announcement_requires_table(self):
        with pytest.raises(ValueError):
            RewardTableAnnouncement(round_number=0, table=None)
        assert table_announcement(0, 5.0).method_name() == "reward_tables"

    def test_bid_validation(self):
        with pytest.raises(ValueError):
            CutdownBid(customer="c", round_number=0, cutdown=1.5)
        with pytest.raises(ValueError):
            QuantityBid(customer="c", round_number=0, needed_use=-1.0)
        assert OfferResponse(customer="c", round_number=0, accept=True).method_name() == "offer"

    def test_award_validation(self):
        with pytest.raises(ValueError):
            Award(customer="c", accepted=True, committed_cutdown=1.5)
        with pytest.raises(ValueError):
            Award(customer="c", accepted=True, reward=-1.0)


class TestMonotonicConcessionProtocol:
    def test_accepts_monotone_announcements(self):
        protocol = MonotonicConcessionProtocol()
        protocol.record_announcement(table_announcement(0, 5.0))
        protocol.record_announcement(table_announcement(1, 6.0))
        assert len(protocol.announcements) == 2
        assert protocol.violations == []

    def test_rejects_less_generous_announcement(self):
        protocol = MonotonicConcessionProtocol()
        protocol.record_announcement(table_announcement(0, 6.0))
        with pytest.raises(ProtocolViolation):
            protocol.record_announcement(table_announcement(1, 5.0))

    def test_rejects_stale_round_number(self):
        protocol = MonotonicConcessionProtocol()
        protocol.record_announcement(table_announcement(1, 5.0))
        with pytest.raises(ProtocolViolation):
            protocol.record_announcement(table_announcement(1, 6.0))

    def test_rejects_retreating_bid(self):
        protocol = MonotonicConcessionProtocol()
        protocol.record_bid(CutdownBid(customer="c1", round_number=0, cutdown=0.3))
        with pytest.raises(ProtocolViolation):
            protocol.record_bid(CutdownBid(customer="c1", round_number=1, cutdown=0.2))

    def test_accepts_stand_still_and_progress(self):
        protocol = MonotonicConcessionProtocol()
        protocol.record_bid(CutdownBid(customer="c1", round_number=0, cutdown=0.2))
        protocol.record_bid(CutdownBid(customer="c1", round_number=1, cutdown=0.2))
        protocol.record_bid(CutdownBid(customer="c1", round_number=2, cutdown=0.4))
        assert [b.cutdown for b in protocol.bids_of("c1")] == [0.2, 0.2, 0.4]

    def test_non_strict_mode_records_violations(self):
        protocol = MonotonicConcessionProtocol(strict=False)
        protocol.record_announcement(table_announcement(0, 6.0))
        protocol.record_announcement(table_announcement(1, 5.0))
        assert len(protocol.violations) == 1

    def test_agreement_reached(self):
        protocol = MonotonicConcessionProtocol()
        protocol.record_bid(CutdownBid(customer="c1", round_number=0, cutdown=0.4))
        protocol.record_bid(CutdownBid(customer="c2", round_number=0, cutdown=0.2))
        assert protocol.agreement_reached({"c1": 0.4, "c2": 0.2})
        assert not protocol.agreement_reached({"c1": 0.5, "c2": 0.2})
        assert not protocol.agreement_reached({"c3": 0.1})

    def test_customers_heard_from(self):
        protocol = MonotonicConcessionProtocol()
        protocol.record_bid(CutdownBid(customer="c1", round_number=0, cutdown=0.1))
        assert protocol.customers_heard_from() == ["c1"]


class TestNegotiationRecord:
    def build_record(self, final_overuse: float) -> NegotiationRecord:
        record = NegotiationRecord(
            conversation_id="n", normal_use=100.0, initial_overuse=35.0
        )
        record.rounds.append(
            RoundRecord(
                round_number=0,
                announcement=table_announcement(0, 5.0),
                bids={"c1": CutdownBid(customer="c1", round_number=0, cutdown=0.2)},
                predicted_overuse_before=35.0,
                predicted_overuse_after=final_overuse,
            )
        )
        record.final_overuse = final_overuse
        return record

    def test_outcome_classification(self):
        assert self.build_record(-1.0).outcome is NegotiationOutcome.PEAK_REMOVED
        assert self.build_record(12.0).outcome is NegotiationOutcome.PEAK_REDUCED
        assert self.build_record(35.0).outcome is NegotiationOutcome.NO_IMPROVEMENT
        ongoing = NegotiationRecord("n", 100.0, 35.0)
        assert ongoing.outcome is NegotiationOutcome.ONGOING

    def test_overuse_trajectory_and_final_bids(self):
        record = self.build_record(12.0)
        assert record.overuse_trajectory == [35.0, 12.0]
        assert record.final_bids()["c1"].cutdown == 0.2

    def test_round_participation(self):
        round_record = RoundRecord(
            round_number=0,
            announcement=table_announcement(0, 5.0),
            bids={
                "c1": CutdownBid(customer="c1", round_number=0, cutdown=0.2),
                "c2": CutdownBid(customer="c2", round_number=0, cutdown=0.0),
            },
        )
        assert round_record.participation == pytest.approx(0.5)
        assert RoundRecord(0, table_announcement(0, 5.0)).participation == 0.0


class TestTermination:
    def status(self, overuse: float, round_number: int = 0, previous=None, current=None):
        return NegotiationStatus(
            round_number=round_number,
            predicted_overuse=overuse,
            normal_use=100.0,
            previous_table=previous,
            current_table=current,
        )

    def test_overuse_acceptable(self):
        condition = OveruseAcceptable(max_allowed_overuse=15.0)
        assert condition.check(self.status(12.0)) is TerminationReason.OVERUSE_ACCEPTABLE
        assert condition.check(self.status(20.0)) is None

    def test_reward_saturated(self):
        condition = RewardSaturated(epsilon=1.0)
        previous = RewardTable({0.4: 29.0})
        barely = RewardTable({0.4: 29.9})
        big = RewardTable({0.4: 31.0})
        assert condition.check(self.status(20.0, previous=previous, current=barely)) \
            is TerminationReason.REWARD_SATURATED
        assert condition.check(self.status(20.0, previous=previous, current=big)) is None
        assert condition.check(self.status(20.0)) is None  # no tables yet

    def test_max_rounds(self):
        condition = MaxRoundsReached(max_rounds=3)
        assert condition.check(self.status(20.0, round_number=3)) is TerminationReason.MAX_ROUNDS
        assert condition.check(self.status(20.0, round_number=2)) is None

    def test_composite_order(self):
        composite = CompositeTermination.paper_default(max_allowed_overuse=15.0, max_rounds=5)
        assert composite.check(self.status(10.0)) is TerminationReason.OVERUSE_ACCEPTABLE
        assert composite.check(self.status(20.0, round_number=5)) is TerminationReason.MAX_ROUNDS
        assert composite.check(self.status(20.0, round_number=1)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RewardSaturated(epsilon=-1.0)
        with pytest.raises(ValueError):
            MaxRoundsReached(0)
        with pytest.raises(ValueError):
            CompositeTermination([])
        with pytest.raises(ValueError):
            self.status(10.0).relative_overuse if False else NegotiationStatus(
                0, 10.0, 0.0
            ).relative_overuse
