"""Array-native rounds: ``rounds="array"`` against the object-round oracle.

The array round path (PR 9) evaluates every round on the numpy state arrays
the vectorized session already computes — no per-round ``Bid`` objects, no
dict round tables — and materialises per-customer outcomes lazily through
:class:`~repro.core.results.ColumnarOutcomes`.  It is only trustworthy if it
is *indistinguishable* from the object-building fast path at equal seeds:
same announcements, same overuse trajectory, same message counts, same
termination, same per-customer outcomes and the same fault semantics under a
nonzero :class:`~repro.runtime.faults.FaultPlan`.  These tests pin that
contract across the three stock methods, both stock bidding policies, chaos
plans, the sharded runtime and the engine façade, plus the lazy-view ≡
eager-dict property and the "zero ``Bid`` allocations" perf invariant.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, run
from repro.core.fast_session import FastSession
from repro.core.results import ColumnarOutcomes, CustomerOutcome
from repro.core.scenario import paper_prototype_scenario, synthetic_scenario
from repro.core.sharded_session import ShardedSession
from repro.negotiation.methods.offer import OfferMethod
from repro.negotiation.methods.request_for_bids import RequestForBidsMethod
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.strategy import (
    ConstantBeta,
    ExpectedGainBidding,
    SelectiveBidAcceptance,
)
from repro.runtime.faults import FaultPlan

# The matrix axes: every stock method × both stock bidding policies (the
# bidding policy is a reward-tables concept; the other methods carry their
# single stock behaviour).
METHOD_FACTORIES = {
    "reward_tables": lambda: RewardTablesMethod(
        max_reward=60.0, beta_controller=ConstantBeta(2.0)
    ),
    "reward_tables_expected_gain": lambda: RewardTablesMethod(
        max_reward=60.0,
        beta_controller=ConstantBeta(2.0),
        bidding_policy=ExpectedGainBidding(),
        reward_epsilon=0.3,
    ),
    "request_for_bids": lambda: RequestForBidsMethod(),
    "offer": lambda: OfferMethod(x_max=0.8),
}

CHAOS_PLAN = FaultPlan(
    seed=11, message_drop_rate=0.08, message_delay_rate=0.1, crash_rate=0.05
)


def assert_array_equivalent(object_result, array_result) -> None:
    """Field-by-field equality, modulo the round bid tables.

    Array rounds never retain per-round ``Bid`` objects (``record.rounds[i]
    .bids`` is empty by design), so the comparison covers everything else:
    announcements, the overuse trajectory, counters, termination, rewards
    and the full per-customer outcome mapping.
    """
    assert array_result.metadata["rounds_mode"] == "array"
    assert object_result.metadata["rounds_mode"] == "object"
    assert array_result.rounds == object_result.rounds
    assert array_result.messages_sent == object_result.messages_sent
    assert array_result.simulation_rounds == object_result.simulation_rounds
    assert array_result.total_reward_paid == object_result.total_reward_paid
    assert (
        array_result.record.termination_reason
        == object_result.record.termination_reason
    )
    assert array_result.record.outcome == object_result.record.outcome
    assert array_result.record.initial_overuse == object_result.record.initial_overuse
    assert array_result.record.final_overuse == object_result.record.final_overuse
    assert (
        array_result.record.overuse_trajectory
        == object_result.record.overuse_trajectory
    )
    for object_round, array_round in zip(
        object_result.record.rounds, array_result.record.rounds
    ):
        assert array_round.announcement == object_round.announcement
        assert array_round.bids == {}
        assert (
            array_round.predicted_overuse_before
            == object_round.predicted_overuse_before
        )
        assert (
            array_round.predicted_overuse_after
            == object_round.predicted_overuse_after
        )
    assert array_result.degraded_households == object_result.degraded_households
    # Mapping equality materialises every lazy outcome and compares it to
    # the eager dict — the strongest per-customer check available.
    assert isinstance(array_result.customer_outcomes, ColumnarOutcomes)
    assert array_result.customer_outcomes == object_result.customer_outcomes
    assert (
        array_result.total_customer_surplus
        == object_result.total_customer_surplus
    )
    assert array_result.participation_rate == object_result.participation_rate


def run_both_modes(make_scenario, fault_plan=None, seed=0) -> tuple:
    """Run the fast session in object and array round modes independently."""
    object_session = FastSession(
        make_scenario(), seed=seed, fault_plan=fault_plan, rounds="object"
    )
    object_result = object_session.run()
    array_session = FastSession(
        make_scenario(), seed=seed, fault_plan=fault_plan, rounds="array"
    )
    array_result = array_session.run()
    return object_result, array_result


class TestArrayObjectEquivalence:
    """The matrix: three stock methods × both stock bidding policies."""

    @pytest.mark.parametrize("method_name", sorted(METHOD_FACTORIES))
    @pytest.mark.parametrize("num_households", [6, 25])
    def test_matrix(self, method_name, num_households):
        factory = METHOD_FACTORIES[method_name]

        def make():
            return synthetic_scenario(
                num_households=num_households, seed=3, method=factory()
            )

        object_result, array_result = run_both_modes(make)
        assert_array_equivalent(object_result, array_result)

    def test_paper_prototype(self):
        object_result, array_result = run_both_modes(paper_prototype_scenario)
        assert_array_equivalent(object_result, array_result)
        assert array_result.rounds == 3

    def test_non_stock_policy_falls_back_to_object_rounds(self):
        # A non-stock acceptance policy may redefine per-bid semantics, so
        # the session must refuse the array contract and run object rounds —
        # correctness first, the mode is recorded for observability.
        def make():
            return synthetic_scenario(
                num_households=10,
                seed=3,
                method=RewardTablesMethod(
                    max_reward=60.0,
                    beta_controller=ConstantBeta(2.0),
                    acceptance_policy=SelectiveBidAcceptance(safety_margin=0.05),
                ),
            )

        requested = FastSession(make(), seed=0, rounds="array")
        requested_result = requested.run()
        assert requested_result.metadata["rounds_mode"] == "object"
        baseline_result = FastSession(make(), seed=0).run()
        assert requested_result.customer_outcomes == baseline_result.customer_outcomes
        assert requested_result.total_reward_paid == baseline_result.total_reward_paid

    def test_engine_facade_records_mode_and_kernel_cache(self):
        scenario = synthetic_scenario(num_households=30, seed=5)
        result = run(scenario, config=EngineConfig(rounds="array", seed=0))
        assert result.metadata["rounds_mode"] == "array"
        cache = result.metadata["kernel_cache"]
        assert set(cache) == {"hits", "misses"}
        assert all(isinstance(value, int) for value in cache.values())

    def test_invalid_rounds_mode_rejected(self):
        with pytest.raises(ValueError, match="rounds"):
            FastSession(synthetic_scenario(num_households=4, seed=0), rounds="matrix")


@pytest.mark.chaos
class TestArrayRoundsUnderFaults:
    """Fault masks are keyed by (seed, stream, round), never by round mode."""

    @pytest.mark.parametrize("method_name", sorted(METHOD_FACTORIES))
    def test_chaos_equivalence(self, method_name):
        factory = METHOD_FACTORIES[method_name]

        def make():
            return synthetic_scenario(
                num_households=40, seed=9, method=factory()
            )

        object_result, array_result = run_both_modes(make, fault_plan=CHAOS_PLAN)
        assert_array_equivalent(object_result, array_result)
        assert array_result.metadata["faults"] == object_result.metadata["faults"]

    def test_faults_actually_degrade_someone(self):
        # The chaos matrix is vacuous if the plan never fires: pin that this
        # plan degrades at least one household at this size and seed.
        def make():
            return synthetic_scenario(num_households=40, seed=9)

        _, array_result = run_both_modes(make, fault_plan=CHAOS_PLAN)
        assert array_result.degraded_households > 0


class TestShardedArrayRounds:
    def test_sharded_matches_object_oracle(self):
        def make():
            return synthetic_scenario(num_households=64, seed=6)

        object_result = FastSession(make(), seed=0).run()
        sharded = ShardedSession(make(), seed=0, shards=4, rounds="array")
        array_result = sharded.run()
        assert sharded.num_shards == 4
        assert_array_equivalent(object_result, array_result)
        # The shard reconciliation diagnostics ride the same state arrays in
        # both modes: one reconciled estimate per evaluated round.
        assert len(sharded.reconciled_overuses()) == len(array_result.record.rounds)

    @pytest.mark.chaos
    def test_sharded_chaos_matches_unsharded_array_rounds(self):
        def make():
            return synthetic_scenario(num_households=64, seed=6)

        solo = FastSession(make(), seed=0, fault_plan=CHAOS_PLAN, rounds="array")
        solo_result = solo.run()
        sharded = ShardedSession(
            make(), seed=0, shards=4, fault_plan=CHAOS_PLAN, rounds="array"
        )
        sharded_result = sharded.run()
        assert sharded_result.customer_outcomes == solo_result.customer_outcomes
        assert sharded_result.degraded_households == solo_result.degraded_households


# -- the lazy columnar view ---------------------------------------------------------

outcome_columns = st.integers(min_value=0, max_value=12).flatmap(
    lambda size: st.tuples(
        st.just([f"c{i}" for i in range(size)]),
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=size, max_size=size,
        ),
        st.lists(st.booleans(), min_size=size, max_size=size),
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=size, max_size=size,
        ),
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=size, max_size=size,
        ),
        st.lists(
            st.floats(min_value=-50.0, max_value=100.0, allow_nan=False),
            min_size=size, max_size=size,
        ),
    )
)


class TestColumnarOutcomesView:
    @given(columns=outcome_columns)
    @settings(max_examples=60)
    def test_view_equals_eager_dict(self, columns):
        ids, final_bids, awarded, committed, rewards, surpluses = columns
        view = ColumnarOutcomes(
            customer_ids=ids,
            final_bid_cutdowns=np.asarray(final_bids, dtype=float),
            awarded=np.asarray(awarded, dtype=bool),
            committed_cutdowns=np.asarray(committed, dtype=float),
            rewards=np.asarray(rewards, dtype=float),
            surpluses=np.asarray(surpluses, dtype=float),
        )
        eager = {
            customer: CustomerOutcome(
                customer=customer,
                final_bid_cutdown=final_bids[index],
                awarded=awarded[index],
                committed_cutdown=committed[index],
                reward=rewards[index],
                surplus=surpluses[index],
            )
            for index, customer in enumerate(ids)
        }
        assert len(view) == len(eager)
        assert list(view) == list(eager)
        assert view == eager
        assert eager == view
        assert dict(view.items()) == eager
        assert list(view.values()) == list(eager.values())
        for customer in ids:
            assert customer in view
            assert view[customer] == eager[customer]
            assert view.get(customer) == eager[customer]
        assert "nobody" not in view
        assert view.get("nobody") is None
        with pytest.raises(KeyError):
            view["nobody"]

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="column length"):
            ColumnarOutcomes(
                customer_ids=["a", "b"],
                final_bid_cutdowns=np.zeros(2),
                awarded=np.zeros(2, dtype=bool),
                committed_cutdowns=np.zeros(3),
                rewards=np.zeros(2),
                surpluses=np.zeros(2),
            )


# -- the perf invariant -------------------------------------------------------------


@pytest.mark.perf_smoke
class TestArrayRoundsAllocateNoBids:
    """The point of the mode: zero per-round ``Bid`` objects, same answer."""

    @pytest.mark.parametrize(
        "method_name", ["reward_tables", "request_for_bids", "offer"]
    )
    def test_zero_bid_constructions(self, method_name, monkeypatch):
        from repro.negotiation.messages import CutdownBid, OfferResponse, QuantityBid

        constructions = {"count": 0}

        def counting(original_init):
            def construct(self, *args, **kwargs):
                constructions["count"] += 1
                original_init(self, *args, **kwargs)

            return construct

        for bid_class in (CutdownBid, QuantityBid, OfferResponse):
            # Count constructions on the classes themselves (isinstance
            # checks throughout the session must keep working).
            monkeypatch.setattr(
                bid_class, "__init__", counting(bid_class.__init__)
            )
        factory = METHOD_FACTORIES[method_name]

        def make():
            return synthetic_scenario(num_households=50, seed=4, method=factory())

        object_result = FastSession(make(), seed=0).run()
        object_constructions = constructions["count"]
        assert object_constructions > 0  # the oracle pays per-round objects
        constructions["count"] = 0
        array_result = FastSession(make(), seed=0, rounds="array").run()
        assert constructions["count"] == 0
        assert_array_equivalent(object_result, array_result)
