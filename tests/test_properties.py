"""Property-based tests (hypothesis) for the core invariants.

These encode the behavioural properties the companion verification paper
([2]/[7]) establishes for the multi-agent system — monotonicity, boundedness,
convergence — plus structural invariants of the substrate data types.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.load_profile import LoadProfile
from repro.negotiation.formulas import (
    new_reward,
    predicted_overuse,
    predicted_use_with_cutdown,
    update_reward_table,
)
from repro.negotiation.reward_table import (
    DEFAULT_CUTDOWN_GRID,
    CutdownRewardRequirements,
    RewardTable,
)
from repro.negotiation.strategy import HighestAcceptableCutdownBidding
from repro.runtime.events import Event, EventQueue, EventType
from repro.runtime.rng import RandomSource

# -- strategies --------------------------------------------------------------------

finite_positive = st.floats(min_value=0.01, max_value=1e4, allow_nan=False, allow_infinity=False)
fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
rewards = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
betas = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
overuses = st.floats(min_value=-1.0, max_value=2.0, allow_nan=False)


def reward_tables(max_reward: float = 100.0):
    return st.lists(
        st.floats(min_value=0.0, max_value=max_reward, allow_nan=False),
        min_size=len(DEFAULT_CUTDOWN_GRID),
        max_size=len(DEFAULT_CUTDOWN_GRID),
    ).map(lambda values: RewardTable(dict(zip(DEFAULT_CUTDOWN_GRID, sorted(values)))))


def requirement_tables():
    return st.lists(
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
        min_size=len(DEFAULT_CUTDOWN_GRID),
        max_size=len(DEFAULT_CUTDOWN_GRID),
    ).map(
        lambda values: CutdownRewardRequirements(
            dict(zip(DEFAULT_CUTDOWN_GRID, sorted(values))), max_feasible_cutdown=1.0
        )
    )


# -- Section 6 formulae ---------------------------------------------------------------


class TestFormulaProperties:
    @given(predicted=finite_positive, allowed=finite_positive, cutdown=fractions)
    def test_predicted_use_with_cutdown_bounds(self, predicted, allowed, cutdown):
        value = predicted_use_with_cutdown(predicted, allowed, cutdown)
        assert 0.0 <= value <= predicted + 1e-9

    @given(predicted=finite_positive, allowed=finite_positive,
           low=fractions, high=fractions)
    def test_predicted_use_monotone_in_cutdown(self, predicted, allowed, low, high):
        low, high = min(low, high), max(low, high)
        assert predicted_use_with_cutdown(predicted, allowed, high) <= (
            predicted_use_with_cutdown(predicted, allowed, low) + 1e-9
        )

    @given(
        uses=st.lists(finite_positive, min_size=1, max_size=10),
        cutdown=fractions,
        normal=finite_positive,
    )
    def test_overuse_decreases_with_uniform_cutdown(self, uses, cutdown, normal):
        predicted = {f"c{i}": u for i, u in enumerate(uses)}
        without = predicted_overuse(predicted, predicted, {}, normal)
        with_cut = predicted_overuse(
            predicted, predicted, {c: cutdown for c in predicted}, normal
        )
        assert with_cut <= without + 1e-9

    @given(reward=rewards, beta=betas, overuse=overuses)
    def test_new_reward_monotone_and_bounded(self, reward, beta, overuse):
        max_reward = max(reward, 1.0) + 10.0
        updated = new_reward(reward, beta, overuse, max_reward)
        assert updated >= reward - 1e-12
        assert updated <= max_reward + 1e-9

    @given(reward=st.floats(min_value=0.0, max_value=50.0), beta=betas,
           overuse=st.floats(min_value=0.0, max_value=2.0))
    def test_new_reward_fixed_point_at_max(self, reward, beta, overuse):
        # Once a reward reaches max_reward it stays there exactly.
        assert new_reward(50.0, beta, overuse, 50.0) == 50.0
        __ = reward  # reward only used to vary the example space

    @given(table=reward_tables(50.0), beta=betas,
           overuse=st.floats(min_value=0.0, max_value=2.0))
    def test_table_update_is_monotone_concession(self, table, beta, overuse):
        updated = update_reward_table(table, beta, overuse, 50.0)
        assert updated.at_least_as_generous_as(table)
        assert set(updated.entries) == set(table.entries)

    @given(table=reward_tables(50.0), beta=betas,
           overuse=st.floats(min_value=0.0, max_value=2.0))
    def test_table_update_preserves_cutdown_monotonicity(self, table, beta, overuse):
        # The constructor strategy sorts rewards, so the input is monotone;
        # the logistic update must preserve that ordering.
        updated = update_reward_table(table, beta, overuse, 50.0)
        assert updated.is_monotone_in_cutdown()


# -- customer behaviour -----------------------------------------------------------------


class TestCustomerProperties:
    @given(table=reward_tables(), requirements=requirement_tables())
    def test_highest_acceptable_cutdown_is_acceptable(self, table, requirements):
        cutdown = requirements.highest_acceptable_cutdown(table)
        if cutdown > 0:
            assert requirements.is_acceptable(cutdown, table.entries[cutdown])

    @given(table=reward_tables(), requirements=requirement_tables(), extra=rewards)
    def test_more_generous_table_never_lowers_the_bid(self, table, requirements, extra):
        policy = HighestAcceptableCutdownBidding()
        first = policy.choose_cutdown(table, requirements)
        better = RewardTable({c: r + extra for c, r in table.entries.items()})
        second = policy.choose_cutdown(better, requirements, previous_bid=first)
        assert second >= first

    @given(requirements=requirement_tables(), cutdown=fractions)
    def test_interpolated_requirement_nonnegative(self, requirements, cutdown):
        assert requirements.interpolated_requirement(cutdown) >= 0.0


# -- load profiles ------------------------------------------------------------------------


class TestLoadProfileProperties:
    @given(values=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=48))
    def test_energy_nonnegative_and_peak_bounds_average(self, values):
        profile = LoadProfile.from_sequence(values)
        assert profile.total_energy() >= 0.0
        assert profile.average() <= profile.peak() + 1e-9
        assert 0.0 <= profile.load_factor() <= 1.0 + 1e-9

    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=24, max_size=24),
        factor=st.floats(min_value=0.0, max_value=5.0),
    )
    def test_scaling_scales_energy(self, values, factor):
        profile = LoadProfile.from_sequence(values)
        scaled = profile.scaled(factor)
        assert scaled.total_energy() == pytest.approx(profile.total_energy() * factor)

    @given(
        a=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=24, max_size=24),
        b=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=24, max_size=24),
    )
    def test_addition_adds_energy(self, a, b):
        pa, pb = LoadProfile.from_sequence(a), LoadProfile.from_sequence(b)
        assert (pa + pb).total_energy() == pytest.approx(pa.total_energy() + pb.total_energy())

    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=24, max_size=24),
        ceiling=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_clipping_never_raises_load(self, values, ceiling):
        profile = LoadProfile.from_sequence(values)
        clipped = profile.clipped(ceiling)
        assert clipped.peak() <= min(profile.peak(), ceiling) + 1e-9


# -- runtime -------------------------------------------------------------------------------


class TestRuntimeProperties:
    @given(times=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_event_queue_pops_in_time_order(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(Event(time, EventType.CALLBACK))
        popped = [queue.pop().time for __ in range(len(times))]
        assert popped == sorted(popped)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_source_reproducible(self, seed):
        assert RandomSource(seed).uniform() == RandomSource(seed).uniform()

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           low=st.integers(min_value=-100, max_value=100),
           span=st.integers(min_value=0, max_value=100))
    def test_integer_draws_within_bounds(self, seed, low, span):
        value = RandomSource(seed).integer(low, low + span)
        assert low <= value <= low + span

