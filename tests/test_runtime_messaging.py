"""Tests for repro.runtime.messaging."""

from __future__ import annotations

import pytest

from repro.runtime.messaging import Mailbox, Message, MessageBus, Performative


def make_message(sender="a", receiver="b", performative=Performative.INFORM, **kwargs):
    return Message(sender=sender, receiver=receiver, performative=performative, **kwargs)


class TestMailbox:
    def test_deliver_and_collect_fifo(self):
        mailbox = Mailbox("b")
        mailbox.deliver(make_message(content=1))
        mailbox.deliver(make_message(content=2))
        assert [m.content for m in mailbox.collect()] == [1, 2]
        assert len(mailbox) == 0

    def test_deliver_to_wrong_owner_rejected(self):
        mailbox = Mailbox("someone_else")
        with pytest.raises(ValueError):
            mailbox.deliver(make_message(receiver="b"))

    def test_collect_matching_filters_and_preserves_rest(self):
        mailbox = Mailbox("b")
        mailbox.deliver(make_message(performative=Performative.ANNOUNCE, conversation_id="n1"))
        mailbox.deliver(make_message(performative=Performative.BID, conversation_id="n1"))
        mailbox.deliver(make_message(performative=Performative.ANNOUNCE, conversation_id="n2"))
        matched = mailbox.collect_matching(Performative.ANNOUNCE, conversation_id="n1")
        assert len(matched) == 1
        assert len(mailbox) == 2

    def test_peek(self):
        mailbox = Mailbox("b")
        assert mailbox.peek() is None
        mailbox.deliver(make_message(content="x"))
        assert mailbox.peek().content == "x"
        assert len(mailbox) == 1


class TestMessageBus:
    def test_register_and_send(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        sent = bus.send(make_message(content="hello"))
        assert sent.message_id == 0
        assert bus.mailbox("b").collect()[0].content == "hello"

    def test_duplicate_registration_rejected(self):
        bus = MessageBus()
        bus.register("a")
        with pytest.raises(ValueError):
            bus.register("a")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MessageBus().register("")

    def test_unknown_sender_or_receiver_rejected(self):
        bus = MessageBus()
        bus.register("a")
        with pytest.raises(KeyError):
            bus.send(make_message(sender="a", receiver="ghost"))
        bus.register("b")
        with pytest.raises(KeyError):
            bus.send(make_message(sender="ghost", receiver="b"))

    def test_broadcast_sends_one_message_per_receiver(self):
        bus = MessageBus()
        for name in ("ua", "c1", "c2", "c3"):
            bus.register(name)
        sent = bus.broadcast("ua", ["c1", "c2", "c3"], Performative.ANNOUNCE, "table", "n1", 0)
        assert len(sent) == 3
        assert bus.message_count() == 3
        assert all(len(bus.mailbox(c).collect()) == 1 for c in ("c1", "c2", "c3"))

    def test_log_and_histogram(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        bus.send(make_message(performative=Performative.ANNOUNCE))
        bus.send(make_message(performative=Performative.BID))
        bus.send(make_message(performative=Performative.BID))
        histogram = bus.messages_by_performative()
        assert histogram[Performative.BID] == 2
        assert histogram[Performative.ANNOUNCE] == 1

    def test_conversation_filter(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        bus.send(make_message(conversation_id="n1"))
        bus.send(make_message(conversation_id="n2"))
        assert len(bus.conversation("n1")) == 1

    def test_observer_called_for_every_message(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        seen = []
        bus.add_observer(lambda m: seen.append(m.message_id))
        bus.send(make_message())
        bus.send(make_message())
        assert seen == [0, 1]

    def test_message_ids_increase(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        ids = [bus.send(make_message()).message_id for _ in range(5)]
        assert ids == sorted(ids) and len(set(ids)) == 5

    def test_unregister(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        bus.unregister("b")
        assert not bus.is_registered("b")
        with pytest.raises(KeyError):
            bus.mailbox("b")

    def test_clear_log_keeps_mailboxes(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        bus.send(make_message())
        bus.clear_log()
        assert bus.message_count() == 0
        assert len(bus.mailbox("b")) == 1

    def test_message_immutability_and_with_id(self):
        message = make_message()
        stamped = message.with_id(7)
        assert stamped.message_id == 7
        assert message.message_id == -1
        assert stamped.sender == message.sender


class TestStreamingCounters:
    def test_counters_survive_disabled_retention(self):
        bus = MessageBus(retain_log=False)
        bus.register("a")
        bus.register("b")
        bus.send(make_message(performative=Performative.ANNOUNCE))
        bus.send(make_message(performative=Performative.BID))
        bus.send(make_message(performative=Performative.BID))
        assert len(bus.log) == 0
        assert not bus.retains_log
        assert bus.message_count() == 3
        assert bus.messages_by_performative() == {
            Performative.ANNOUNCE: 1,
            Performative.BID: 2,
        }

    def test_bounded_retention_keeps_recent_messages_and_full_counters(self):
        bus = MessageBus(max_log_entries=2)
        bus.register("a")
        bus.register("b")
        for index in range(5):
            bus.send(make_message(content=index))
        assert bus.message_count() == 5
        assert [m.content for m in bus.log] == [3, 4]
        assert bus.messages_by_performative() == {Performative.INFORM: 5}

    def test_broadcast_updates_counters_and_delivers(self):
        bus = MessageBus()
        for name in ("ua", "c1", "c2", "c3"):
            bus.register(name)
        seen = []
        bus.add_observer(lambda m: seen.append(m.message_id))
        sent = bus.broadcast("ua", ["c1", "c2", "c3"], Performative.ANNOUNCE, "t", "n1", 0)
        assert [m.message_id for m in sent] == [0, 1, 2]
        assert seen == [0, 1, 2]
        assert bus.message_count() == 3
        assert bus.messages_by_performative() == {Performative.ANNOUNCE: 3}
        assert all(len(bus.mailbox(c)) == 1 for c in ("c1", "c2", "c3"))
        assert [m.receiver for m in sent] == ["c1", "c2", "c3"]
        assert all(m.sender == "ua" for m in sent)

    def test_broadcast_rejects_unknown_sender_and_receiver(self):
        bus = MessageBus()
        bus.register("ua")
        bus.register("c1")
        with pytest.raises(KeyError):
            bus.broadcast("ghost", ["c1"], Performative.ANNOUNCE, None)
        with pytest.raises(KeyError):
            bus.broadcast("ua", ["c1", "ghost"], Performative.ANNOUNCE, None)

    def test_failed_broadcast_delivers_and_counts_nothing(self):
        # All receivers are validated up front: a broadcast containing an
        # unknown receiver must not leave partially delivered (and
        # uncounted) messages behind.
        bus = MessageBus()
        bus.register("ua")
        bus.register("c1")
        with pytest.raises(KeyError):
            bus.broadcast("ua", ["c1", "ghost"], Performative.ANNOUNCE, None)
        assert len(bus.mailbox("c1")) == 0
        assert bus.message_count() == 0
        assert len(bus.log) == 0

    def test_bounded_log_view_supports_reversed_slices(self):
        bus = MessageBus(max_log_entries=3)
        bus.register("a")
        bus.register("b")
        for index in range(5):
            bus.send(make_message(content=index))
        assert [m.content for m in bus.log[::-1]] == [4, 3, 2]
        assert [m.content for m in bus.log[-2:]] == [3, 4]

    def test_clear_log_resets_counters(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        bus.send(make_message())
        bus.clear_log()
        assert bus.message_count() == 0
        assert bus.messages_by_performative() == {}

    def test_log_view_is_live_and_indexable(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        view = bus.log
        bus.send(make_message(content="x"))
        bus.send(make_message(content="y"))
        assert len(view) == 2
        assert view[0].content == "x"
        assert [m.content for m in view[1:]] == ["y"]
        assert not hasattr(view, "append")


class TestMailboxNoMatchFastPath:
    def test_collect_matching_without_match_keeps_queue_untouched(self):
        mailbox = Mailbox("b")
        mailbox.deliver(make_message(performative=Performative.INFORM))
        mailbox.deliver(make_message(performative=Performative.REPLY))
        queue_before = mailbox._queue
        assert mailbox.collect_matching(Performative.ANNOUNCE) == []
        assert mailbox._queue is queue_before
        assert len(mailbox) == 2


class TestCountersSnapshotConcurrency:
    def test_snapshot_matches_counters_single_threaded(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        for _ in range(3):
            bus.send(make_message())
        bus.send(make_message(performative=Performative.ANNOUNCE))
        total, counts = bus.counters_snapshot()
        assert total == bus.message_count() == 4
        assert counts == bus.messages_by_performative()

    def test_snapshot_is_consistent_under_concurrent_sends(self):
        # The serving layer polls these counters from a different thread than
        # the one running the negotiation.  Every snapshot must be internally
        # consistent: the total equals the histogram's sum even while the
        # writer is mid-burst (the seqlock retries torn reads).
        import threading

        bus = MessageBus(retain_log=False)
        for name in ("utility", "c0", "c1", "c2"):
            bus.register(name)
        stop = threading.Event()
        failures: list[str] = []

        def writer():
            performatives = [
                Performative.ANNOUNCE, Performative.BID,
                Performative.AWARD, Performative.INFORM,
            ]
            for i in range(4000):
                performative = performatives[i % len(performatives)]
                bus.send(make_message(
                    sender="utility", receiver=f"c{i % 3}",
                    performative=performative,
                ))
                if i % 400 == 0:
                    bus.broadcast(
                        sender="utility", receivers=["c0", "c1", "c2"],
                        performative=Performative.ANNOUNCE, content=i,
                    )
            stop.set()

        def reader():
            while not stop.is_set():
                total, counts = bus.counters_snapshot()
                if total != sum(counts.values()):
                    failures.append(f"torn snapshot: {total} != {counts}")
                    return

        writer_thread = threading.Thread(target=writer)
        reader_threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in reader_threads:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=60)
        for thread in reader_threads:
            thread.join(timeout=60)
        assert not failures, failures[0]
        total, counts = bus.counters_snapshot()
        assert total == sum(counts.values()) == bus.message_count()
