"""Tests for repro.runtime.messaging."""

from __future__ import annotations

import pytest

from repro.runtime.messaging import Mailbox, Message, MessageBus, Performative


def make_message(sender="a", receiver="b", performative=Performative.INFORM, **kwargs):
    return Message(sender=sender, receiver=receiver, performative=performative, **kwargs)


class TestMailbox:
    def test_deliver_and_collect_fifo(self):
        mailbox = Mailbox("b")
        mailbox.deliver(make_message(content=1))
        mailbox.deliver(make_message(content=2))
        assert [m.content for m in mailbox.collect()] == [1, 2]
        assert len(mailbox) == 0

    def test_deliver_to_wrong_owner_rejected(self):
        mailbox = Mailbox("someone_else")
        with pytest.raises(ValueError):
            mailbox.deliver(make_message(receiver="b"))

    def test_collect_matching_filters_and_preserves_rest(self):
        mailbox = Mailbox("b")
        mailbox.deliver(make_message(performative=Performative.ANNOUNCE, conversation_id="n1"))
        mailbox.deliver(make_message(performative=Performative.BID, conversation_id="n1"))
        mailbox.deliver(make_message(performative=Performative.ANNOUNCE, conversation_id="n2"))
        matched = mailbox.collect_matching(Performative.ANNOUNCE, conversation_id="n1")
        assert len(matched) == 1
        assert len(mailbox) == 2

    def test_peek(self):
        mailbox = Mailbox("b")
        assert mailbox.peek() is None
        mailbox.deliver(make_message(content="x"))
        assert mailbox.peek().content == "x"
        assert len(mailbox) == 1


class TestMessageBus:
    def test_register_and_send(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        sent = bus.send(make_message(content="hello"))
        assert sent.message_id == 0
        assert bus.mailbox("b").collect()[0].content == "hello"

    def test_duplicate_registration_rejected(self):
        bus = MessageBus()
        bus.register("a")
        with pytest.raises(ValueError):
            bus.register("a")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MessageBus().register("")

    def test_unknown_sender_or_receiver_rejected(self):
        bus = MessageBus()
        bus.register("a")
        with pytest.raises(KeyError):
            bus.send(make_message(sender="a", receiver="ghost"))
        bus.register("b")
        with pytest.raises(KeyError):
            bus.send(make_message(sender="ghost", receiver="b"))

    def test_broadcast_sends_one_message_per_receiver(self):
        bus = MessageBus()
        for name in ("ua", "c1", "c2", "c3"):
            bus.register(name)
        sent = bus.broadcast("ua", ["c1", "c2", "c3"], Performative.ANNOUNCE, "table", "n1", 0)
        assert len(sent) == 3
        assert bus.message_count() == 3
        assert all(len(bus.mailbox(c).collect()) == 1 for c in ("c1", "c2", "c3"))

    def test_log_and_histogram(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        bus.send(make_message(performative=Performative.ANNOUNCE))
        bus.send(make_message(performative=Performative.BID))
        bus.send(make_message(performative=Performative.BID))
        histogram = bus.messages_by_performative()
        assert histogram[Performative.BID] == 2
        assert histogram[Performative.ANNOUNCE] == 1

    def test_conversation_filter(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        bus.send(make_message(conversation_id="n1"))
        bus.send(make_message(conversation_id="n2"))
        assert len(bus.conversation("n1")) == 1

    def test_observer_called_for_every_message(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        seen = []
        bus.add_observer(lambda m: seen.append(m.message_id))
        bus.send(make_message())
        bus.send(make_message())
        assert seen == [0, 1]

    def test_message_ids_increase(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        ids = [bus.send(make_message()).message_id for _ in range(5)]
        assert ids == sorted(ids) and len(set(ids)) == 5

    def test_unregister(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        bus.unregister("b")
        assert not bus.is_registered("b")
        with pytest.raises(KeyError):
            bus.mailbox("b")

    def test_clear_log_keeps_mailboxes(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        bus.send(make_message())
        bus.clear_log()
        assert bus.message_count() == 0
        assert len(bus.mailbox("b")) == 1

    def test_message_immutability_and_with_id(self):
        message = make_message()
        stamped = message.with_id(7)
        assert stamped.message_id == 7
        assert message.message_id == -1
        assert stamped.sender == message.sender
