"""Chaos suite: the negotiation runtime under deterministic fault injection.

Three contracts, pinned across the engine backends:

* **Zero-rate identity** — a :class:`~repro.runtime.faults.FaultPlan` whose
  rates are all zero is indistinguishable from disabled injection: identical
  summaries, identical per-customer outcomes, ``degraded_households == 0``.
  The chaos machinery itself must never perturb fault-free results.
* **Graceful degradation** — under arbitrary fault plans (random rates,
  seeds and deadlines via hypothesis) a run never crashes, still reports an
  outcome for *every* customer, keeps its surplus/reward accounting
  self-consistent, and is bit-reproducible from the same plan.
* **Shard recovery** — injected shard-worker failures are recovered (inline
  retry, then the per-customer oracle decomposition) bit-identically to the
  fault-free run, with every recovery recorded in the diagnostics.

The suite carries the ``chaos`` marker so CI can run it standalone
(``pytest -m chaos``); it is small enough to stay in tier-1 as well.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, FaultPlan, campaign, run, scenario
from repro.core.fast_session import FastSession
from repro.core.session import NegotiationSession
from repro.core.sharded_session import ShardedSession
from repro.core.modes import validate_shard_count, validate_shard_threshold
from repro.core.scenario import synthetic_scenario
from repro.desire.errors import DesireError, UnknownAgentError
from repro.experiments.campaign_bench import CONDITION_CYCLE, build_campaign_planner
from repro.runtime.faults import FaultInjector
from repro.runtime.messaging import Message, MessageBus, Performative

pytestmark = pytest.mark.chaos

#: One scenario shared by every example: hypothesis tests must not rebuild
#: populations per draw, and sessions never mutate their scenario.
CHAOS_SCENARIO = synthetic_scenario(num_households=16, seed=3)

rates = st.floats(min_value=0.0, max_value=0.3)
fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    message_drop_rate=rates,
    message_delay_rate=rates,
    crash_rate=rates,
    max_send_attempts=st.integers(min_value=1, max_value=4),
    message_delay_rounds=st.integers(min_value=1, max_value=4),
    bid_deadline_rounds=st.integers(min_value=1, max_value=4),
)


def run_with_plan(backend: str, plan: FaultPlan | None):
    config = EngineConfig(fault_plan=plan) if plan is not None else EngineConfig()
    return run(CHAOS_SCENARIO, backend=backend, config=config)


def assert_equivalent_ignoring_metadata(result, reference):
    """Bit-identity on everything the backends promise (metadata may differ:
    a zero-rate chaos run legitimately records its fault report)."""
    assert result.summary() == reference.summary()
    assert result.customer_outcomes == reference.customer_outcomes
    assert result.degraded_households == reference.degraded_households


class TestZeroRateIdentity:
    """A zero-rate plan takes the exact code paths of disabled injection."""

    @pytest.mark.parametrize("backend", ["object", "vectorized", "sharded"])
    def test_zero_rate_plan_is_bit_identical_to_no_plan(self, backend):
        reference = run_with_plan(backend, None)
        chaos = run_with_plan(backend, FaultPlan(seed=99))
        assert_equivalent_ignoring_metadata(chaos, reference)
        assert chaos.degraded_households == 0
        injected = chaos.metadata["faults"]["injected"]
        assert all(count == 0 for count in injected.values())

    def test_zero_rate_plan_reports_itself(self):
        result = run_with_plan("object", FaultPlan(seed=7))
        assert result.metadata["faults"]["plan"]["seed"] == 7
        assert not FaultPlan(seed=7).enabled


class TestChaosProperties:
    """Random fault plans: degrade, never crash, keep the books straight."""

    @given(plan=fault_plans, backend=st.sampled_from(["object", "vectorized"]))
    @settings(max_examples=15, deadline=None)
    def test_no_crash_and_outcome_completeness(self, plan, backend):
        result = run_with_plan(backend, plan)
        # Every customer gets an outcome, degraded or not.
        expected = {spec.customer_id for spec in CHAOS_SCENARIO.population.specs}
        assert set(result.customer_outcomes) == expected
        assert 0 <= result.degraded_households <= len(expected)
        # Surplus/reward accounting stays self-consistent under faults.
        outcomes = result.customer_outcomes.values()
        assert result.total_reward_paid == pytest.approx(
            sum(o.reward for o in outcomes)
        )
        assert result.total_customer_surplus == pytest.approx(
            sum(o.surplus for o in outcomes)
        )
        for outcome in outcomes:
            if not outcome.awarded:
                assert outcome.reward == 0.0
        # The plan and every injected fault are on the record.
        report = result.metadata["faults"]
        assert report["plan"] == plan.as_dict()
        assert all(count >= 0 for count in report["injected"].values())

    @given(plan=fault_plans)
    @settings(max_examples=8, deadline=None)
    def test_chaos_runs_are_reproducible(self, plan):
        first = run_with_plan("object", plan)
        second = run_with_plan("object", plan)
        assert first.summary() == second.summary()
        assert first.customer_outcomes == second.customer_outcomes
        assert first.metadata["faults"] == second.metadata["faults"]

    def test_fixed_chaos_plan_degrades_without_aborting(self):
        plan = FaultPlan(
            seed=3, message_drop_rate=0.15, message_delay_rate=0.1, crash_rate=0.05
        )
        result = run_with_plan("object", plan)
        injected = result.metadata["faults"]["injected"]
        assert injected["agent_crashes"] > 0
        assert injected["send_retries"] > 0
        assert len(result.customer_outcomes) == 16


class TestShardRecovery:
    """Injected shard failures recover bit-identically to the fault-free run."""

    @pytest.mark.parametrize("rate", [0.5, 1.0])
    def test_recovered_run_is_bit_identical(self, rate):
        reference = run(
            CHAOS_SCENARIO, backend="sharded", config=EngineConfig(shards=2)
        )
        chaos = run(
            CHAOS_SCENARIO,
            backend="sharded",
            config=EngineConfig(
                shards=2, fault_plan=FaultPlan(seed=5, shard_failure_rate=rate)
            ),
        )
        assert_equivalent_ignoring_metadata(chaos, reference)
        recoveries = chaos.metadata["faults"]["shard_recoveries"]
        assert recoveries, "a rate this high must have injected failures"
        assert {event["stage"] for event in recoveries} <= {"inline_retry", "oracle"}
        injected = chaos.metadata["faults"]["injected"]
        assert injected["shard_failures_injected"] == len(recoveries) + injected[
            "shard_oracle_fallbacks"
        ]

    def test_rate_one_exhausts_retries_into_the_oracle(self):
        chaos = run(
            CHAOS_SCENARIO,
            backend="sharded",
            config=EngineConfig(
                shards=2, fault_plan=FaultPlan(seed=5, shard_failure_rate=1.0)
            ),
        )
        injected = chaos.metadata["faults"]["injected"]
        assert injected["shard_inline_retries"] == 0
        assert injected["shard_oracle_fallbacks"] > 0


class TestUnknownAgentError:
    def test_send_to_unregistered_receiver(self):
        bus = MessageBus()
        bus.register("utility")
        with pytest.raises(UnknownAgentError) as excinfo:
            bus.send(
                Message(
                    sender="utility", receiver="ghost", performative=Performative.INFORM
                )
            )
        error = excinfo.value
        assert error.agent_name == "ghost"
        assert error.registered_count == 1
        assert "ghost" in str(error)
        # Dual inheritance keeps historical KeyError handling working.
        assert isinstance(error, KeyError)
        assert isinstance(error, DesireError)

    def test_mailbox_lookup_names_the_agent(self):
        bus = MessageBus()
        with pytest.raises(UnknownAgentError, match="0 agents registered"):
            bus.mailbox("nobody")


class TestConfigValidation:
    def test_engine_config_rejects_bad_shard_knobs(self):
        with pytest.raises(ValueError, match="positive worker count"):
            EngineConfig(shards=0)
        with pytest.raises(ValueError, match="positive population size"):
            EngineConfig(shard_threshold=0)
        with pytest.raises(ValueError, match="FaultPlan"):
            EngineConfig(fault_plan={"seed": 1})

    def test_validators_accept_canonical_values(self):
        assert validate_shard_count(None) is None
        assert validate_shard_count(4) == 4
        assert validate_shard_threshold(100) == 100

    def test_fault_plan_validates_rates_and_budgets(self):
        with pytest.raises(ValueError, match="message_drop_rate"):
            FaultPlan(message_drop_rate=1.5)
        with pytest.raises(ValueError, match="max_send_attempts"):
            FaultPlan(max_send_attempts=0)
        with pytest.raises(ValueError, match="bid_deadline_rounds"):
            FaultPlan(bid_deadline_rounds=0)
        assert FaultPlan(message_drop_rate=0.5, max_send_attempts=2).message_loss_rate == 0.25

    def test_injector_draws_are_order_independent(self):
        injector = FaultInjector(FaultPlan(seed=11, crash_rate=0.5))
        injector.set_crashable({"customer_3"})
        first = injector.should_crash("customer_3", 4)
        again = FaultInjector(FaultPlan(seed=11, crash_rate=0.5))
        again.set_crashable({"customer_3"})
        again.should_crash("customer_3", 99)  # unrelated draw in between
        assert again.should_crash("customer_3", 4) == first


class TestChaosCampaignSmoke:
    """The CI chaos stage: a fixed-seed fault plan over a 300-household campaign."""

    def test_campaign_survives_fixed_fault_plan(self):
        plan = FaultPlan(
            seed=17, message_drop_rate=0.1, message_delay_rate=0.1, crash_rate=0.03
        )
        result = campaign(
            build_campaign_planner(300, seed=7),
            4,
            conditions=CONDITION_CYCLE,
            config=EngineConfig(fault_plan=plan),
            warmup_days=2,
            seed=7,
        )
        assert result.num_days == 4
        assert "failed_day" not in result.metadata
        for day in result.days:
            if day.outcome is not None and day.outcome.negotiation is not None:
                report = day.outcome.negotiation.metadata["faults"]
                assert report["plan"]["seed"] == 17
