"""Tests for repro.runtime.events and the scheduler."""

from __future__ import annotations

import pytest

from repro.runtime.clock import SimulationClock
from repro.runtime.events import Event, EventQueue, EventType
from repro.runtime.scheduler import Scheduler


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(Event(5.0, EventType.AGENT_STEP))
        queue.push(Event(1.0, EventType.AGENT_STEP))
        queue.push(Event(3.0, EventType.AGENT_STEP))
        assert [queue.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_ties_broken_by_priority_then_insertion(self):
        queue = EventQueue()
        late = queue.push(Event(1.0, EventType.AGENT_STEP, target="low", priority=5))
        first = queue.push(Event(1.0, EventType.AGENT_STEP, target="a", priority=0))
        second = queue.push(Event(1.0, EventType.AGENT_STEP, target="b", priority=0))
        order = [queue.pop().target for _ in range(3)]
        assert order == ["a", "b", "low"]

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push(Event(0.0, EventType.CALLBACK))
        assert queue and len(queue) == 1

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(Event(2.0, EventType.CALLBACK))
        assert queue.peek().time == 2.0
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
        with pytest.raises(IndexError):
            EventQueue().peek()

    def test_cancel_pending_event(self):
        queue = EventQueue()
        keep = queue.push(Event(1.0, EventType.CALLBACK, target="keep"))
        drop = queue.push(Event(2.0, EventType.CALLBACK, target="drop"))
        assert queue.cancel(drop) is True
        assert len(queue) == 1
        remaining = queue.drain()
        assert [e.target for e in remaining] == ["keep"]

    def test_cancel_unknown_event_returns_false(self):
        queue = EventQueue()
        event = Event(1.0, EventType.CALLBACK)
        assert queue.cancel(event) is False

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(Event(-1.0, EventType.CALLBACK))

    def test_next_time(self):
        queue = EventQueue()
        assert queue.next_time() is None
        queue.push(Event(4.0, EventType.CALLBACK))
        assert queue.next_time() == 4.0

    def test_clear(self):
        queue = EventQueue()
        queue.push(Event(1.0, EventType.CALLBACK))
        queue.clear()
        assert len(queue) == 0


class TestScheduler:
    def test_schedule_and_run_advances_clock(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(2.0, EventType.CALLBACK, action=lambda e: fired.append(e.time))
        scheduler.schedule_at(1.0, EventType.CALLBACK, action=lambda e: fired.append(e.time))
        dispatched = scheduler.run()
        assert dispatched == 2
        assert fired == [1.0, 2.0]
        assert scheduler.clock.now == 2.0

    def test_schedule_after_uses_relative_delay(self):
        scheduler = Scheduler(SimulationClock(10.0))
        event = scheduler.schedule_after(5.0, EventType.CALLBACK)
        assert event.time == 15.0

    def test_cannot_schedule_in_the_past(self):
        scheduler = Scheduler(SimulationClock(10.0))
        with pytest.raises(ValueError):
            scheduler.schedule_at(5.0, EventType.CALLBACK)
        with pytest.raises(ValueError):
            scheduler.schedule_after(-1.0, EventType.CALLBACK)

    def test_run_until_horizon_leaves_later_events(self):
        scheduler = Scheduler()
        scheduler.schedule_at(1.0, EventType.CALLBACK)
        scheduler.schedule_at(10.0, EventType.CALLBACK)
        dispatched = scheduler.run(until=5.0)
        assert dispatched == 1
        assert len(scheduler.queue) == 1

    def test_run_max_events(self):
        scheduler = Scheduler()
        for i in range(5):
            scheduler.schedule_at(float(i), EventType.CALLBACK)
        assert scheduler.run(max_events=3) == 3
        assert len(scheduler.queue) == 2

    def test_stop_condition(self):
        scheduler = Scheduler()
        seen = []
        for i in range(5):
            scheduler.schedule_at(float(i), EventType.CALLBACK, action=lambda e: seen.append(e.time))
        scheduler.run(stop_condition=lambda: len(seen) >= 2)
        assert len(seen) == 2

    def test_handlers_invoked_by_type(self):
        scheduler = Scheduler()
        handled = []
        scheduler.add_handler(EventType.WORLD_UPDATE, lambda e: handled.append(e.payload))
        scheduler.schedule_at(0.0, EventType.WORLD_UPDATE, payload="weather")
        scheduler.schedule_at(0.0, EventType.AGENT_STEP, payload="ignored")
        scheduler.run()
        assert handled == ["weather"]

    def test_repeating_task_rearms_and_cancels(self):
        scheduler = Scheduler()
        fired = []
        task = scheduler.schedule_repeating(
            first=0.0, interval=1.0, event_type=EventType.CALLBACK,
            action=lambda e: fired.append(e.time),
        )
        scheduler.run(until=3.5)
        assert fired == [0.0, 1.0, 2.0, 3.0]
        task.cancel()
        scheduler.run(until=6.0)
        assert len(fired) <= 5  # at most the already-armed event fires

    def test_repeating_requires_positive_interval(self):
        scheduler = Scheduler()
        with pytest.raises(ValueError):
            scheduler.schedule_repeating(0.0, 0.0, EventType.CALLBACK)

    def test_step_returns_none_when_empty(self):
        assert Scheduler().step() is None
