"""Tests for reward tables and customer requirement tables."""

from __future__ import annotations

import math

import pytest

from repro.negotiation.reward_table import (
    DEFAULT_CUTDOWN_GRID,
    CutdownRewardRequirements,
    RewardTable,
)
from repro.runtime.clock import TimeInterval


class TestRewardTable:
    def test_default_grid_matches_figure_6(self):
        # Figure 6 shows cut-down fractions 0, 0.1, 0.2, ... 1.0.
        assert DEFAULT_CUTDOWN_GRID == tuple(round(0.1 * i, 1) for i in range(11))

    def test_reward_lookup(self):
        table = RewardTable({0.2: 5.0, 0.4: 17.0})
        assert table.reward_for(0.4) == 17.0
        with pytest.raises(KeyError):
            table.reward_for(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RewardTable({})
        with pytest.raises(ValueError):
            RewardTable({0.2: -1.0})
        with pytest.raises(ValueError):
            RewardTable({1.2: 5.0})

    def test_generosity_comparisons(self):
        smaller = RewardTable({0.2: 5.0, 0.4: 17.0})
        equal = RewardTable({0.2: 5.0, 0.4: 17.0})
        larger = RewardTable({0.2: 6.0, 0.4: 17.0})
        different_grid = RewardTable({0.3: 10.0})
        assert equal.at_least_as_generous_as(smaller)
        assert not equal.strictly_more_generous_than(smaller)
        assert larger.strictly_more_generous_than(smaller)
        assert not smaller.at_least_as_generous_as(larger)
        assert not larger.at_least_as_generous_as(different_grid)

    def test_linear_and_convex_constructors(self):
        linear = RewardTable.linear(30.0)
        convex = RewardTable.convex(30.0, exponent=2.0)
        assert linear.reward_for(0.5) == pytest.approx(15.0)
        assert convex.reward_for(0.5) == pytest.approx(7.5)
        assert linear.is_monotone_in_cutdown()
        assert convex.is_monotone_in_cutdown()
        assert linear.max_reward_offered() == pytest.approx(30.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RewardTable.linear(-1.0)
        with pytest.raises(ValueError):
            RewardTable.convex(10.0, exponent=0.0)

    def test_with_interval(self):
        interval = TimeInterval.from_hours(17, 20)
        table = RewardTable({0.4: 17.0}).with_interval(interval)
        assert table.interval == interval

    def test_as_rows_sorted_by_cutdown(self):
        table = RewardTable({0.4: 17.0, 0.1: 2.0})
        rows = table.as_rows()
        assert [row["cutdown"] for row in rows] == [0.1, 0.4]

    def test_cutdown_normalisation(self):
        table = RewardTable({0.30000000001: 9.0})
        assert table.reward_for(0.3) == 9.0


class TestCutdownRewardRequirements:
    def test_paper_figure_8_anchor_points(self):
        requirements = CutdownRewardRequirements.paper_figure_8_customer()
        assert requirements.required_reward_for(0.3) == 10.0
        assert requirements.required_reward_for(0.4) == 21.0
        assert requirements.is_monotone()

    def test_acceptability_rule(self):
        requirements = CutdownRewardRequirements.paper_figure_8_customer()
        assert requirements.is_acceptable(0.3, 10.0)       # ties are acceptable
        assert not requirements.is_acceptable(0.3, 9.99)
        assert requirements.is_acceptable(0.0, 0.0)          # zero cut-down always fine
        assert not requirements.is_acceptable(0.9, 1e9)      # beyond feasibility

    def test_acceptable_and_highest_cutdown_against_figure_6_table(self):
        requirements = CutdownRewardRequirements.paper_figure_8_customer()
        figure_6_table = RewardTable(
            {0.0: 0, 0.1: 2, 0.2: 5, 0.3: 9, 0.4: 17, 0.5: 21,
             0.6: 24, 0.7: 26, 0.8: 27.5, 0.9: 28.5, 1.0: 29}
        )
        acceptable = requirements.acceptable_cutdowns(figure_6_table)
        assert 0.2 in acceptable and 0.3 not in acceptable
        # The paper: "the Customer Agent chooses the highest acceptable
        # cut-down ... namely a cut-down of 0.2" in round 1.
        assert requirements.highest_acceptable_cutdown(figure_6_table) == 0.2

    def test_surplus(self):
        requirements = CutdownRewardRequirements.paper_figure_8_customer()
        assert requirements.surplus(0.4, 24.8) == pytest.approx(3.8)
        assert requirements.surplus(0.0, 100.0) == 0.0
        with pytest.raises(KeyError):
            requirements.surplus(0.45, 10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CutdownRewardRequirements({})
        with pytest.raises(ValueError):
            CutdownRewardRequirements({0.2: -1.0})
        with pytest.raises(ValueError):
            CutdownRewardRequirements({0.2: 1.0}, max_feasible_cutdown=1.5)

    def test_interpolated_requirement_between_grid_points(self):
        requirements = CutdownRewardRequirements.paper_figure_8_customer()
        interpolated = requirements.interpolated_requirement(0.35)
        assert 10.0 < interpolated < 21.0
        assert interpolated == pytest.approx((10.0 + 21.0) / 2, rel=0.01)

    def test_interpolated_requirement_edges(self):
        requirements = CutdownRewardRequirements.paper_figure_8_customer()
        assert requirements.interpolated_requirement(0.0) == 0.0
        assert requirements.interpolated_requirement(0.3) == 10.0
        assert math.isinf(requirements.interpolated_requirement(0.9))

    def test_interpolation_extrapolates_beyond_grid(self):
        requirements = CutdownRewardRequirements(
            {0.1: 1.0, 0.2: 4.0}, max_feasible_cutdown=1.0
        )
        beyond = requirements.interpolated_requirement(0.3)
        assert beyond == pytest.approx(7.0)  # last slope continued

    def test_interpolation_below_grid(self):
        requirements = CutdownRewardRequirements({0.2: 4.0}, max_feasible_cutdown=1.0)
        assert requirements.interpolated_requirement(0.1) == pytest.approx(2.0)

    def test_unknown_cutdown_not_acceptable(self):
        requirements = CutdownRewardRequirements({0.2: 4.0})
        assert not requirements.is_acceptable(0.35, 100.0)
