"""Tests for the Section 6 formulae (repro.negotiation.formulas)."""

from __future__ import annotations

import pytest

from repro.negotiation.formulas import (
    new_reward,
    predicted_overuse,
    predicted_use_with_cutdown,
    relative_overuse,
    reward_increment,
    update_reward_table,
)
from repro.negotiation.reward_table import RewardTable


class TestPredictedUseWithCutdown:
    def test_cutdown_applies_when_allowance_binds(self):
        # Reduced allowance (1-0.4)*10 = 6 < predicted 8, so the cut-down binds.
        assert predicted_use_with_cutdown(8.0, 10.0, 0.4) == pytest.approx(6.0)

    def test_prediction_unchanged_when_allowance_is_loose(self):
        # Reduced allowance (1-0.1)*10 = 9 >= predicted 8, so nothing changes.
        assert predicted_use_with_cutdown(8.0, 10.0, 0.1) == pytest.approx(8.0)

    def test_zero_cutdown_is_identity(self):
        assert predicted_use_with_cutdown(7.5, 7.5, 0.0) == 7.5

    def test_full_cutdown_zeroes_use(self):
        assert predicted_use_with_cutdown(7.5, 7.5, 1.0) == 0.0

    def test_boundary_equality(self):
        # (1-0.2)*10 = 8 == predicted 8: the paper keeps the prediction.
        assert predicted_use_with_cutdown(8.0, 10.0, 0.2) == 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            predicted_use_with_cutdown(-1.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            predicted_use_with_cutdown(1.0, -1.0, 0.1)
        with pytest.raises(ValueError):
            predicted_use_with_cutdown(1.0, 1.0, 1.5)


class TestPredictedOveruse:
    def test_paper_figure_6_initial_overuse(self):
        # 20 customers at 6.75 each = 135 against a normal use of 100 -> 35.
        predicted = {f"c{i}": 6.75 for i in range(20)}
        assert predicted_overuse(predicted, predicted, {}, 100.0) == pytest.approx(35.0)

    def test_cutdowns_reduce_overuse(self):
        predicted = {"a": 10.0, "b": 10.0}
        overuse = predicted_overuse(predicted, predicted, {"a": 0.5}, 15.0)
        assert overuse == pytest.approx(0.0)

    def test_missing_cutdowns_treated_as_zero(self):
        predicted = {"a": 10.0}
        assert predicted_overuse(predicted, predicted, {}, 8.0) == pytest.approx(2.0)

    def test_can_be_negative(self):
        predicted = {"a": 10.0}
        assert predicted_overuse(predicted, predicted, {"a": 0.8}, 8.0) < 0

    def test_missing_allowed_use_rejected(self):
        with pytest.raises(ValueError):
            predicted_overuse({"a": 1.0}, {}, {}, 10.0)

    def test_nonpositive_normal_use_rejected(self):
        with pytest.raises(ValueError):
            predicted_overuse({"a": 1.0}, {"a": 1.0}, {}, 0.0)

    def test_relative_overuse(self):
        assert relative_overuse(35.0, 100.0) == pytest.approx(0.35)
        with pytest.raises(ValueError):
            relative_overuse(1.0, 0.0)


class TestNewReward:
    def test_paper_round_values(self):
        # With beta=2, overuse ratio ~0.3027 and max reward 30, the reward of
        # 17 for a 0.4 cut-down rises to about 21.5 — the calibrated round 2
        # value that makes the Figure 8 customer switch to a 0.4 cut-down.
        updated = new_reward(17.0, 2.0, 0.3027, 30.0)
        assert updated == pytest.approx(21.46, abs=0.05)

    def test_reward_never_exceeds_max(self):
        reward = 17.0
        for __ in range(100):
            reward = new_reward(reward, 5.0, 0.9, 30.0)
        assert reward <= 30.0

    def test_monotone_nondecreasing(self):
        assert new_reward(10.0, 2.0, 0.3, 30.0) >= 10.0

    def test_zero_or_negative_overuse_leaves_reward_unchanged(self):
        assert new_reward(10.0, 2.0, 0.0, 30.0) == 10.0
        assert new_reward(10.0, 2.0, -0.5, 30.0) == 10.0

    def test_higher_overuse_gives_bigger_increment(self):
        low = new_reward(10.0, 2.0, 0.1, 30.0)
        high = new_reward(10.0, 2.0, 0.5, 30.0)
        assert high > low

    def test_increment_shrinks_near_max(self):
        far = new_reward(10.0, 2.0, 0.3, 30.0) - 10.0
        near = new_reward(29.0, 2.0, 0.3, 30.0) - 29.0
        assert near < far

    def test_zero_reward_stays_zero(self):
        assert new_reward(0.0, 2.0, 0.5, 30.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            new_reward(-1.0, 2.0, 0.3, 30.0)
        with pytest.raises(ValueError):
            new_reward(1.0, -2.0, 0.3, 30.0)
        with pytest.raises(ValueError):
            new_reward(1.0, 2.0, 0.3, 0.0)
        with pytest.raises(ValueError):
            new_reward(31.0, 2.0, 0.3, 30.0)


class TestUpdateRewardTable:
    def test_update_is_monotone_concession(self):
        table = RewardTable({0.0: 0.0, 0.2: 5.0, 0.4: 17.0})
        updated = update_reward_table(table, beta=2.0, overuse=0.35, max_reward=30.0)
        assert updated.at_least_as_generous_as(table)
        assert updated.strictly_more_generous_than(table)

    def test_update_preserves_grid_and_interval(self):
        table = RewardTable({0.0: 0.0, 0.2: 5.0, 0.4: 17.0})
        updated = update_reward_table(table, 2.0, 0.35, 30.0)
        assert set(updated.entries) == set(table.entries)
        assert updated.interval == table.interval

    def test_update_preserves_monotonicity_in_cutdown(self):
        table = RewardTable({round(0.1 * i, 1): 2.0 * i for i in range(11)})
        updated = update_reward_table(table, 2.0, 0.4, 30.0)
        assert updated.is_monotone_in_cutdown()

    def test_reward_increment(self):
        old = RewardTable({0.2: 5.0, 0.4: 17.0})
        new = RewardTable({0.2: 6.0, 0.4: 21.0})
        assert reward_increment(old, new) == pytest.approx(4.0)

    def test_reward_increment_requires_same_grid(self):
        with pytest.raises(ValueError):
            reward_increment(RewardTable({0.2: 5.0}), RewardTable({0.4: 17.0}))
