"""Tests for scenarios, negotiation sessions, results and the full pipeline."""

from __future__ import annotations

import pytest

from repro.core.results import CustomerOutcome, NegotiationResult
from repro.core.scenario import (
    PAPER_INITIAL_REWARD_TABLE,
    Scenario,
    paper_prototype_scenario,
    paper_requirement_table,
    synthetic_scenario,
)
from repro.core.session import NegotiationSession
from repro.core.system import LoadBalancingSystem
from repro.grid.production import ProductionModel
from repro.negotiation.methods.offer import OfferMethod
from repro.negotiation.strategy import AdaptiveBeta
from repro.negotiation.termination import TerminationReason


class TestScenarios:
    def test_paper_scenario_matches_figure_6_setup(self, paper_scenario):
        assert paper_scenario.num_customers == 20
        assert paper_scenario.normal_use == 100.0
        assert paper_scenario.initial_overuse == pytest.approx(35.0)
        assert paper_scenario.initial_relative_overuse == pytest.approx(0.35)
        assert PAPER_INITIAL_REWARD_TABLE[0.4] == 17.0

    def test_paper_requirement_table_scaling(self):
        base = paper_requirement_table(1.0)
        doubled = paper_requirement_table(2.0)
        assert doubled.required_reward_for(0.4) == 2 * base.required_reward_for(0.4)
        with pytest.raises(ValueError):
            paper_requirement_table(0.0)

    def test_paper_scenario_beta_override(self):
        scenario = paper_prototype_scenario(beta=0.5)
        assert scenario.method.beta_controller.beta == 0.5

    def test_paper_scenario_accepts_controller(self):
        controller = AdaptiveBeta(initial_beta=1.5)
        scenario = paper_prototype_scenario(beta_controller=controller)
        assert scenario.method.beta_controller is controller

    def test_synthetic_scenario_has_peak_and_interval(self, small_synthetic_scenario):
        assert small_synthetic_scenario.initial_overuse > 0
        assert small_synthetic_scenario.population.interval is not None
        assert small_synthetic_scenario.weather is not None

    def test_synthetic_scenario_custom_method(self):
        scenario = synthetic_scenario(num_households=5, seed=0, method=OfferMethod())
        assert scenario.method.name == "offer"


class TestNegotiationSession:
    def test_session_is_deterministic(self, paper_scenario):
        first = NegotiationSession(paper_prototype_scenario(), seed=0).run()
        second = NegotiationSession(paper_prototype_scenario(), seed=0).run()
        assert first.rounds == second.rounds
        assert first.final_overuse == second.final_overuse
        assert first.total_reward_paid == second.total_reward_paid

    def test_build_is_idempotent(self):
        session = NegotiationSession(paper_prototype_scenario(), seed=0)
        first = session.build()
        second = session.build()
        assert first is second

    def test_result_contains_every_customer(self, paper_result):
        assert len(paper_result.customer_outcomes) == 20
        assert set(paper_result.customer_outcomes) == {f"c{i:03d}" for i in range(20)}

    def test_result_headline_metrics(self, paper_result):
        assert paper_result.rounds == 3
        assert paper_result.initial_overuse == pytest.approx(35.0)
        assert paper_result.final_overuse < paper_result.initial_overuse
        assert 0 < paper_result.peak_reduction_fraction < 1
        assert paper_result.participation_rate > 0.5
        assert paper_result.total_reward_paid > 0
        assert paper_result.reward_per_unit_overuse_removed > 0
        assert paper_result.termination_reason is TerminationReason.OVERUSE_ACCEPTABLE
        summary = paper_result.summary()
        assert summary["method"] == "reward_tables"
        assert summary["rounds"] == 3

    def test_trajectories_have_consistent_lengths(self, paper_result):
        assert len(paper_result.overuse_trajectory()) == paper_result.rounds + 1
        assert len(paper_result.reward_trajectory(0.4)) == paper_result.rounds
        assert len(paper_result.customer_bid_trajectory("c000")) == paper_result.rounds

    def test_session_with_all_optional_agents(self):
        scenario = synthetic_scenario(num_households=6, seed=2)
        session = NegotiationSession(
            scenario, seed=2, include_producer=True, include_external_world=True,
            with_resource_consumers=True,
        )
        result = session.run()
        assert result.rounds >= 1
        assert result.messages_sent > 0
        # Producer, world and RCAs add participants beyond UA + CAs.
        assert len(session.simulation.participant_names) > 7

    def test_offer_method_session_single_round(self):
        scenario = synthetic_scenario(num_households=8, seed=4, method=OfferMethod(x_max=0.8))
        result = NegotiationSession(scenario, seed=4).run()
        assert result.rounds == 1
        assert result.method_name == "offer"

    def test_customer_outcome_validation(self):
        with pytest.raises(ValueError):
            CustomerOutcome("c", 1.5, True, 0.2, 1.0, 0.0)
        with pytest.raises(ValueError):
            CustomerOutcome("c", 0.5, True, 1.2, 1.0, 0.0)


class TestLoadBalancingSystem:
    def test_pipeline_reduces_peak_and_cost(self, paper_scenario):
        system = LoadBalancingSystem(paper_prototype_scenario(), seed=0)
        outcome = system.run()
        assert outcome.negotiated
        assert outcome.peak_after_kw < outcome.peak_before_kw
        assert outcome.production_cost_after < outcome.production_cost_before
        assert outcome.reward_paid > 0
        summary = outcome.summary()
        assert summary["peak_reduction_kw"] > 0

    def test_pipeline_on_synthetic_scenario(self):
        scenario = synthetic_scenario(num_households=10, seed=5)
        system = LoadBalancingSystem(scenario, seed=5)
        outcome = system.run()
        assert outcome.negotiated
        assert outcome.peak_after_kw <= outcome.peak_before_kw + 1e-6

    def test_no_negotiation_when_no_peak(self):
        scenario = synthetic_scenario(num_households=10, seed=5, cold_snap=False)
        # Raise the tolerated overuse so the mild day never triggers negotiation.
        scenario.population.max_allowed_overuse = scenario.population.initial_overuse + 1
        system = LoadBalancingSystem(scenario, seed=5)
        assert not system.should_negotiate()
        outcome = system.run()
        assert not outcome.negotiated
        assert outcome.peak_before_kw == outcome.peak_after_kw
        assert outcome.reward_paid == 0.0

    def test_custom_production_model(self):
        scenario = paper_prototype_scenario()
        production = ProductionModel.two_tier(100.0, 100.0, 0.2, 2.0)
        system = LoadBalancingSystem(scenario, production=production, seed=0)
        outcome = system.run()
        # With very expensive peak production, the negotiation pays for itself.
        assert outcome.production_savings > 0

    def test_baseline_profiles_for_calibrated_population(self, paper_scenario):
        system = LoadBalancingSystem(paper_prototype_scenario(), seed=0)
        profiles = system.baseline_profiles()
        assert len(profiles) == 20
        interval = paper_scenario.population.interval
        for profile in profiles.values():
            assert profile.average_in(interval) == pytest.approx(6.75)

    def test_apply_cutdowns_requires_interval(self, paper_result):
        scenario = paper_prototype_scenario()
        scenario.population.interval = None
        system = LoadBalancingSystem(scenario, seed=0)
        with pytest.raises(ValueError):
            system.apply_cutdowns(system.baseline_profiles(), paper_result, interval=None)
