"""The self-healing serve client: retries, breaker, wait re-entry, resume.

The retry core is driven through a scripted in-memory transport with
injectable sleep/clock/rng, so every backoff decision is observable and
deterministic; stream resume is driven by stubbing the single-connection
iterator.  One integration class at the end runs the client against a real
:class:`~repro.serve.server.ServerThread`.
"""

from __future__ import annotations

import json
import random
import urllib.error

import pytest

from repro.serve.client import (
    CircuitOpenError,
    RequestFailed,
    RetriesExhausted,
    ServeClient,
    _Response,
)
from repro.serve.server import ServerThread


def _response(status: int, body: dict | None = None, headers: dict | None = None):
    payload = json.dumps(body if body is not None else {}).encode("utf-8")
    return _Response(status, headers or {}, payload)


class _ScriptedTransport:
    """Pops one scripted item (a response or an exception) per attempt."""

    def __init__(self, script):
        self.script = list(script)
        self.calls: list[str] = []

    def __call__(self, url, data, timeout):
        self.calls.append(url)
        item = self.script.pop(0)
        if isinstance(item, BaseException):
            raise item
        return item


class _Recorder:
    def __init__(self):
        self.sleeps: list[float] = []

    def __call__(self, seconds: float) -> None:
        self.sleeps.append(seconds)


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _client(script, **overrides) -> tuple[ServeClient, _ScriptedTransport, _Recorder]:
    transport = _ScriptedTransport(script)
    sleeper = _Recorder()
    options = dict(
        max_retries=3,
        backoff_base=0.01,
        backoff_cap=0.05,
        rng=random.Random(0),
        sleep=sleeper,
        clock=_FakeClock(),
        transport=transport,
    )
    options.update(overrides)
    return ServeClient("http://test", **options), transport, sleeper


class TestRetryCore:
    def test_transient_5xx_retries_until_success(self):
        client, transport, sleeper = _client(
            [_response(503), _response(500), _response(200, {"ok": True})]
        )
        assert client.status("abc") == {"ok": True}
        assert len(transport.calls) == 3
        assert client.retries_performed == 2
        assert len(sleeper.sleeps) == 2

    def test_retry_after_header_floors_the_backoff(self):
        client, _transport, sleeper = _client(
            [
                _response(429, {"reason": "queue_full"}, {"retry-after": "2.5"}),
                _response(200, {"ok": True}),
            ]
        )
        client.status("abc")
        # The computed jitter is capped at 0.05s; the server's hint wins.
        assert sleeper.sleeps == [pytest.approx(2.5)]

    def test_retries_exhausted_raises_with_the_last_status(self):
        client, _transport, _sleeper = _client(
            [_response(503)] * 4, max_retries=3
        )
        with pytest.raises(RetriesExhausted, match="HTTP 503"):
            client.status("abc")

    def test_non_retryable_4xx_fails_immediately(self):
        client, transport, _sleeper = _client(
            [_response(400, {"error": "bad scenario"})]
        )
        with pytest.raises(RequestFailed) as excinfo:
            client.submit({"scenario": {}})
        assert excinfo.value.status == 400
        assert len(transport.calls) == 1  # no retry can fix a 400

    def test_transport_errors_retry_then_exhaust(self):
        client, _transport, _sleeper = _client(
            [urllib.error.URLError("refused")] * 3,
            max_retries=2,
            breaker_threshold=10,
        )
        with pytest.raises(RetriesExhausted) as excinfo:
            client.status("abc")
        assert excinfo.value.last_error is not None


class TestCircuitBreaker:
    def test_consecutive_transport_failures_open_the_circuit(self):
        client, transport, _sleeper = _client(
            [urllib.error.URLError("down")] * 2 + [_response(200, {"ok": True})],
            max_retries=5,
            breaker_threshold=2,
            breaker_cooldown=30.0,
        )
        with pytest.raises(RetriesExhausted):
            client.status("abc")
        assert client.breaker_trips == 1
        assert len(transport.calls) == 2  # the open breaker stopped attempt 3
        with pytest.raises(CircuitOpenError):
            client.status("abc")

    def test_half_open_probe_closes_the_circuit_after_cooldown(self):
        clock = _FakeClock()
        client, _transport, _sleeper = _client(
            [urllib.error.URLError("down"), _response(200, {"ok": True})],
            max_retries=0,
            breaker_threshold=1,
            breaker_cooldown=10.0,
            clock=clock,
        )
        with pytest.raises(RetriesExhausted):
            client.status("abc")
        assert client.breaker_open
        clock.now = 11.0
        assert client.status("abc") == {"ok": True}
        assert not client.breaker_open

    def test_sheds_and_wait_expiries_never_trip_the_breaker(self):
        client, _transport, _sleeper = _client(
            [
                _response(429, {}, {"retry-after": "0.1"}),
                _response(504, {}),
                _response(200, {"ok": True}),
            ],
            breaker_threshold=1,
        )
        assert client.status("abc") == {"ok": True}
        assert client.breaker_trips == 0


class TestResultWaitReentry:
    def test_result_rides_out_504_wait_expiries(self):
        done = {"state": "done", "result": {"rounds": 2}}
        client, transport, _sleeper = _client(
            [_response(504, {}), _response(504, {}), _response(200, done)],
            max_retries=0,
        )
        record = client.result("abc", wait=True, overall_timeout=100.0)
        assert record == done
        assert len(transport.calls) == 3
        assert all("wait=1" in url for url in transport.calls)

    def test_result_gives_up_at_the_overall_deadline(self):
        clock = _FakeClock()
        client, _transport, _sleeper = _client(
            [_response(504, {})] * 3, max_retries=0, clock=clock
        )

        def advance(_seconds: float) -> None:
            clock.now += 50.0

        client._sleep = advance  # each 504 costs simulated wall-clock
        # The deadline check happens when a wait expires; two expiries pass
        # 100 simulated seconds, so the third request never happens.
        original = client._request

        def timed_request(path, body=None):
            clock.now += 50.0
            return original(path, body)

        client._request = timed_request
        with pytest.raises(RetriesExhausted):
            client.result("abc", wait=True, overall_timeout=100.0)

    def test_wait_timeout_is_forwarded_as_a_query_parameter(self):
        client, transport, _sleeper = _client(
            [_response(200, {"state": "done"})]
        )
        client.result("abc", wait=True, wait_timeout=7.5)
        assert transport.calls == ["http://test/result/abc?wait=1&timeout=7.5"]


class TestStreamResume:
    def test_resume_skips_the_replayed_prefix(self):
        events = [
            {"event": "round", "round": 1},
            {"event": "round", "round": 2},
            {"event": "round", "round": 3},
            {"event": "done", "state": "done"},
        ]
        client, _transport, _sleeper = _client([])
        attempts = []

        def stream_once(_session_id):
            attempts.append(len(attempts))
            if len(attempts) == 1:
                # Drop the connection after two events.
                yield events[0]
                yield events[1]
                raise ConnectionError("mid-stream disconnect")
            # The server replays from the start on reconnect.
            yield from events

        client._stream_once = stream_once
        received = list(client.stream("abc"))
        assert received == events  # gapless and duplicate-free
        assert len(attempts) == 2

    def test_stream_exhausts_retries_on_persistent_disconnects(self):
        client, _transport, _sleeper = _client(
            [], max_retries=1, breaker_threshold=10
        )

        def stream_once(_session_id):
            raise ConnectionError("down")
            yield  # pragma: no cover - makes this a generator

        client._stream_once = stream_once
        with pytest.raises(RetriesExhausted):
            list(client.stream("abc"))


class TestClientAgainstRealServer:
    def test_submit_result_and_stream_end_to_end(self):
        with ServerThread(port=0, max_wait=0.02) as thread:
            client = ServeClient(thread.server.base_url, rng=random.Random(0))
            accepted = client.submit({"scenario": {"households": 15, "seed": 3}})
            record = client.result(
                accepted["session_id"], wait=True, overall_timeout=120.0
            )
            assert record["state"] == "done"
            events = list(client.stream(accepted["session_id"]))
            assert events[-1]["event"] == "done"
            assert events[-1]["result"] == record["result"]
            assert client.health()["status"] == "ok"
            assert client.metrics()["requests_completed"] >= 1
