"""Tests for the repro.api engine façade.

Covers the backend registry (duplicate rejection, unknown names, planned
slots), ``backend="auto"`` selection on qualifying and non-qualifying
scenarios, config handling, the deprecation shims, the fluent scenario
builder's round-trip contract, and the acceptance criterion: ``"auto"``
produces bit-identical results to each explicitly chosen backend.
"""

from __future__ import annotations

import warnings

import pytest

import repro.core
from repro.api import (
    BackendUnavailableError,
    BackendUnsupportedError,
    DuplicateBackendError,
    EngineConfig,
    NegotiationEngine,
    UnknownBackendError,
    available_backends,
    get_backend,
    register_backend,
    run,
    scenario,
    select_backend,
    unregister_backend,
)
from repro.core.fast_session import FastSession
from repro.core.scenario import (
    Scenario,
    paper_prototype_scenario,
    synthetic_scenario,
)
from repro.core.session import NegotiationSession
from repro.agents.population import CustomerPopulation
from repro.negotiation.methods.offer import OfferMethod
from repro.negotiation.methods.request_for_bids import RequestForBidsMethod
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.reward_table import CutdownRewardRequirements
from repro.negotiation.strategy import ConstantBeta, CustomerBiddingPolicy

from test_fast_session_equivalence import assert_equivalent


def small_scenario(**kwargs) -> Scenario:
    return synthetic_scenario(num_households=kwargs.pop("num_households", 8), **kwargs)


def heterogeneous_scenario() -> Scenario:
    coarse = CutdownRewardRequirements(
        requirements={0.0: 0.0, 0.2: 4.0, 0.4: 21.0, 0.8: 95.0},
        max_feasible_cutdown=0.8,
    )
    fine = CutdownRewardRequirements.paper_figure_8_customer()
    population = CustomerPopulation.calibrated(
        predicted_uses=[12.0, 9.0, 14.0, 11.0],
        requirements=[coarse, fine, coarse, fine],
        normal_use=30.0,
        max_allowed_overuse=2.0,
    )
    method = RewardTablesMethod(max_reward=40.0, beta_controller=ConstantBeta(2.0))
    return Scenario(name="hetero", population=population, method=method)


def many_grid_scenario(num_customers: int = 40) -> Scenario:
    """A population with one distinct requirement grid *per customer* —
    beyond the grouped-kernel cap, so only the object path qualifies."""
    requirements = [
        CutdownRewardRequirements(
            requirements={0.0: 0.0, round(0.1 + 0.02 * i, 6): 5.0 + i},
            max_feasible_cutdown=round(0.1 + 0.02 * i, 6),
        )
        for i in range(num_customers)
    ]
    population = CustomerPopulation.calibrated(
        predicted_uses=[10.0 + (i % 7) for i in range(num_customers)],
        requirements=requirements,
        normal_use=8.0 * num_customers,
        max_allowed_overuse=2.0,
    )
    method = RewardTablesMethod(max_reward=40.0, beta_controller=ConstantBeta(2.0))
    return Scenario(name="many_grids", population=population, method=method)


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        backends = available_backends()
        assert backends["object"] is True
        assert backends["vectorized"] is True
        assert backends["sharded"] is True
        # Declared slot for the ROADMAP's async runtime.
        assert backends["async"] is False

    def test_duplicate_name_rejected(self):
        original = get_backend("object")
        with pytest.raises(DuplicateBackendError, match="already registered"):

            @register_backend("object")
            class Impostor(NegotiationEngine):
                def run(self, scenario, config):  # pragma: no cover
                    raise AssertionError

        # The registry is unchanged by the failed registration.
        assert get_backend("object") is original

    def test_unknown_backend_error_lists_registered_names(self):
        with pytest.raises(UnknownBackendError, match="object"):
            get_backend("warp_drive")
        with pytest.raises(UnknownBackendError):
            run(small_scenario(), backend="warp_drive")

    def test_planned_slots_refuse_to_run(self):
        with pytest.raises(BackendUnavailableError, match="not available"):
            run(small_scenario(), backend="async")

    def test_unavailable_backend_never_executes(self):
        # A registered-but-unavailable backend must be refused up front, not
        # probed by running it (a working run() would execute twice).
        @register_backend("embargoed")
        class EmbargoedBackend(NegotiationEngine):
            available = False
            calls = 0

            def run(self, scenario, config):  # pragma: no cover - must not run
                EmbargoedBackend.calls += 1
                raise AssertionError("unavailable backend was executed")

        try:
            with pytest.raises(BackendUnavailableError, match="not available"):
                run(small_scenario(), backend="embargoed")
            assert EmbargoedBackend.calls == 0
        finally:
            unregister_backend("embargoed")

    def test_custom_backend_registration_roundtrip(self):
        @register_backend("echo")
        class EchoBackend(NegotiationEngine):
            def run(self, scenario, config):
                return NegotiationSession(scenario, **config.session_kwargs()).run()

        try:
            result = run(small_scenario(), backend="echo", seed=0)
            assert result.metadata["backend"] == "echo"
        finally:
            unregister_backend("echo")
        with pytest.raises(UnknownBackendError):
            get_backend("echo")


class TestAutoSelection:
    def test_qualifying_scenario_selects_vectorized(self):
        result = run(small_scenario(), seed=0)
        assert result.metadata["backend"] == "vectorized"

    def test_offer_method_qualifies(self):
        result = run(small_scenario(method=OfferMethod()), seed=0)
        assert result.metadata["backend"] == "vectorized"

    def test_request_for_bids_qualifies(self):
        result = run(small_scenario(method=RequestForBidsMethod()), seed=0)
        assert result.metadata["backend"] == "vectorized"

    def test_full_agent_society_falls_back_to_object(self):
        result = run(
            small_scenario(), config=EngineConfig(include_producer=True), seed=0
        )
        assert result.metadata["backend"] == "object"

    def test_heterogeneous_grids_ride_grouped_kernels(self):
        # Mixed requirement grids used to disqualify every batched backend;
        # the grouped per-grid kernels now carry them on the fast path.
        result = run(heterogeneous_scenario(), seed=0)
        assert result.metadata["backend"] == "vectorized"
        reference = run(heterogeneous_scenario(), backend="object", seed=0)
        assert_equivalent(reference, result)

    def test_beyond_group_cap_falls_back_to_object(self):
        result = run(many_grid_scenario(), seed=0)
        assert result.metadata["backend"] == "object"

    def test_custom_bidding_policy_falls_back_to_object(self):
        class TimidBidding(CustomerBiddingPolicy):
            def choose_cutdown(self, table, requirements, previous_bid=None):
                return 0.0

        method = RewardTablesMethod(
            max_reward=40.0,
            beta_controller=ConstantBeta(2.0),
            bidding_policy=TimidBidding(),
        )
        engine, rejections = select_backend(
            small_scenario(method=method), EngineConfig()
        )
        assert engine.name == "object"
        assert "TimidBidding" in rejections["vectorized"]

    def test_stock_policy_subclass_falls_back_to_object(self):
        # FastSession dispatches its batched kernels on the *exact* policy
        # type; a subclass (which may depend on bid history the fast path's
        # scalar fallback does not thread through) must not auto-qualify.
        from repro.negotiation.strategy import HighestAcceptableCutdownBidding

        class StickyBidding(HighestAcceptableCutdownBidding):
            def choose_cutdown(self, table, requirements, previous_bid=None):
                if previous_bid is not None:
                    return previous_bid
                return super().choose_cutdown(table, requirements, previous_bid)

        method = RewardTablesMethod(
            max_reward=40.0,
            beta_controller=ConstantBeta(2.0),
            bidding_policy=StickyBidding(),
        )
        engine, rejections = select_backend(
            small_scenario(method=method), EngineConfig()
        )
        assert engine.name == "object"
        assert "StickyBidding" in rejections["vectorized"]

    def test_select_backend_reports_skipped_slots(self):
        engine, rejections = select_backend(small_scenario(), EngineConfig())
        assert engine.name == "vectorized"
        assert "below the shard threshold" in rejections["sharded"]
        assert rejections["async"] == "not implemented yet"


class TestShardedSelection:
    """Auto-selection of the sharded runtime and its metadata trail."""

    def test_auto_selects_sharded_above_threshold_with_workers(self):
        result = run(small_scenario(), seed=0, shards=2, shard_threshold=4)
        assert result.metadata["backend"] == "sharded"
        assert result.metadata["shards"] == 2
        assert result.metadata["backend_rejections"] == {}

    def test_auto_records_threshold_rejection_reason(self):
        # 8 households sit below the default threshold: the fast path runs
        # and the metadata says exactly why sharding was passed over.
        result = run(small_scenario(), seed=0, shards=2)
        assert result.metadata["backend"] == "vectorized"
        rejections = result.metadata["backend_rejections"]
        assert "below the shard threshold" in rejections["sharded"]

    def test_auto_records_single_worker_rejection_reason(self):
        result = run(small_scenario(), seed=0, shards=1, shard_threshold=4)
        assert result.metadata["backend"] == "vectorized"
        assert "one worker" in result.metadata["backend_rejections"]["sharded"]

    def test_auto_records_fallback_reasons_on_object_path(self):
        # A scenario the batched kernels cannot carry — more distinct grids
        # than the grouped-kernel cap — excludes *both* fast backends, and
        # each exclusion reason lands in the metadata.
        result = run(many_grid_scenario(), seed=0, shards=2, shard_threshold=2)
        assert result.metadata["backend"] == "object"
        rejections = result.metadata["backend_rejections"]
        assert "distinct requirement grids exceed" in rejections["sharded"]
        assert "distinct requirement grids exceed" in rejections["vectorized"]

    def test_auto_selects_sharded_for_heterogeneous_grids(self):
        # Grouped kernels qualify the *sharded* runtime too: a mixed-grid
        # population above the shard threshold fans out, bit-identically.
        result = run(heterogeneous_scenario(), seed=0, shards=2, shard_threshold=2)
        assert result.metadata["backend"] == "sharded"
        reference = run(heterogeneous_scenario(), backend="object", seed=0)
        assert_equivalent(reference, result)

    def test_explicit_backend_records_no_rejections(self):
        result = run(small_scenario(), backend="vectorized", seed=0)
        assert result.metadata["backend"] == "vectorized"
        assert "backend_rejections" not in result.metadata

    def test_selection_boundary_at_exact_threshold(self):
        # The threshold is inclusive: a population of exactly shard_threshold
        # households selects the sharded runtime …
        scenario_ = small_scenario()
        at = select_backend(
            scenario_, EngineConfig(shards=2, shard_threshold=len(scenario_.population))
        )
        assert at[0].name == "sharded"
        assert "sharded" not in at[1]
        # … and one household fewer falls back to vectorized, with the
        # rejection reason naming both the size and the threshold.
        below = select_backend(
            scenario_,
            EngineConfig(shards=2, shard_threshold=len(scenario_.population) + 1),
        )
        assert below[0].name == "vectorized"
        reason = below[1]["sharded"]
        assert str(len(scenario_.population)) in reason
        assert str(len(scenario_.population) + 1) in reason

    def test_rejection_metadata_contents_around_threshold(self):
        scenario_ = small_scenario()
        population = len(scenario_.population)
        at = run(scenario_, seed=0, shards=2, shard_threshold=population)
        assert at.metadata["backend"] == "sharded"
        assert at.metadata["backend_rejections"] == {}
        below = run(small_scenario(), seed=0, shards=2, shard_threshold=population + 1)
        rejections = below.metadata["backend_rejections"]
        # Exactly the backends that were passed over, each with its reason.
        assert set(rejections) == {"sharded", "async"}
        assert "below the shard threshold" in rejections["sharded"]
        assert rejections["async"] == "not implemented yet"

    def test_lazy_population_qualifies_without_materialising(self):
        # Auto-selection must not defeat the zero-materialisation path by
        # touching population.specs for its shared-grid check.
        from repro.core.planning import DayAheadPlanner
        from repro.grid.household import Household
        from repro.grid.weather import WeatherCondition, WeatherSample
        from repro.runtime.rng import RandomSource

        random = RandomSource(7, "lazy_select")
        households = [
            Household.generate(f"h{i}", random.spawn(f"h{i}")) for i in range(20)
        ]
        planner = DayAheadPlanner(households, normal_capacity_kw=10.0)
        planner.observe_days(
            [WeatherSample(temperature_c=10.0, condition=WeatherCondition.MILD)] * 2
        )
        scenario_ = planner.plan(
            WeatherSample(temperature_c=-18.0, condition=WeatherCondition.SEVERE_COLD),
            materialise="lazy",
        )
        assert scenario_ is not None
        engine, __ = select_backend(scenario_, EngineConfig())
        assert engine.name == "vectorized"
        sharded_engine, __ = select_backend(
            scenario_, EngineConfig(shards=2, shard_threshold=2)
        )
        assert sharded_engine.name == "sharded"
        assert scenario_.population.materialised is False

    def test_explicit_sharded_ignores_threshold(self):
        result = run(small_scenario(), backend="sharded", seed=0, shards=3)
        assert result.metadata["backend"] == "sharded"
        assert result.metadata["shards"] == 3

    def test_explicit_sharded_with_producer_config_rejected(self):
        with pytest.raises(BackendUnsupportedError, match="object path"):
            run(
                small_scenario(),
                backend="sharded",
                config=EngineConfig(include_producer=True, shards=2),
            )

    def test_sharded_equivalent_to_auto_fast_path(self):
        auto = run(small_scenario(), seed=0)
        sharded = run(small_scenario(), seed=0, shards=2, shard_threshold=4)
        assert auto.metadata["backend"] == "vectorized"
        assert sharded.metadata["backend"] == "sharded"
        assert_equivalent(auto, sharded)

    def test_invalid_shard_config_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            EngineConfig(shards=0)
        with pytest.raises(ValueError, match="shard_threshold"):
            EngineConfig(shard_threshold=0)

    def test_resolved_shards_defaults_to_core_count(self):
        from repro.agents.sharded import default_shard_count

        assert EngineConfig().resolved_shards() == default_shard_count()
        assert EngineConfig(shards=5).resolved_shards() == 5


class TestRunConfig:
    def test_kwarg_overrides_replace_config_fields(self):
        config = EngineConfig(seed=1, check_protocol=False)
        result = run(small_scenario(), config=config, seed=7)
        assert result.metadata["backend"] == "vectorized"

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError):
            run(small_scenario(), retain_msg_log=False)

    def test_explicit_vectorized_with_producer_config_rejected(self):
        with pytest.raises(BackendUnsupportedError, match="object path"):
            run(
                small_scenario(),
                backend="vectorized",
                config=EngineConfig(include_producer=True),
            )

    def test_session_kwargs_match_session_signatures(self):
        config = EngineConfig(seed=3, max_simulation_rounds=77, check_protocol=False)
        session = NegotiationSession(paper_prototype_scenario(), **config.session_kwargs())
        assert session.seed == 3
        assert session.max_simulation_rounds == 77
        assert session.check_protocol is False
        fast = FastSession(paper_prototype_scenario(), **config.fast_session_kwargs())
        assert fast.seed == 3
        assert fast.max_simulation_rounds == 77

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(max_simulation_rounds=0)

    def test_typoed_mode_knobs_fail_at_construction(self):
        # A typo'd knob must fail loudly at construction — never silently
        # select a fallback path — and the error must name the options.
        with pytest.raises(ValueError, match=r"colunmar.*columnar.*scalar"):
            EngineConfig(planning="colunmar")
        with pytest.raises(ValueError, match=r"lazey.*eager.*lazy"):
            EngineConfig(materialise="lazey")
        with pytest.raises(ValueError, match="history_window"):
            EngineConfig(history_window=0)
        with pytest.raises(ValueError, match="history_window"):
            EngineConfig(history_window=-3)

    def test_planner_validates_the_same_knobs(self):
        from repro.core.planning import DayAheadPlanner
        from repro.grid.household import Household
        from repro.runtime.rng import RandomSource

        households = [Household.generate("h0", RandomSource(0, "h"))]
        with pytest.raises(ValueError, match="columnar"):
            DayAheadPlanner(households, 10.0, planning="columanr")
        with pytest.raises(ValueError, match="eager"):
            DayAheadPlanner(households, 10.0, materialise="eagre")
        with pytest.raises(ValueError, match="history_window"):
            DayAheadPlanner(households, 10.0, history_window=0)
        planner = DayAheadPlanner(households, 10.0)
        from repro.grid.weather import WeatherCondition, WeatherSample

        mild = WeatherSample(temperature_c=10.0, condition=WeatherCondition.MILD)
        planner.observe_day(mild)
        with pytest.raises(ValueError, match="scalar"):
            planner.plan(mild, planning="sclar")
        with pytest.raises(ValueError, match="lazy"):
            planner.plan(mild, materialise="lzy")


class TestDeprecationShims:
    def _reset(self):
        repro.core._DEPRECATION_WARNED.clear()

    def test_shim_warns_exactly_once(self):
        self._reset()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.core.NegotiationSession(paper_prototype_scenario(), seed=0)
            repro.core.NegotiationSession(paper_prototype_scenario(), seed=0)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "repro.api.run" in str(deprecations[0].message)

    def test_fast_session_shim_warns_exactly_once(self):
        # Direct construction must warn exactly once per process, and the
        # warning must name the replacement entry point so the migration
        # path is in the message itself, not just the docs.
        self._reset()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.core.FastSession(paper_prototype_scenario(), seed=0)
            repro.core.FastSession(paper_prototype_scenario(), seed=0)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "repro.api.run" in str(deprecations[0].message)
        assert "FastSession" in str(deprecations[0].message)

    def test_shims_still_run_and_subclass_the_real_sessions(self):
        self._reset()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            session = repro.core.NegotiationSession(paper_prototype_scenario(), seed=0)
        assert isinstance(session, NegotiationSession)
        assert session.run().rounds == 3

    def test_home_module_classes_do_not_warn(self):
        self._reset()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            NegotiationSession(paper_prototype_scenario(), seed=0)
            FastSession(paper_prototype_scenario(), seed=0)
        assert not [w for w in caught if w.category is DeprecationWarning]


class TestScenarioBuilder:
    def test_synthetic_round_trip_matches_manual_construction(self):
        built = scenario().households(12).seed(3).build()
        manual = synthetic_scenario(num_households=12, seed=3)
        assert built.name == manual.name
        assert built.population.customer_ids == manual.population.customer_ids
        assert built.population.normal_use == manual.population.normal_use
        assert [s.predicted_use for s in built.population.specs] == [
            s.predicted_use for s in manual.population.specs
        ]
        assert [s.requirements for s in built.population.specs] == [
            s.requirements for s in manual.population.specs
        ]
        assert_equivalent(run(manual, backend="object", seed=0), run(built, seed=0))

    def test_beta_and_max_reward_flow_into_the_method(self):
        built = scenario().households(10).beta(3.0).max_reward(80.0).build()
        manual = synthetic_scenario(num_households=10, beta=3.0, max_reward=80.0)
        assert built.method.name == manual.method.name
        assert built.method.max_reward == manual.method.max_reward == 80.0
        assert_equivalent(run(manual, seed=0), run(built, seed=0))

    def test_paper_round_trip(self):
        built = scenario().paper_prototype().beta(1.5).build()
        manual = paper_prototype_scenario(beta=1.5)
        assert_equivalent(run(manual, seed=0), run(built, seed=0))

    def test_method_names_resolve(self):
        assert isinstance(
            scenario().households(5).method("offer").build().method, OfferMethod
        )
        assert isinstance(
            scenario().households(5).method("request_for_bids").build().method,
            RequestForBidsMethod,
        )
        custom = OfferMethod(x_max=0.9)
        assert scenario().households(5).method(custom).build().method is custom

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            scenario().method("bribery")
        with pytest.raises(TypeError):
            scenario().method(42)
        with pytest.raises(ValueError, match="reward-tables"):
            scenario().households(5).method("offer").beta(2.0).build()
        with pytest.raises(ValueError, match="fixed population"):
            scenario().households(10).paper_prototype().build()
        # Explicit method *instances* must be rejected in paper mode too,
        # never silently replaced by the calibrated reward-tables method.
        with pytest.raises(ValueError, match="calibrated"):
            scenario().paper_prototype().method(OfferMethod(x_max=0.9)).build()
        with pytest.raises(ValueError, match="calibrated"):
            scenario().paper_prototype().method("offer").build()
        with pytest.raises(ValueError, match="paper-scenario parameter"):
            scenario().households(5).max_allowed_overuse(3.0).build()

    def test_builder_run_shortcut(self):
        result = scenario().households(6).run(seed=0)
        assert result.metadata["backend"] == "vectorized"
        assert result.rounds >= 1


def _method_variants() -> list:
    return [
        pytest.param(lambda: None, id="reward_tables"),
        pytest.param(lambda: OfferMethod(), id="offer"),
        pytest.param(lambda: RequestForBidsMethod(), id="request_for_bids"),
    ]


class TestAutoEquivalence:
    """Acceptance criterion: auto is bit-identical to each explicit backend."""

    @pytest.mark.parametrize("make_method", _method_variants())
    def test_auto_matches_explicit_backends(self, make_method):
        def make():
            return synthetic_scenario(num_households=10, seed=1, method=make_method())

        auto = run(make(), seed=0)
        vectorized = run(make(), backend="vectorized", seed=0)
        sharded = run(make(), backend="sharded", seed=0, shards=2)
        objectpath = run(make(), backend="object", seed=0)
        assert auto.metadata["backend"] == "vectorized"
        assert_equivalent(objectpath, auto)
        assert_equivalent(objectpath, vectorized)
        assert_equivalent(objectpath, sharded)

    @pytest.mark.tier2
    @pytest.mark.parametrize("num_households", [40, 120])
    @pytest.mark.parametrize("seed", [0, 11])
    @pytest.mark.parametrize("make_method", _method_variants())
    def test_auto_matches_explicit_backends_matrix(
        self, num_households, seed, make_method
    ):
        def make():
            return synthetic_scenario(
                num_households=num_households, seed=seed, method=make_method()
            )

        auto = run(make(), seed=seed)
        vectorized = run(make(), backend="vectorized", seed=seed)
        sharded = run(make(), backend="sharded", seed=seed, shards=4)
        objectpath = run(make(), backend="object", seed=seed)
        assert auto.metadata["backend"] == "vectorized"
        assert_equivalent(objectpath, auto)
        assert_equivalent(objectpath, vectorized)
        assert_equivalent(objectpath, sharded)

    @pytest.mark.tier2
    @pytest.mark.parametrize("make_method", _method_variants())
    def test_auto_selected_sharded_matches_object_path(self, make_method):
        # Force auto past the shard threshold so the selected-and-recorded
        # backend really is "sharded", then pin the equivalence contract.
        def make():
            return synthetic_scenario(num_households=64, seed=3, method=make_method())

        auto = run(make(), seed=0, shards=2, shard_threshold=32)
        objectpath = run(make(), backend="object", seed=0)
        assert auto.metadata["backend"] == "sharded"
        assert auto.metadata["shards"] == 2
        assert_equivalent(objectpath, auto)
