"""Tests for the CLI and for message-level negotiation traces."""

from __future__ import annotations

import pytest

from repro.analysis.trace import build_negotiation_trace
from repro.cli import build_parser, command_list, command_quickstart, command_run, main
from repro.core.scenario import paper_prototype_scenario, synthetic_scenario
from repro.core.session import NegotiationSession
from repro.negotiation.messages import Award


class TestNegotiationTrace:
    @pytest.fixture(scope="class")
    def session(self):
        session = NegotiationSession(paper_prototype_scenario(), seed=0)
        session.run()
        return session

    def test_trace_reconstructs_rounds_from_messages(self, session):
        trace = build_negotiation_trace(session.simulation.bus.log)
        assert trace.num_rounds == 3
        assert trace.conversation_id == session.utility_agent.conversation_id
        first = trace.round(0)
        assert first.num_customers_addressed == 20
        assert first.num_bids == 20
        table = first.announced_table()
        assert table is not None
        assert table.table.reward_for(0.4) == pytest.approx(17.0)

    def test_trace_bid_cutdowns_match_result(self, session):
        trace = build_negotiation_trace(session.simulation.bus.log)
        result = session._collect_result(0)
        for round_index in range(trace.num_rounds):
            cutdowns = trace.round(round_index).bid_cutdowns()
            assert cutdowns["c000"] == pytest.approx(
                result.customer_bid_trajectory("c000")[round_index]
            )

    def test_trace_awards_and_rows(self, session):
        trace = build_negotiation_trace(session.simulation.bus.log)
        awards = trace.awards()
        assert len(awards) == 20
        assert all(isinstance(a, Award) for a in awards.values())
        rows = trace.rows()
        assert len(rows) == 3
        assert rows[0]["reward_at_0.4"] == pytest.approx(17.0)
        assert rows[-1]["positive_bids"] >= rows[0]["positive_bids"]
        assert "Negotiation trace" in trace.render()
        assert trace.total_messages == session.simulation.bus.message_count()

    def test_trace_for_explicit_conversation_and_unknown_round(self, session):
        log = session.simulation.bus.log
        trace = build_negotiation_trace(log, conversation_id="does_not_exist")
        assert trace.num_rounds == 0
        real = build_negotiation_trace(log)
        with pytest.raises(KeyError):
            real.round(99)

    def test_trace_with_extra_agents(self):
        scenario = synthetic_scenario(num_households=6, seed=2)
        session = NegotiationSession(
            scenario, seed=2, include_producer=True, include_external_world=True
        )
        session.run()
        trace = build_negotiation_trace(session.simulation.bus.log)
        # Producer/world request-reply traffic in the same conversation is
        # preserved as "other" messages rather than being misfiled into rounds.
        assert trace.num_rounds >= 1
        assert all(
            message.performative.value in ("request", "reply", "inform", "confirm")
            for message in trace.other_messages
        )


class TestCli:
    def test_list_command(self, capsys):
        assert command_list() == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E10" in output

    def test_run_single_experiment(self, capsys):
        assert command_run("e5") == 0
        output = capsys.readouterr().out
        assert "E5" in output and "beta" in output

    def test_run_unknown_experiment(self, capsys):
        assert command_run("E99") == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_quickstart_command(self, capsys):
        assert command_quickstart() == 0
        output = capsys.readouterr().out
        assert "overuse trajectory" in output
        assert "reward_tables" in output

    def test_main_dispatch(self, capsys):
        assert main(["list"]) == 0
        assert main(["run", "E5"]) == 0
        assert main(["quickstart"]) == 0
        capsys.readouterr()

    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])
        arguments = parser.parse_args(["run", "E2"])
        assert arguments.command == "run" and arguments.experiment == "E2"


class TestServeCli:
    def test_parser_accepts_serve_flags(self):
        parser = build_parser()
        arguments = parser.parse_args([
            "serve", "--host", "0.0.0.0", "--port", "0",
            "--max-batch", "16", "--max-wait", "0.1",
            "--workers", "2", "--state-dir", "/tmp/serve-state",
        ])
        assert arguments.command == "serve"
        assert arguments.host == "0.0.0.0"
        assert arguments.port == 0
        assert arguments.max_batch == 16
        assert arguments.max_wait == pytest.approx(0.1)
        assert arguments.workers == 2
        assert arguments.state_dir == "/tmp/serve-state"

    def test_parser_serve_defaults(self):
        arguments = build_parser().parse_args(["serve"])
        assert arguments.host == "127.0.0.1"
        assert arguments.port == 8731
        assert arguments.max_batch == 8
        assert arguments.max_wait == pytest.approx(0.05)
        assert arguments.workers is None
        assert arguments.state_dir is None

    def test_backends_command_mentions_serving(self, capsys):
        from repro.cli import command_backends

        assert command_backends() == 0
        output = capsys.readouterr().out
        assert "vectorized" in output
        assert "python -m repro serve" in output
        assert "micro-batching" in output

    def test_main_dispatch_backends(self, capsys):
        assert main(["backends"]) == 0
        assert "serve" in capsys.readouterr().out
