"""Tests for the strategy-slot ablation experiments."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_ablations,
    run_acceptance_ablation,
    run_announcement_policy_ablation,
    run_bidding_policy_ablation,
)


class TestAcceptanceAblation:
    def test_selective_acceptance_spends_less_on_flexible_population(self):
        entries = {e.variant: e for e in run_acceptance_ablation()}
        accept_all = entries["accept_all"].result
        selective = entries["selective"].result
        # On a population whose offers overshoot the needed reduction, the
        # selective strategy declines the surplus bids and pays less.
        assert selective.total_reward_paid < accept_all.total_reward_paid
        assert selective.participation_rate < accept_all.participation_rate
        # Both still remove the peak (predicted overuse goes non-positive).
        assert accept_all.final_overuse <= 0
        assert selective.final_overuse <= 0


class TestBiddingPolicyAblation:
    def test_both_policies_reduce_the_peak(self):
        entries = {e.variant: e for e in run_bidding_policy_ablation(num_households=15)}
        for entry in entries.values():
            assert entry.result.peak_reduction_fraction > 0
        # Expected-gain bidding never leaves customers worse off than the
        # highest-acceptable policy in aggregate surplus.
        assert (
            entries["expected_gain"].result.total_customer_surplus
            >= entries["highest_acceptable"].result.total_customer_surplus - 1e-9
        )


class TestAnnouncementPolicyAblation:
    def test_both_policies_produce_valid_negotiations(self):
        entries = {e.variant: e for e in run_announcement_policy_ablation(num_households=15)}
        assert set(entries) == {"generate_and_select", "statistical_optimisation"}
        for entry in entries.values():
            assert entry.result.rounds >= 1
            assert entry.result.peak_reduction_fraction > 0


class TestCombinedAblations:
    def test_run_all_and_render(self):
        result = run_ablations(num_households=12, seed=0)
        rows = result.rows()
        assert len(rows) == 6
        assert {row["ablation"] for row in rows} == {
            "bid_acceptance", "bidding_policy", "announcement_policy",
        }
        assert "Ablations" in result.render()
        entry = result.entry("bid_acceptance", "selective")
        assert entry.result.total_reward_paid > 0
        with pytest.raises(KeyError):
            result.entry("bid_acceptance", "nonexistent")
