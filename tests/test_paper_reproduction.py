"""The headline reproduction assertions: Figures 6-9 of the paper.

These tests pin the quantities the paper reports for its prototype run and
assert that the calibrated scenario reproduces them (exactly where the paper
gives exact values, within a small tolerance where our calibration can only
approximate the authors' unpublished population).
"""

from __future__ import annotations

import pytest

from repro.negotiation.termination import TerminationReason


class TestFigure6InitialPhase:
    def test_normal_capacity_is_100(self, paper_result):
        assert paper_result.record.normal_use == 100.0

    def test_predicted_usage_is_135(self, paper_result):
        assert paper_result.record.normal_use + paper_result.initial_overuse == pytest.approx(135.0)

    def test_initial_overuse_is_35(self, paper_result):
        assert paper_result.initial_overuse == pytest.approx(35.0)

    def test_round_1_reward_for_cutdown_04_is_17(self, paper_result):
        assert paper_result.reward_trajectory(0.4)[0] == pytest.approx(17.0)

    def test_round_1_table_is_monotone_in_cutdown(self, paper_result):
        first = paper_result.record.rounds[0].announcement.table
        assert first.is_monotone_in_cutdown()


class TestFigure7FinalPhase:
    def test_negotiation_takes_three_rounds(self, paper_result):
        assert paper_result.rounds == 3

    def test_round_3_reward_for_cutdown_04_near_24_8(self, paper_result):
        # Paper: 24.8.  The intermediate overuse levels depend on the authors'
        # (unpublished) customer population, so we require agreement within 5%.
        final_reward = paper_result.reward_trajectory(0.4)[2]
        assert final_reward == pytest.approx(24.8, rel=0.05)

    def test_final_overuse_near_13(self, paper_result):
        # Paper: the predicted overuse has been reduced to 13 (from 35).
        assert paper_result.final_overuse == pytest.approx(13.0, abs=1.0)

    def test_overuse_reduced_but_not_removed(self, paper_result):
        assert 0 < paper_result.final_overuse < paper_result.initial_overuse

    def test_termination_by_acceptable_overuse(self, paper_result):
        assert paper_result.termination_reason is TerminationReason.OVERUSE_ACCEPTABLE

    def test_reward_tables_escalate_monotonically(self, paper_result):
        rewards = paper_result.reward_trajectory(0.4)
        assert rewards == sorted(rewards)
        announcements = [r.announcement.table for r in paper_result.record.rounds]
        for previous, current in zip(announcements, announcements[1:]):
            assert current.at_least_as_generous_as(previous)

    def test_overuse_trajectory_is_nonincreasing(self, paper_result):
        trajectory = paper_result.overuse_trajectory()
        assert all(b <= a + 1e-9 for a, b in zip(trajectory, trajectory[1:]))


class TestFigures8And9Customer:
    """The customer whose interface the paper shows in Figures 8 and 9."""

    def test_requirement_anchor_points(self, paper_scenario):
        requirements = paper_scenario.population.spec("c000").requirements
        assert requirements.required_reward_for(0.3) == 10.0
        assert requirements.required_reward_for(0.4) == 21.0

    def test_round_1_bid_is_02(self, paper_result):
        assert paper_result.customer_bid_trajectory("c000")[0] == pytest.approx(0.2)

    def test_rounds_2_and_3_bid_is_04(self, paper_result):
        bids = paper_result.customer_bid_trajectory("c000")
        assert bids[1] == pytest.approx(0.4)
        assert bids[2] == pytest.approx(0.4)

    def test_bid_is_highest_acceptable_cutdown_each_round(self, paper_result, paper_scenario):
        requirements = paper_scenario.population.spec("c000").requirements
        for round_record, bid in zip(
            paper_result.record.rounds, paper_result.customer_bid_trajectory("c000")
        ):
            table = round_record.announcement.table
            assert bid == pytest.approx(requirements.highest_acceptable_cutdown(table))

    def test_customer_is_awarded_and_gains(self, paper_result):
        outcome = paper_result.customer_outcomes["c000"]
        assert outcome.awarded
        assert outcome.committed_cutdown == pytest.approx(0.4)
        # The final reward exceeds the customer's requirement of 21 for 0.4.
        assert outcome.reward > 21.0
        assert outcome.surplus > 0


class TestPrototypeConsistency:
    def test_all_customers_bid_monotonically(self, paper_result, paper_scenario):
        for customer in paper_scenario.population.customer_ids:
            bids = paper_result.customer_bid_trajectory(customer)
            assert all(b >= a for a, b in zip(bids, bids[1:]))

    def test_total_reward_equals_sum_of_awards(self, paper_result):
        total = sum(o.reward for o in paper_result.customer_outcomes.values())
        assert paper_result.total_reward_paid == pytest.approx(total)

    def test_message_count_matches_protocol_shape(self, paper_result):
        # Per round: 20 announcements + 20 bids; plus 20 final award messages.
        expected = paper_result.rounds * 40 + 20
        assert paper_result.messages_sent == expected
