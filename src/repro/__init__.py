"""repro — reproduction of "Agents Negotiating for Load Balancing of Electricity Use".

Brazier, Cornelissen, Gustavsson, Jonker, Lindeberg, Polak, Treur (ICDCS 1998).

The package is organised in layers:

* :mod:`repro.runtime` — deterministic discrete-event multi-agent runtime.
* :mod:`repro.desire` — the DESIRE compositional modelling framework the
  paper's agents are designed in.
* :mod:`repro.grid` — the electricity-demand substrate (appliances,
  households, weather, demand curves, prediction, production, tariffs).
* :mod:`repro.negotiation` — the monotonic concession protocol, the Section 6
  formulae and the three announcement methods.
* :mod:`repro.agents` — the Utility Agent, Customer Agents and supporting
  agents, with their DESIRE task hierarchies.
* :mod:`repro.market` — the computational-market baseline.
* :mod:`repro.core` — scenarios, negotiation sessions and the full
  load-balancing pipeline.
* :mod:`repro.api` — the engine façade: one ``run()`` entry point over
  pluggable negotiation backends, plus the fluent scenario builder.
* :mod:`repro.analysis` — metrics, convergence analysis and ASCII plotting.
* :mod:`repro.experiments` — one module per reproduced figure/experiment.

Quickstart::

    from repro.api import run, scenario

    result = run(scenario().paper_prototype().build())
    print(result.summary())
"""

from repro.core import (
    LoadBalancingSystem,
    NegotiationResult,
    NegotiationSession,
    Scenario,
    SystemResult,
    paper_prototype_scenario,
    synthetic_scenario,
)
from repro import api
from repro.api import EngineConfig, ScenarioBuilder

__version__ = "1.1.0"

__all__ = [
    "EngineConfig",
    "LoadBalancingSystem",
    "NegotiationResult",
    "NegotiationSession",
    "Scenario",
    "ScenarioBuilder",
    "SystemResult",
    "__version__",
    "api",
    "paper_prototype_scenario",
    "synthetic_scenario",
]
