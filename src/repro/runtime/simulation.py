"""Top-level simulation driver.

A :class:`Simulation` wires together a scheduler, a message bus and a set of
*steppable* participants (anything exposing ``name`` and ``step(simulation)``)
and advances them in synchronous rounds.  The negotiation experiments in the
paper proceed in rounds (announcement -> bids -> evaluation), so a
round-synchronous driver mirrors the original prototype's control regime while
the underlying event queue still allows finer-grained scheduling when needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol, runtime_checkable

from repro.runtime.clock import SimulationClock
from repro.runtime.events import EventType
from repro.runtime.faults import FaultInjector
from repro.runtime.messaging import MessageBus
from repro.runtime.rng import RandomSource
from repro.runtime.scheduler import Scheduler


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


@runtime_checkable
class Steppable(Protocol):
    """Anything that can participate in a simulation round."""

    @property
    def name(self) -> str:  # pragma: no cover - protocol definition
        ...

    def step(self, simulation: "Simulation") -> None:  # pragma: no cover
        ...


@dataclass
class SimulationReport:
    """Summary statistics of a finished simulation run."""

    rounds_executed: int = 0
    events_dispatched: int = 0
    messages_sent: int = 0
    participants: list[str] = field(default_factory=list)
    stop_reason: str = "completed"

    def as_dict(self) -> dict[str, object]:
        return {
            "rounds_executed": self.rounds_executed,
            "events_dispatched": self.events_dispatched,
            "messages_sent": self.messages_sent,
            "participants": list(self.participants),
            "stop_reason": self.stop_reason,
        }


class Simulation:
    """Round-synchronous multi-agent simulation.

    Parameters
    ----------
    seed:
        Root seed for all stochastic components.
    max_rounds:
        Safety bound on the number of rounds :meth:`run` will execute.
    retain_message_log:
        Forwarded to :class:`~repro.runtime.messaging.MessageBus`; disable for
        large populations where retaining every message would dominate memory
        (traffic counters keep working).
    max_log_entries:
        Forwarded to :class:`~repro.runtime.messaging.MessageBus`; bounds log
        retention to the most recent messages.
    fault_injector:
        Optional :class:`~repro.runtime.faults.FaultInjector` shared with the
        bus.  When attached, messages may be dropped/delayed per its plan and
        agents registered via :meth:`FaultInjector.set_crashable` may
        crash-stop for individual rounds (their step is skipped; mailboxes
        survive and they recover next round).
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        max_rounds: int = 10_000,
        retain_message_log: bool = True,
        max_log_entries: Optional[int] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        self.random = RandomSource(seed, name="simulation")
        self.clock = SimulationClock()
        self.scheduler = Scheduler(self.clock)
        self.fault_injector = fault_injector
        self.bus = MessageBus(
            retain_log=retain_message_log,
            max_log_entries=max_log_entries,
            fault_injector=fault_injector,
        )
        self.max_rounds = max_rounds
        self._participants: dict[str, Steppable] = {}
        self._round = 0
        self._finished = False
        self._stop_requested = False
        self._stop_reason = "completed"

    # -- participants -------------------------------------------------------

    def add_participant(self, participant: Steppable) -> None:
        """Register a participant and its mailbox on the bus."""
        name = participant.name
        if name in self._participants:
            raise SimulationError(f"participant {name!r} already added")
        self._participants[name] = participant
        if not self.bus.is_registered(name):
            self.bus.register(name)

    def add_participants(self, participants: Iterable[Steppable]) -> None:
        for participant in participants:
            self.add_participant(participant)

    def participant(self, name: str) -> Steppable:
        try:
            return self._participants[name]
        except KeyError:
            raise SimulationError(f"no participant named {name!r}") from None

    @property
    def participant_names(self) -> list[str]:
        return list(self._participants)

    # -- control ------------------------------------------------------------

    @property
    def round_number(self) -> int:
        """Index of the round currently being executed (0-based)."""
        return self._round

    @property
    def finished(self) -> bool:
        return self._finished

    def request_stop(self, reason: str = "stopped by participant") -> None:
        """Ask the driver to stop after the current round completes."""
        self._stop_requested = True
        self._stop_reason = reason

    def step_round(self) -> None:
        """Execute one synchronous round: every participant steps once.

        Participants step in registration order, which (together with the
        deterministic bus) keeps whole runs reproducible.
        """
        if self._finished:
            raise SimulationError("simulation already finished; create a new one")
        if not self._participants:
            raise SimulationError("cannot step a simulation with no participants")
        self.scheduler.schedule_at(
            self.clock.now, EventType.ROUND_BOUNDARY, payload=self._round
        )
        self.scheduler.run(until=self.clock.now)
        injector = self.fault_injector
        if injector is None:
            for participant in self._participants.values():
                participant.step(self)
        else:
            # Delayed messages land at the round boundary, before anyone
            # steps — indistinguishable from a slow but successful delivery.
            self.bus.release_delayed()
            for participant in self._participants.values():
                if injector.should_crash(participant.name, self._round):
                    continue
                participant.step(self)
        self._round += 1
        self.clock.advance_by(1.0)

    def run(
        self,
        rounds: Optional[int] = None,
        stop_when: Optional[callable] = None,
    ) -> SimulationReport:
        """Run until a round budget, a stop condition or ``max_rounds``.

        Parameters
        ----------
        rounds:
            Number of rounds to execute in this call (default: up to
            ``max_rounds``).
        stop_when:
            Callable evaluated *after* each round; the run ends when it
            returns ``True``.
        """
        budget = rounds if rounds is not None else self.max_rounds
        if budget <= 0:
            raise ValueError(f"rounds must be positive, got {budget}")
        executed = 0
        while executed < budget:
            if self._round >= self.max_rounds:
                self._stop_reason = "max_rounds reached"
                break
            self.step_round()
            executed += 1
            if self._stop_requested:
                break
            if stop_when is not None and stop_when():
                self._stop_reason = "stop condition satisfied"
                break
        else:
            self._stop_reason = "round budget exhausted"
        self._finished = True
        return SimulationReport(
            rounds_executed=executed,
            events_dispatched=self.scheduler.dispatched_count,
            messages_sent=self.bus.message_count(),
            participants=self.participant_names,
            stop_reason=self._stop_reason,
        )
