"""Deterministic discrete-event scheduler.

The scheduler owns the :class:`~repro.runtime.clock.SimulationClock` and the
:class:`~repro.runtime.events.EventQueue`.  Callers schedule events at
absolute times or after delays, and :meth:`Scheduler.run` dispatches them in
order until the queue is exhausted, a time horizon is reached or a stop
condition holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.runtime.clock import SimulationClock
from repro.runtime.events import Event, EventQueue, EventType


@dataclass
class ScheduledTask:
    """Handle for a scheduled (possibly repeating) task."""

    event: Event
    interval: Optional[float] = None
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True


class Scheduler:
    """Dispatches events in deterministic time order."""

    def __init__(self, clock: Optional[SimulationClock] = None) -> None:
        self.clock = clock if clock is not None else SimulationClock()
        self.queue = EventQueue()
        self._dispatched = 0
        self._handlers: dict[EventType, list[Callable[[Event], None]]] = {}

    @property
    def dispatched_count(self) -> int:
        """Number of events dispatched so far."""
        return self._dispatched

    # -- registration ------------------------------------------------------

    def add_handler(self, event_type: EventType, handler: Callable[[Event], None]) -> None:
        """Register a handler invoked for every dispatched event of a type."""
        self._handlers.setdefault(event_type, []).append(handler)

    # -- scheduling --------------------------------------------------------

    def schedule_at(
        self,
        when: float,
        event_type: EventType,
        target: Optional[str] = None,
        payload: object = None,
        priority: int = 0,
        action: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        """Schedule an event at absolute simulation time ``when``."""
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule event at {when}, current time is {self.clock.now}"
            )
        event = Event(
            time=when,
            event_type=event_type,
            target=target,
            payload=payload,
            priority=priority,
            action=action,
        )
        return self.queue.push(event)

    def schedule_after(
        self,
        delay: float,
        event_type: EventType,
        target: Optional[str] = None,
        payload: object = None,
        priority: int = 0,
        action: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        """Schedule an event ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(
            self.clock.now + delay, event_type, target, payload, priority, action
        )

    def schedule_repeating(
        self,
        first: float,
        interval: float,
        event_type: EventType,
        target: Optional[str] = None,
        payload: object = None,
        priority: int = 0,
        action: Optional[Callable[[Event], None]] = None,
    ) -> ScheduledTask:
        """Schedule an event that re-arms itself every ``interval`` ticks."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        task = ScheduledTask(event=None, interval=interval)  # type: ignore[arg-type]

        def repeating_action(event: Event) -> None:
            if task.cancelled:
                return
            if action is not None:
                action(event)
            next_event = self.schedule_at(
                event.time + interval, event_type, target, payload, priority, repeating_action
            )
            task.event = next_event

        task.event = self.schedule_at(
            first, event_type, target, payload, priority, repeating_action
        )
        return task

    # -- execution ---------------------------------------------------------

    def step(self) -> Optional[Event]:
        """Dispatch the next pending event, advancing the clock to its time.

        Returns the dispatched event, or ``None`` when the queue is empty.
        """
        if not self.queue:
            return None
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        self._dispatch(event)
        return event

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_condition: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Dispatch events until exhaustion, a horizon or a stop condition.

        Parameters
        ----------
        until:
            Do not dispatch events scheduled after this time (the clock is
            left at the last dispatched event's time, not advanced to
            ``until``).
        max_events:
            Upper bound on the number of events to dispatch in this call.
        stop_condition:
            Checked before each dispatch; when it returns ``True`` the run
            ends.

        Returns
        -------
        int
            Number of events dispatched by this call.
        """
        dispatched = 0
        while self.queue:
            if stop_condition is not None and stop_condition():
                break
            if max_events is not None and dispatched >= max_events:
                break
            next_time = self.queue.next_time()
            if until is not None and next_time is not None and next_time > until:
                break
            event = self.queue.pop()
            self.clock.advance_to(event.time)
            self._dispatch(event)
            dispatched += 1
        return dispatched

    def _dispatch(self, event: Event) -> None:
        self._dispatched += 1
        if event.action is not None:
            event.action(event)
        for handler in self._handlers.get(event.event_type, []):
            handler(event)
