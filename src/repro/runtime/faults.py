"""Deterministic fault injection for the negotiation runtime.

The paper's agents negotiate over an unreliable distributed substrate; this
module supplies the *unreliability* — reproducibly.  A :class:`FaultPlan` is a
frozen description of which faults to inject at which rates, and a
:class:`FaultInjector` turns the plan into concrete per-message, per-agent and
per-shard fault decisions that depend only on ``(plan.seed, fault kind,
round/sequence position, subject)``.  Two runs with the same plan therefore
inject exactly the same faults, which is what makes chaos regressions
debuggable and the chaos test-suite deterministic.

**Zero-rate identity.**  Every draw is gated on its rate: a plan whose rates
are all ``0.0`` draws nothing, mutates nothing and takes the exact same code
paths as a run with injection disabled, so the chaos machinery itself cannot
perturb fault-free results.  That is the oracle contract the chaos suite pins
(see ``tests/test_chaos_properties.py``).

Fault surfaces
--------------
``message_drop_rate``
    Each :meth:`~repro.runtime.messaging.MessageBus.send` delivery attempt
    fails with this probability; the bus retries up to
    ``max_send_attempts`` times (with optional exponential backoff), so a
    message is only *lost* when every attempt fails.
``message_delay_rate``
    A delivered message is instead held back for ``message_delay_rounds``
    simulation rounds before landing in the receiver's mailbox.
``crash_rate``
    A customer agent skips its entire simulation round (crash-stop for one
    round; it recovers on the next round with its mailbox intact).
``shard_failure_rate``
    A sharded-session worker raises mid-kernel; the session recovers via
    inline retry, then a per-customer oracle decomposition
    (see :class:`~repro.agents.sharded.ShardedPopulation`).

The batched backends have no per-message bus, so the injector also exposes
:meth:`FaultInjector.customer_round_masks`: the *aggregate* effect of the
same fault kinds on one announcement/bid exchange, as boolean masks over the
population.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Optional

import numpy as np

__all__ = ["FaultPlan", "FaultInjector", "InjectedShardFault", "RoundFaults"]


#: Stream tags keeping the vectorized per-round draws of different fault
#: kinds independent of each other (and of the digest-based scalar draws).
_STREAM_FAST_PATH = 101


class InjectedShardFault(RuntimeError):
    """Raised inside a shard worker when the plan injects a shard failure."""


def _canonical_seed(seed: int) -> int:
    """A non-negative 32-bit seed word for :class:`numpy.random.SeedSequence`."""
    return int(seed) & 0xFFFFFFFF


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible description of the faults to inject into one run.

    All rates are probabilities in ``[0, 1]`` and default to ``0.0`` (no
    injection).  The plan is frozen and hashable so it can ride inside the
    frozen :class:`~repro.api.config.EngineConfig`.

    Attributes
    ----------
    seed:
        Root seed of every fault decision; two runs with equal plans inject
        identical faults.
    message_drop_rate:
        Probability that one bus delivery *attempt* fails (transient).
    message_delay_rate:
        Probability that a delivered message is held ``message_delay_rounds``
        simulation rounds before reaching its mailbox.
    crash_rate:
        Per-round probability that a customer agent crash-stops for the round.
    shard_failure_rate:
        Per-kernel-call probability that a shard worker raises.
    max_send_attempts:
        Bounded retry budget of :meth:`MessageBus.send` under transient
        drops; a message is lost only when all attempts fail.
    backoff_base_seconds:
        Base of the exponential retry backoff (``base * 2**attempt``).  The
        default ``0.0`` keeps chaos tests wall-clock free; production-style
        runs can opt into real sleeps.
    message_delay_rounds:
        How many simulation rounds a delayed message is held.
    bid_deadline_rounds:
        How many simulation rounds the Utility Agent waits for missing bids
        before evaluating the round without them (protocol-level
        degradation).  Must exceed ``message_delay_rounds`` for delays to be
        absorbed rather than degrade.
    """

    seed: int = 0
    message_drop_rate: float = 0.0
    message_delay_rate: float = 0.0
    crash_rate: float = 0.0
    shard_failure_rate: float = 0.0
    max_send_attempts: int = 3
    backoff_base_seconds: float = 0.0
    message_delay_rounds: int = 2
    bid_deadline_rounds: int = 3

    def __post_init__(self) -> None:
        for name in (
            "message_drop_rate",
            "message_delay_rate",
            "crash_rate",
            "shard_failure_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.max_send_attempts < 1:
            raise ValueError(
                f"max_send_attempts must be at least 1, got {self.max_send_attempts}"
            )
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be non-negative")
        if self.message_delay_rounds < 1:
            raise ValueError(
                f"message_delay_rounds must be at least 1, got {self.message_delay_rounds}"
            )
        if self.bid_deadline_rounds < 1:
            raise ValueError(
                f"bid_deadline_rounds must be at least 1, got {self.bid_deadline_rounds}"
            )

    # -- derived views -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether any fault kind has a non-zero rate."""
        return (
            self.message_drop_rate > 0
            or self.message_delay_rate > 0
            or self.crash_rate > 0
            or self.shard_failure_rate > 0
        )

    @property
    def message_loss_rate(self) -> float:
        """Probability a message is lost after every retry attempt fails."""
        return self.message_drop_rate ** self.max_send_attempts

    def as_dict(self) -> dict[str, object]:
        return asdict(self)


@dataclass
class RoundFaults:
    """Aggregate fault masks for one batched announcement/bid exchange.

    One boolean entry per customer, population order.  ``suppressed``
    customers never saw the announcement (crashed, or the announcement was
    permanently lost) — their negotiation state must not advance.
    ``undelivered`` additionally covers bids that were sent but never reached
    the Utility Agent in time; those customers' state advanced, but the round
    treats them as silent rejects (zero cut-down).
    """

    crashed: np.ndarray
    announce_lost: np.ndarray
    bid_lost: np.ndarray
    delayed: np.ndarray
    delay_degrades: bool

    @property
    def suppressed(self) -> np.ndarray:
        """Customers whose agent never processed this round's announcement."""
        return self.crashed | self.announce_lost

    @property
    def undelivered(self) -> np.ndarray:
        """Customers contributing no bid to this round's evaluation."""
        lost = self.suppressed | self.bid_lost
        if self.delay_degrades:
            lost = lost | self.delayed
        return lost


class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic fault decisions.

    Scalar decisions (object-path crashes, shard failures) are digest-based:
    each is a pure function of ``(seed, kind, position, subject)``, so they
    are independent of evaluation order and of ``PYTHONHASHSEED``.  Bus
    delivery fates consume a per-injector send sequence (the bus is
    single-threaded and sends in deterministic order).  Batched per-round
    masks draw from a fresh ``numpy`` generator keyed on
    ``(seed, stream, round)``.  Counters of every injected fault accumulate
    into :meth:`report`, which sessions attach to
    ``NegotiationResult.metadata["faults"]``.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counters: dict[str, int] = {
            "messages_dropped": 0,
            "messages_delayed": 0,
            "send_retries": 0,
            "agent_crashes": 0,
            "shard_failures_injected": 0,
            "shard_inline_retries": 0,
            "shard_oracle_fallbacks": 0,
        }
        self._crashable: frozenset[str] = frozenset()
        self._send_index = 0

    # -- sub-system gates --------------------------------------------------------

    @property
    def message_faults(self) -> bool:
        """Whether the bus layer has anything to inject."""
        return self.plan.message_drop_rate > 0 or self.plan.message_delay_rate > 0

    @property
    def crash_faults(self) -> bool:
        return self.plan.crash_rate > 0

    @property
    def shard_faults(self) -> bool:
        return self.plan.shard_failure_rate > 0

    @property
    def fast_path_faults(self) -> bool:
        """Whether the batched sessions need per-round fault masks at all."""
        return self.message_faults or self.crash_faults

    # -- deterministic draws -----------------------------------------------------

    def _chance(self, *key: object) -> float:
        """A uniform draw in ``[0, 1)`` determined entirely by ``key``.

        blake2b rather than ``hash()``: stable across processes and immune
        to ``PYTHONHASHSEED``, so fault positions replay exactly.
        """
        payload = "|".join(str(part) for part in (self.plan.seed, *key))
        digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    # -- object path: agent crashes ----------------------------------------------

    def set_crashable(self, names) -> None:
        """Restrict crash injection to the given agent names (customer agents)."""
        self._crashable = frozenset(names)

    def should_crash(self, name: str, round_number: int) -> bool:
        """Whether ``name`` crash-stops for simulation round ``round_number``."""
        if not self.crash_faults or name not in self._crashable:
            return False
        if self._chance("crash", round_number, name) < self.plan.crash_rate:
            self.counters["agent_crashes"] += 1
            return True
        return False

    # -- object path: bus delivery fates -----------------------------------------

    def delivery_fate(self) -> tuple[str, int]:
        """Fate of the next bus delivery: ``(fate, attempts_used)``.

        ``fate`` is ``"delivered"``, ``"dropped"`` (every retry attempt
        failed) or ``"delayed"`` (delivered, but held back
        ``plan.message_delay_rounds`` rounds).  Counters update as a side
        effect; the send sequence number makes each fate deterministic.
        """
        index = self._send_index
        self._send_index += 1
        plan = self.plan
        attempts = 1
        if plan.message_drop_rate > 0:
            for attempt in range(plan.max_send_attempts):
                attempts = attempt + 1
                if self._chance("send", index, attempt) >= plan.message_drop_rate:
                    break
            else:
                self.counters["messages_dropped"] += 1
                self.counters["send_retries"] += plan.max_send_attempts - 1
                return "dropped", plan.max_send_attempts
            self.counters["send_retries"] += attempts - 1
        if (
            plan.message_delay_rate > 0
            and self._chance("delay", index) < plan.message_delay_rate
        ):
            self.counters["messages_delayed"] += 1
            return "delayed", attempts
        return "delivered", attempts

    # -- batched path: per-round masks -------------------------------------------

    def customer_round_masks(self, num_customers: int, round_number: int) -> RoundFaults:
        """The aggregate effect of the plan on one batched exchange.

        Mirrors the object path's fault surfaces: a crash or a permanently
        lost announcement suppresses the customer's response entirely, a lost
        bid or an over-deadline delay makes the bid miss the evaluation.  A
        delay only degrades when it exceeds the bid deadline — shorter delays
        are absorbed by the deadline, exactly as on the object path.
        """
        plan = self.plan
        rng = np.random.default_rng(
            [_canonical_seed(plan.seed), _STREAM_FAST_PATH, int(round_number)]
        )
        zeros = np.zeros(num_customers, dtype=bool)

        def mask(rate: float) -> np.ndarray:
            # Gated on the rate: a zero-rate kind draws nothing, so disabled
            # and zero-rate plans are indistinguishable draw-for-draw.
            if rate <= 0:
                return zeros
            return rng.random(num_customers) < rate

        crashed = mask(plan.crash_rate)
        loss = plan.message_loss_rate
        announce_lost = mask(loss)
        bid_lost = mask(loss)
        delayed = mask(plan.message_delay_rate)
        faults = RoundFaults(
            crashed=crashed,
            announce_lost=announce_lost,
            bid_lost=bid_lost,
            delayed=delayed,
            delay_degrades=plan.message_delay_rounds > plan.bid_deadline_rounds,
        )
        self.counters["agent_crashes"] += int(crashed.sum())
        self.counters["messages_dropped"] += int(announce_lost.sum()) + int(
            bid_lost.sum()
        )
        self.counters["messages_delayed"] += int(delayed.sum())
        return faults

    # -- sharded path: worker failures -------------------------------------------

    def should_fail_shard(self, call_index: int, shard_index: int, attempt: int) -> bool:
        """Whether kernel call ``call_index`` fails on ``shard_index``.

        ``attempt`` 0 is the pooled run, 1 the inline retry; both draw
        independently so a high rate exercises the full recovery ladder down
        to the per-customer oracle decomposition.
        """
        if not self.shard_faults:
            return False
        if (
            self._chance("shard", call_index, shard_index, attempt)
            < self.plan.shard_failure_rate
        ):
            self.counters["shard_failures_injected"] += 1
            return True
        return False

    def record_shard_recovery(self, stage: str) -> None:
        """Count one successful shard recovery (``inline_retry`` / ``oracle``)."""
        if stage == "inline_retry":
            self.counters["shard_inline_retries"] += 1
        else:
            self.counters["shard_oracle_fallbacks"] += 1

    # -- reporting ----------------------------------------------------------------

    def report(self) -> dict[str, object]:
        """The plan plus every injected-fault counter, for result metadata."""
        return {"plan": self.plan.as_dict(), "injected": dict(self.counters)}
