"""Typed messages, mailboxes and the message bus.

The paper's agents interact exclusively through communicated information
(announcements, bids, awards), mediated by the DESIRE environment.  The
:class:`MessageBus` plays that mediating role: agents never hold references
to each other, they only know each other's names and exchange
:class:`Message` objects through the bus.  Delivery order is deterministic
(FIFO per sender, senders interleaved in registration order).

Traffic statistics are *streaming*: the bus maintains a total counter and a
per-performative histogram at send time, so :meth:`MessageBus.message_count`
and :meth:`MessageBus.messages_by_performative` are O(1) and never rescan the
log.  For large-population runs the log itself can be bounded
(``max_log_entries``) or disabled outright (``retain_log=False``) without
affecting the counters, and :meth:`MessageBus.broadcast` stamps ids in one
batched pass instead of re-dispatching through :meth:`MessageBus.send` per
receiver.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Optional, Sequence, Union

from repro.desire.errors import UnknownAgentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.faults import FaultInjector


class Performative(Enum):
    """Speech-act classification of messages in the negotiation domain."""

    #: Utility Agent announces an offer / request-for-bids / reward table.
    ANNOUNCE = "announce"
    #: Customer Agent responds with a bid (or yes/no for the offer method).
    BID = "bid"
    #: Utility Agent accepts a bid.
    AWARD = "award"
    #: Utility Agent rejects a bid (or ends the negotiation without award).
    REJECT = "reject"
    #: Negotiation-terminating confirmation.
    CONFIRM = "confirm"
    #: Generic information passing (weather, consumption, production data).
    INFORM = "inform"
    #: Request for information (UA -> Producer Agent, CA -> Resource Consumer).
    REQUEST = "request"
    #: Reply to a REQUEST.
    REPLY = "reply"


@dataclass(frozen=True)
class Message:
    """An immutable message exchanged between two agents.

    Attributes
    ----------
    sender / receiver:
        Agent names as registered on the bus.
    performative:
        Speech act.
    content:
        Arbitrary payload (an :class:`~repro.negotiation.messages.Announcement`,
        a :class:`~repro.negotiation.messages.Bid`, a dict of observations...).
    conversation_id:
        Identifier tying together all messages of one negotiation process.
    round_number:
        Negotiation round the message belongs to (0-based), if applicable.
    message_id:
        Unique id assigned by the bus at send time (``-1`` before sending).
    """

    sender: str
    receiver: str
    performative: Performative
    content: Any = None
    conversation_id: str = ""
    round_number: Optional[int] = None
    message_id: int = field(default=-1, compare=False)

    def with_id(self, message_id: int) -> "Message":
        """Copy of the message carrying its bus-assigned id."""
        return replace(self, message_id=message_id)


class Mailbox:
    """FIFO queue of messages awaiting processing by one agent."""

    def __init__(self, owner: str) -> None:
        self._owner = owner
        self._queue: deque[Message] = deque()

    @property
    def owner(self) -> str:
        return self._owner

    def __len__(self) -> int:
        return len(self._queue)

    def deliver(self, message: Message) -> None:
        """Append a message (called by the bus)."""
        if message.receiver != self._owner:
            raise ValueError(
                f"message for {message.receiver!r} delivered to mailbox of {self._owner!r}"
            )
        self._queue.append(message)

    def collect(self) -> list[Message]:
        """Remove and return every pending message, oldest first."""
        messages = list(self._queue)
        self._queue.clear()
        return messages

    def collect_matching(
        self,
        performative: Optional[Performative] = None,
        conversation_id: Optional[str] = None,
    ) -> list[Message]:
        """Remove and return pending messages matching the given filters."""
        matched: list[Message] = []
        remaining: deque[Message] = deque()
        for message in self._queue:
            performative_ok = performative is None or message.performative == performative
            conversation_ok = (
                conversation_id is None or message.conversation_id == conversation_id
            )
            if performative_ok and conversation_ok:
                matched.append(message)
            else:
                remaining.append(message)
        if not matched:
            return matched
        self._queue = remaining
        return matched

    def peek(self) -> Optional[Message]:
        """The oldest pending message without removing it, or ``None``."""
        return self._queue[0] if self._queue else None


class MessageLogView(Sequence):
    """Read-only, zero-copy view over the bus's message log.

    Iteration and indexing go straight to the underlying storage; mutation is
    not offered.  Obtained via :attr:`MessageBus.log`.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Union[list[Message], deque]) -> None:
        self._entries = entries

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            # A bounded log is deque-backed, which does not support slicing
            # (and islice rejects the negative indices of reversed slices);
            # bounded logs are small by construction, so copying is fine.
            if isinstance(self._entries, deque):
                return list(self._entries)[index]
            return self._entries[index]
        return self._entries[index]

    def __iter__(self) -> Iterator[Message]:
        return iter(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageLogView({len(self._entries)} messages)"


class MessageBus:
    """Connects named agents and transports messages between them.

    The bus keeps a log of every message sent, which the analysis layer uses
    to reconstruct traces, plus *streaming* per-performative counters that are
    maintained at send time so traffic statistics never rescan the log.

    Parameters
    ----------
    retain_log:
        When ``False`` no messages are retained at all (counters keep
        working); use this for large-population runs where the log would
        dominate memory.
    max_log_entries:
        When set, only the most recent ``max_log_entries`` messages are
        retained (a bounded ring); counters still cover all traffic.
    fault_injector:
        Optional :class:`~repro.runtime.faults.FaultInjector` deciding per
        delivery whether a message is dropped (after the bounded
        retry-with-backoff budget), delayed or delivered.  ``None`` — and an
        injector whose message rates are zero — leaves the transport
        untouched.
    """

    def __init__(
        self,
        retain_log: bool = True,
        max_log_entries: Optional[int] = None,
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        if max_log_entries is not None and max_log_entries < 0:
            raise ValueError("max_log_entries must be non-negative")
        self._mailboxes: dict[str, Mailbox] = {}
        self._retain_log = retain_log and (max_log_entries is None or max_log_entries > 0)
        self._max_log_entries = max_log_entries
        self._log: Union[list[Message], deque] = (
            [] if max_log_entries is None else deque(maxlen=max_log_entries)
        )
        self._counter = itertools.count()
        self._observers: list[Callable[[Message], None]] = []
        self._total_sent = 0
        self._performative_counts: dict[Performative, int] = {}
        #: Seqlock version for :meth:`counters_snapshot`: odd while a counter
        #: update is in flight, even when the counters are consistent.  The
        #: write side is two integer increments, so the engine hot path pays
        #: nothing measurable for cross-thread snapshot consistency.
        self._counters_version = 0
        self._injector = fault_injector
        #: Delayed messages as ``[rounds_remaining, message]`` pairs, released
        #: by :meth:`release_delayed` once their hold expires.
        self._delayed: list[list] = []

    # -- registration ------------------------------------------------------

    def register(self, name: str) -> Mailbox:
        """Register an agent name and return its mailbox."""
        if not name:
            raise ValueError("agent name must be non-empty")
        if name in self._mailboxes:
            raise ValueError(f"agent {name!r} is already registered on the bus")
        mailbox = Mailbox(name)
        self._mailboxes[name] = mailbox
        return mailbox

    def unregister(self, name: str) -> None:
        """Remove an agent from the bus (pending messages are dropped)."""
        self._mailboxes.pop(name, None)

    def is_registered(self, name: str) -> bool:
        return name in self._mailboxes

    @property
    def agent_names(self) -> list[str]:
        """Registered agent names in registration order."""
        return list(self._mailboxes)

    # -- transport ---------------------------------------------------------

    def send(self, message: Message) -> Message:
        """Deliver a message to the receiver's mailbox.

        Returns the stamped copy of the message (with its assigned id).  With
        a fault injector attached, each delivery may be transiently dropped —
        the bus retries up to ``plan.max_send_attempts`` times with
        exponential backoff — or delayed; a message whose every attempt fails
        is silently lost (the sender cannot tell, exactly as on a real
        substrate) and is neither logged nor counted as traffic.
        """
        if message.receiver not in self._mailboxes:
            raise UnknownAgentError("receiver", message.receiver, len(self._mailboxes))
        if message.sender not in self._mailboxes:
            raise UnknownAgentError("sender", message.sender, len(self._mailboxes))
        injector = self._injector
        if injector is not None and injector.message_faults:
            fate, attempts = injector.delivery_fate()
            self._sleep_backoff(attempts)
            if fate == "dropped":
                return message.with_id(next(self._counter))
            if fate == "delayed":
                stamped = message.with_id(next(self._counter))
                self._delayed.append(
                    [injector.plan.message_delay_rounds, stamped]
                )
                self._record(stamped)
                return stamped
        stamped = message.with_id(next(self._counter))
        self._mailboxes[message.receiver].deliver(stamped)
        self._record(stamped)
        return stamped

    def _sleep_backoff(self, attempts: int) -> None:
        """Exponential backoff for the retries behind one delivery fate.

        The injector resolves the whole retry ladder in one decision, so the
        bus sleeps the accumulated backoff after the fact; the default
        ``backoff_base_seconds=0.0`` keeps chaos tests wall-clock free.
        """
        if attempts <= 1 or self._injector is None:
            return
        base = self._injector.plan.backoff_base_seconds
        if base > 0:
            time.sleep(sum(base * 2 ** retry for retry in range(attempts - 1)))

    def release_delayed(self) -> int:
        """Advance delayed messages one round; deliver the ones now due.

        Called by the simulation at each round boundary.  Returns how many
        messages were released into mailboxes this call.  Messages whose
        receiver unregistered while they were in flight are dropped.
        """
        if not self._delayed:
            return 0
        released = 0
        still_held: list[list] = []
        for entry in self._delayed:
            entry[0] -= 1
            if entry[0] > 0:
                still_held.append(entry)
                continue
            message = entry[1]
            mailbox = self._mailboxes.get(message.receiver)
            if mailbox is not None:
                mailbox.deliver(message)
                released += 1
        self._delayed = still_held
        return released

    def _record(self, stamped: Message) -> None:
        """Streaming bookkeeping for one sent message."""
        self._counters_version += 1
        self._total_sent += 1
        counts = self._performative_counts
        performative = stamped.performative
        counts[performative] = counts.get(performative, 0) + 1
        self._counters_version += 1
        if self._retain_log:
            self._log.append(stamped)
        for observer in self._observers:
            observer(stamped)

    def broadcast(
        self, sender: str, receivers: Iterable[str], performative: Performative,
        content: Any, conversation_id: str = "", round_number: Optional[int] = None,
    ) -> list[Message]:
        """Send the same content to many receivers (one message each).

        The batched path stamps ids directly at construction time — no
        intermediate unstamped message, no per-receiver re-dispatch through
        :meth:`send` — which matters when one announcement fans out to
        thousands of Customer Agents.
        """
        if sender not in self._mailboxes:
            raise UnknownAgentError("sender", sender, len(self._mailboxes))
        mailboxes = self._mailboxes
        counter = self._counter
        # Validate every receiver before delivering anything, so a failed
        # broadcast never leaves partially delivered (and uncounted) messages.
        resolved: list[tuple[str, Mailbox]] = []
        for receiver in receivers:
            try:
                resolved.append((receiver, mailboxes[receiver]))
            except KeyError:
                raise UnknownAgentError(
                    "receiver", receiver, len(self._mailboxes)
                ) from None
        injector = self._injector
        sent: list[Message] = []
        for receiver, mailbox in resolved:
            fate = "delivered"
            if injector is not None and injector.message_faults:
                fate, attempts = injector.delivery_fate()
                self._sleep_backoff(attempts)
            stamped = Message(
                sender=sender,
                receiver=receiver,
                performative=performative,
                content=content,
                conversation_id=conversation_id,
                round_number=round_number,
                message_id=next(counter),
            )
            if fate == "dropped":
                continue
            if fate == "delayed":
                self._delayed.append([injector.plan.message_delay_rounds, stamped])
                sent.append(stamped)
                continue
            # The receiver matches the mailbox owner by construction, so the
            # per-message ownership check in Mailbox.deliver is skipped.
            mailbox._queue.append(stamped)
            sent.append(stamped)
        if sent:
            self._counters_version += 1
            self._total_sent += len(sent)
            counts = self._performative_counts
            counts[performative] = counts.get(performative, 0) + len(sent)
            self._counters_version += 1
            if self._retain_log:
                self._log.extend(sent)
            if self._observers:
                for stamped in sent:
                    for observer in self._observers:
                        observer(stamped)
        return sent

    def mailbox(self, name: str) -> Mailbox:
        """The mailbox of a registered agent."""
        try:
            return self._mailboxes[name]
        except KeyError:
            raise UnknownAgentError("agent", name, len(self._mailboxes)) from None

    # -- observation -------------------------------------------------------

    def add_observer(self, observer: Callable[[Message], None]) -> None:
        """Register a callback invoked for every sent message."""
        self._observers.append(observer)

    @property
    def log(self) -> MessageLogView:
        """Read-only view of the retained messages, in send order.

        With ``retain_log=False`` the view is empty; with ``max_log_entries``
        it covers only the most recent messages.  :meth:`message_count` and
        :meth:`messages_by_performative` always cover *all* traffic.
        """
        return MessageLogView(self._log)

    @property
    def retains_log(self) -> bool:
        """Whether sent messages are retained for trace reconstruction."""
        return self._retain_log

    def message_count(self) -> int:
        """Total messages sent so far (streaming counter, O(1))."""
        return self._total_sent

    def messages_by_performative(self) -> dict[Performative, int]:
        """Histogram of message counts per performative.

        Read from the streaming counters maintained at send time — no log
        rescan, and correct even when log retention is bounded or disabled.
        """
        return dict(self._performative_counts)

    def counters_snapshot(self) -> tuple[int, dict[Performative, int]]:
        """A consistent point-in-time copy of the streaming traffic counters.

        Returns ``(total_sent, per_performative_histogram)`` such that the
        total equals the sum of the histogram — even when another thread is
        concurrently sending through the bus.  This is the read side of a
        seqlock: counter updates bump :attr:`_counters_version` to odd before
        mutating and back to even after, and the reader retries until it
        observes one even version across the whole copy.  The engine loop
        stays lock-free; a serving layer streaming round progress from
        another thread uses this instead of racing
        :meth:`message_count` / :meth:`messages_by_performative`.

        The spin is bounded; if the writer outruns the reader for the whole
        budget (pathological), the last copy is returned as a best effort —
        under CPython's GIL each retry still sees a *memory-safe* copy, it
        just may mix two updates.
        """
        total = self._total_sent
        counts = dict(self._performative_counts)
        for _ in range(1000):
            before = self._counters_version
            if before & 1:
                continue
            try:
                total = self._total_sent
                counts = dict(self._performative_counts)
            except RuntimeError:
                # The histogram resized mid-copy; the version check below
                # would reject this read anyway.
                continue
            if self._counters_version == before:
                return total, counts
        return total, counts

    def conversation(self, conversation_id: str) -> list[Message]:
        """All *retained* messages belonging to one conversation, in send order."""
        return [m for m in self._log if m.conversation_id == conversation_id]

    def clear_log(self) -> None:
        """Drop the message log and counters (mailbox contents are untouched)."""
        self._log.clear()
        self._counters_version += 1
        self._total_sent = 0
        self._performative_counts.clear()
        self._counters_version += 1
