"""Typed messages, mailboxes and the message bus.

The paper's agents interact exclusively through communicated information
(announcements, bids, awards), mediated by the DESIRE environment.  The
:class:`MessageBus` plays that mediating role: agents never hold references
to each other, they only know each other's names and exchange
:class:`Message` objects through the bus.  Delivery order is deterministic
(FIFO per sender, senders interleaved in registration order).
"""

from __future__ import annotations

import itertools
from collections import defaultdict, deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterable, Optional


class Performative(Enum):
    """Speech-act classification of messages in the negotiation domain."""

    #: Utility Agent announces an offer / request-for-bids / reward table.
    ANNOUNCE = "announce"
    #: Customer Agent responds with a bid (or yes/no for the offer method).
    BID = "bid"
    #: Utility Agent accepts a bid.
    AWARD = "award"
    #: Utility Agent rejects a bid (or ends the negotiation without award).
    REJECT = "reject"
    #: Negotiation-terminating confirmation.
    CONFIRM = "confirm"
    #: Generic information passing (weather, consumption, production data).
    INFORM = "inform"
    #: Request for information (UA -> Producer Agent, CA -> Resource Consumer).
    REQUEST = "request"
    #: Reply to a REQUEST.
    REPLY = "reply"


@dataclass(frozen=True)
class Message:
    """An immutable message exchanged between two agents.

    Attributes
    ----------
    sender / receiver:
        Agent names as registered on the bus.
    performative:
        Speech act.
    content:
        Arbitrary payload (an :class:`~repro.negotiation.messages.Announcement`,
        a :class:`~repro.negotiation.messages.Bid`, a dict of observations...).
    conversation_id:
        Identifier tying together all messages of one negotiation process.
    round_number:
        Negotiation round the message belongs to (0-based), if applicable.
    message_id:
        Unique id assigned by the bus at send time (``-1`` before sending).
    """

    sender: str
    receiver: str
    performative: Performative
    content: Any = None
    conversation_id: str = ""
    round_number: Optional[int] = None
    message_id: int = field(default=-1, compare=False)

    def with_id(self, message_id: int) -> "Message":
        """Copy of the message carrying its bus-assigned id."""
        return Message(
            sender=self.sender,
            receiver=self.receiver,
            performative=self.performative,
            content=self.content,
            conversation_id=self.conversation_id,
            round_number=self.round_number,
            message_id=message_id,
        )


class Mailbox:
    """FIFO queue of messages awaiting processing by one agent."""

    def __init__(self, owner: str) -> None:
        self._owner = owner
        self._queue: deque[Message] = deque()

    @property
    def owner(self) -> str:
        return self._owner

    def __len__(self) -> int:
        return len(self._queue)

    def deliver(self, message: Message) -> None:
        """Append a message (called by the bus)."""
        if message.receiver != self._owner:
            raise ValueError(
                f"message for {message.receiver!r} delivered to mailbox of {self._owner!r}"
            )
        self._queue.append(message)

    def collect(self) -> list[Message]:
        """Remove and return every pending message, oldest first."""
        messages = list(self._queue)
        self._queue.clear()
        return messages

    def collect_matching(
        self,
        performative: Optional[Performative] = None,
        conversation_id: Optional[str] = None,
    ) -> list[Message]:
        """Remove and return pending messages matching the given filters."""
        matched: list[Message] = []
        remaining: deque[Message] = deque()
        for message in self._queue:
            performative_ok = performative is None or message.performative == performative
            conversation_ok = (
                conversation_id is None or message.conversation_id == conversation_id
            )
            if performative_ok and conversation_ok:
                matched.append(message)
            else:
                remaining.append(message)
        self._queue = remaining
        return matched

    def peek(self) -> Optional[Message]:
        """The oldest pending message without removing it, or ``None``."""
        return self._queue[0] if self._queue else None


class MessageBus:
    """Connects named agents and transports messages between them.

    The bus keeps a full log of every message sent, which the analysis layer
    uses to count negotiation traffic and reconstruct traces.
    """

    def __init__(self) -> None:
        self._mailboxes: dict[str, Mailbox] = {}
        self._log: list[Message] = []
        self._counter = itertools.count()
        self._observers: list[Callable[[Message], None]] = []

    # -- registration ------------------------------------------------------

    def register(self, name: str) -> Mailbox:
        """Register an agent name and return its mailbox."""
        if not name:
            raise ValueError("agent name must be non-empty")
        if name in self._mailboxes:
            raise ValueError(f"agent {name!r} is already registered on the bus")
        mailbox = Mailbox(name)
        self._mailboxes[name] = mailbox
        return mailbox

    def unregister(self, name: str) -> None:
        """Remove an agent from the bus (pending messages are dropped)."""
        self._mailboxes.pop(name, None)

    def is_registered(self, name: str) -> bool:
        return name in self._mailboxes

    @property
    def agent_names(self) -> list[str]:
        """Registered agent names in registration order."""
        return list(self._mailboxes)

    # -- transport ---------------------------------------------------------

    def send(self, message: Message) -> Message:
        """Deliver a message to the receiver's mailbox.

        Returns the stamped copy of the message (with its assigned id).
        """
        if message.receiver not in self._mailboxes:
            raise KeyError(f"unknown receiver {message.receiver!r}")
        if message.sender not in self._mailboxes:
            raise KeyError(f"unknown sender {message.sender!r}")
        stamped = message.with_id(next(self._counter))
        self._mailboxes[message.receiver].deliver(stamped)
        self._log.append(stamped)
        for observer in self._observers:
            observer(stamped)
        return stamped

    def broadcast(
        self, sender: str, receivers: Iterable[str], performative: Performative,
        content: Any, conversation_id: str = "", round_number: Optional[int] = None,
    ) -> list[Message]:
        """Send the same content to many receivers (one message each)."""
        sent = []
        for receiver in receivers:
            message = Message(
                sender=sender,
                receiver=receiver,
                performative=performative,
                content=content,
                conversation_id=conversation_id,
                round_number=round_number,
            )
            sent.append(self.send(message))
        return sent

    def mailbox(self, name: str) -> Mailbox:
        """The mailbox of a registered agent."""
        try:
            return self._mailboxes[name]
        except KeyError:
            raise KeyError(f"agent {name!r} is not registered on the bus") from None

    # -- observation -------------------------------------------------------

    def add_observer(self, observer: Callable[[Message], None]) -> None:
        """Register a callback invoked for every sent message."""
        self._observers.append(observer)

    @property
    def log(self) -> list[Message]:
        """All messages sent so far, in send order (do not mutate)."""
        return list(self._log)

    def message_count(self) -> int:
        return len(self._log)

    def messages_by_performative(self) -> dict[Performative, int]:
        """Histogram of message counts per performative."""
        counts: dict[Performative, int] = defaultdict(int)
        for message in self._log:
            counts[message.performative] += 1
        return dict(counts)

    def conversation(self, conversation_id: str) -> list[Message]:
        """All messages belonging to one conversation, in send order."""
        return [m for m in self._log if m.conversation_id == conversation_id]

    def clear_log(self) -> None:
        """Drop the message log (mailbox contents are untouched)."""
        self._log.clear()
