"""Simulation time for the load-management domain.

The paper reasons about electricity demand over a day (Figure 1 shows a daily
demand curve with a peak) and about *time intervals* attached to reward tables
("the Customer Agent ... is prepared to make a cut-down x during interval I").
We therefore model time as discrete slots of a day (by default 24 hourly
slots, but any resolution is supported) plus a continuous simulation clock
used by the discrete-event scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: Number of minutes in a day; used to validate slot resolutions.
MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True, order=True)
class TimeSlot:
    """A discrete slot of a day.

    Parameters
    ----------
    index:
        Slot index within the day, ``0 <= index < slots_per_day``.
    slots_per_day:
        Resolution of the day.  24 means hourly slots, 96 means
        quarter-hourly slots.
    """

    index: int
    slots_per_day: int = 24

    def __post_init__(self) -> None:
        if self.slots_per_day <= 0:
            raise ValueError(f"slots_per_day must be positive, got {self.slots_per_day}")
        if MINUTES_PER_DAY % self.slots_per_day != 0:
            raise ValueError(
                f"slots_per_day must divide {MINUTES_PER_DAY} minutes, got {self.slots_per_day}"
            )
        if not 0 <= self.index < self.slots_per_day:
            raise ValueError(
                f"slot index {self.index} out of range for {self.slots_per_day} slots per day"
            )

    @property
    def minutes(self) -> int:
        """Length of the slot in minutes."""
        return MINUTES_PER_DAY // self.slots_per_day

    @property
    def hours(self) -> float:
        """Length of the slot in hours."""
        return self.minutes / 60.0

    @property
    def start_hour(self) -> float:
        """Hour of day (0-24) at which this slot starts."""
        return self.index * self.hours

    @property
    def end_hour(self) -> float:
        """Hour of day (0-24) at which this slot ends."""
        return (self.index + 1) * self.hours

    def next(self) -> "TimeSlot":
        """The following slot, wrapping around midnight."""
        return TimeSlot((self.index + 1) % self.slots_per_day, self.slots_per_day)

    def previous(self) -> "TimeSlot":
        """The preceding slot, wrapping around midnight."""
        return TimeSlot((self.index - 1) % self.slots_per_day, self.slots_per_day)

    def label(self) -> str:
        """Human-readable ``HH:MM-HH:MM`` label."""
        start = int(self.start_hour * 60)
        end = int(self.end_hour * 60)
        return f"{start // 60:02d}:{start % 60:02d}-{(end // 60) % 24:02d}:{end % 60:02d}"

    @classmethod
    def from_hour(cls, hour: float, slots_per_day: int = 24) -> "TimeSlot":
        """Slot containing the given hour of day."""
        if not 0 <= hour < 24:
            raise ValueError(f"hour must be in [0, 24), got {hour}")
        index = int(hour * slots_per_day / 24)
        return cls(index, slots_per_day)


@dataclass(frozen=True)
class TimeInterval:
    """A contiguous interval of slots within a day.

    Reward tables announced by the Utility Agent always refer to a specific
    time interval (the expected peak period).
    """

    start: TimeSlot
    end: TimeSlot

    def __post_init__(self) -> None:
        if self.start.slots_per_day != self.end.slots_per_day:
            raise ValueError("interval endpoints must use the same slot resolution")
        if self.end.index < self.start.index:
            raise ValueError(
                f"interval end ({self.end.index}) precedes start ({self.start.index})"
            )

    @property
    def slots_per_day(self) -> int:
        return self.start.slots_per_day

    @property
    def num_slots(self) -> int:
        """Number of slots covered, inclusive of both endpoints."""
        return self.end.index - self.start.index + 1

    @property
    def duration_hours(self) -> float:
        return self.num_slots * self.start.hours

    def slots(self) -> Iterator[TimeSlot]:
        """Iterate over the slots covered by the interval."""
        for index in range(self.start.index, self.end.index + 1):
            yield TimeSlot(index, self.slots_per_day)

    def contains(self, slot: TimeSlot) -> bool:
        """Whether ``slot`` falls inside the interval."""
        if slot.slots_per_day != self.slots_per_day:
            return False
        return self.start.index <= slot.index <= self.end.index

    def label(self) -> str:
        """Human-readable ``HH:MM-HH:MM`` label spanning the interval."""
        start = int(self.start.start_hour * 60)
        end = int(self.end.end_hour * 60)
        return f"{start // 60:02d}:{start % 60:02d}-{(end // 60) % 24:02d}:{end % 60:02d}"

    @classmethod
    def from_hours(
        cls, start_hour: float, end_hour: float, slots_per_day: int = 24
    ) -> "TimeInterval":
        """Interval covering ``[start_hour, end_hour)`` of the day."""
        if end_hour <= start_hour:
            raise ValueError("end_hour must be after start_hour")
        start = TimeSlot.from_hour(start_hour, slots_per_day)
        # The end slot is the slot containing the last instant before end_hour.
        last = min(end_hour - 1e-9, 24 - 1e-9)
        end = TimeSlot.from_hour(last, slots_per_day)
        return cls(start, end)


class SimulationClock:
    """Monotone simulation clock used by the discrete-event scheduler.

    Time is a float in abstract "ticks"; for negotiation experiments one tick
    corresponds to one negotiation round, for day-long grid simulations one
    tick corresponds to one time slot.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises
        ------
        ValueError
            If ``when`` lies in the past; simulation time is monotone.
        """
        if when < self._now:
            raise ValueError(f"cannot move clock backwards from {self._now} to {when}")
        self._now = float(when)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` ticks."""
        if delta < 0:
            raise ValueError(f"cannot advance by a negative delta ({delta})")
        self._now += float(delta)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock (used between independent experiment repetitions)."""
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(now={self._now})"
