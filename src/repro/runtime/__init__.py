"""Discrete-event multi-agent runtime.

This package is the execution substrate on which the DESIRE-style agents run.
The original prototype was executed inside the DESIRE software environment,
which provided component scheduling and message transport; here we provide an
equivalent, small, deterministic runtime:

* :mod:`repro.runtime.clock` — simulation time (slots of a day, rounds of a
  negotiation).
* :mod:`repro.runtime.events` — event objects and the event queue.
* :mod:`repro.runtime.scheduler` — a deterministic discrete-event scheduler.
* :mod:`repro.runtime.messaging` — typed messages, mailboxes and a message
  bus connecting agents.
* :mod:`repro.runtime.simulation` — the top-level simulation driver that
  advances the clock, delivers messages and steps agents.
* :mod:`repro.runtime.rng` — seeded random-number helpers so every experiment
  is reproducible.
"""

from repro.runtime.clock import SimulationClock, TimeInterval, TimeSlot
from repro.runtime.events import Event, EventQueue, EventType
from repro.runtime.messaging import (
    Mailbox,
    Message,
    MessageBus,
    MessageLogView,
    Performative,
)
from repro.runtime.rng import RandomSource
from repro.runtime.scheduler import ScheduledTask, Scheduler
from repro.runtime.simulation import Simulation, SimulationError, SimulationReport

__all__ = [
    "Event",
    "EventQueue",
    "EventType",
    "Mailbox",
    "Message",
    "MessageBus",
    "MessageLogView",
    "Performative",
    "RandomSource",
    "ScheduledTask",
    "Scheduler",
    "Simulation",
    "SimulationClock",
    "SimulationError",
    "SimulationReport",
    "TimeInterval",
    "TimeSlot",
]
