"""Events and the event queue for the discrete-event scheduler.

Events are ordered by ``(time, priority, sequence)``: earlier events first,
then higher-priority events (lower numeric value), and finally insertion
order, which makes scheduling fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional


class EventType(Enum):
    """Classification of events flowing through the simulation."""

    #: A message is delivered to an agent's mailbox.
    MESSAGE_DELIVERY = "message_delivery"
    #: An agent is given a turn to run its internal processes.
    AGENT_STEP = "agent_step"
    #: The external world updates (weather, consumption measurements).
    WORLD_UPDATE = "world_update"
    #: A negotiation round boundary.
    ROUND_BOUNDARY = "round_boundary"
    #: A user-supplied callback.
    CALLBACK = "callback"


@dataclass(order=False)
class Event:
    """A single scheduled event.

    Attributes
    ----------
    time:
        Simulation time at which the event fires.
    event_type:
        Classification used by the simulation driver.
    target:
        Identifier of the agent or component the event concerns (may be
        ``None`` for global events).
    payload:
        Arbitrary event payload (a message, a slot index, ...).
    priority:
        Lower values fire first among events with equal time.
    action:
        Optional callable executed when the event is dispatched.
    """

    time: float
    event_type: EventType
    target: Optional[str] = None
    payload: Any = None
    priority: int = 0
    action: Optional[Callable[["Event"], None]] = None
    sequence: int = field(default=-1, compare=False)

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.sequence)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], Event]] = []
        self._counter = itertools.count()
        self._cancelled: set[int] = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0

    def push(self, event: Event) -> Event:
        """Add an event; assigns its sequence number and returns it."""
        if event.time < 0:
            raise ValueError(f"event time must be non-negative, got {event.time}")
        event.sequence = next(self._counter)
        heapq.heappush(self._heap, (event.sort_key(), event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest pending event.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        while self._heap:
            __, event = heapq.heappop(self._heap)
            if event.sequence in self._cancelled:
                self._cancelled.discard(event.sequence)
                continue
            return event
        raise IndexError("pop from an empty event queue")

    def peek(self) -> Event:
        """Return (without removing) the earliest pending event."""
        while self._heap:
            __, event = self._heap[0]
            if event.sequence in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(event.sequence)
                continue
            return event
        raise IndexError("peek at an empty event queue")

    def cancel(self, event: Event) -> bool:
        """Cancel a previously pushed event.

        Returns ``True`` if the event was pending, ``False`` if it had already
        been dispatched or cancelled.
        """
        if event.sequence < 0:
            return False
        pending = any(
            e.sequence == event.sequence for __, e in self._heap
        ) and event.sequence not in self._cancelled
        if pending:
            self._cancelled.add(event.sequence)
        return pending

    def next_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` when empty."""
        try:
            return self.peek().time
        except IndexError:
            return None

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._cancelled.clear()

    def drain(self) -> list[Event]:
        """Pop every pending event in order (useful in tests)."""
        events = []
        while self:
            events.append(self.pop())
        return events
