"""Seeded random-number helpers.

Every stochastic element of the reproduction (household composition, appliance
usage, customer preference tables, weather) draws from a :class:`RandomSource`
so that experiments are exactly reproducible from a single integer seed.  A
``RandomSource`` can spawn independent child sources for sub-systems, which
keeps the random streams of, say, the weather model and the customer
population decoupled: adding households does not perturb the weather.
"""

from __future__ import annotations

from typing import Optional, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


class RandomSource:
    """A named, seedable random stream built on :class:`numpy.random.Generator`."""

    def __init__(self, seed: Optional[int] = None, name: str = "root") -> None:
        self._seed = seed
        self._name = name
        self._seed_seq = np.random.SeedSequence(seed)
        self._generator = np.random.default_rng(self._seed_seq)
        self._child_count = 0

    @property
    def name(self) -> str:
        return self._name

    @property
    def seed(self) -> Optional[int]:
        return self._seed

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (for vectorised draws)."""
        return self._generator

    def spawn(self, name: str) -> "RandomSource":
        """Create an independent child stream.

        Children are derived from the parent's seed sequence, so the full tree
        of streams is determined by the root seed alone.
        """
        child_seq = self._seed_seq.spawn(1)[0]
        child = RandomSource.__new__(RandomSource)
        child._seed = self._seed
        child._name = f"{self._name}/{name}"
        child._seed_seq = child_seq
        child._generator = np.random.default_rng(child_seq)
        child._child_count = 0
        self._child_count += 1
        return child

    # -- checkpointable state ---------------------------------------------

    def state(self) -> dict:
        """Snapshot of the underlying bit generator's state.

        Together with :meth:`set_state` this makes a stream checkpointable:
        a campaign can persist the exact position of its weather/demand
        streams after day *k* and resume at day *k*+1 with the draws it
        would have made in an uninterrupted run.  Spawned children are not
        covered — snapshot each child you need to resume.
        """
        return self._generator.bit_generator.state

    def set_state(self, state: dict) -> None:
        """Restore a snapshot previously taken with :meth:`state`."""
        self._generator.bit_generator.state = state

    # -- scalar draws -----------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """A single uniform draw in ``[low, high)``."""
        return float(self._generator.uniform(low, high))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        """A single normal draw."""
        if std < 0:
            raise ValueError(f"standard deviation must be non-negative, got {std}")
        return float(self._generator.normal(mean, std))

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        """A single log-normal draw."""
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        return float(self._generator.lognormal(mean, sigma))

    def integer(self, low: int, high: int) -> int:
        """A single integer draw in ``[low, high]`` (inclusive)."""
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")
        return int(self._generator.integers(low, high + 1))

    def boolean(self, probability: float = 0.5) -> bool:
        """A single Bernoulli draw."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return bool(self._generator.random() < probability)

    def choice(self, options: Sequence[T], weights: Optional[Sequence[float]] = None) -> T:
        """Pick one element, optionally weighted."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        if weights is None:
            index = int(self._generator.integers(0, len(options)))
            return options[index]
        weight_array = np.asarray(weights, dtype=float)
        if len(weight_array) != len(options):
            raise ValueError("weights must have the same length as options")
        if np.any(weight_array < 0):
            raise ValueError("weights must be non-negative")
        total = float(weight_array.sum())
        if total <= 0:
            raise ValueError("weights must not all be zero")
        index = int(self._generator.choice(len(options), p=weight_array / total))
        return options[index]

    def shuffled(self, items: Sequence[T]) -> list[T]:
        """Return a shuffled copy of ``items``."""
        copy = list(items)
        self._generator.shuffle(copy)  # type: ignore[arg-type]
        return copy

    # -- vector draws ------------------------------------------------------

    def uniform_array(self, low: float, high: float, size: int) -> np.ndarray:
        """A vector of uniform draws."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return self._generator.uniform(low, high, size)

    def normal_array(self, mean: float, std: float, size: int) -> np.ndarray:
        """A vector of normal draws."""
        if std < 0:
            raise ValueError(f"standard deviation must be non-negative, got {std}")
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return self._generator.normal(mean, std, size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(name={self._name!r}, seed={self._seed!r})"
