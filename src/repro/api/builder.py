"""Fluent scenario construction.

Scripts kept re-assembling :class:`~repro.agents.population.CustomerPopulation`
and method objects by hand; :class:`ScenarioBuilder` wraps the two scenario
families behind one chainable interface::

    from repro.api import run, scenario

    town = scenario().households(10_000).method("reward_tables").beta(2.0).build()
    result = run(town)                       # backend="auto"

    proto = scenario().paper_prototype().beta(1.5).build()

A builder round-trips exactly: ``scenario().households(50).build()`` produces
the same scenario as ``synthetic_scenario(num_households=50)``, so the fluent
path never changes results — only ergonomics.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.results import NegotiationResult
from repro.core.scenario import (
    PAPER_MAX_ALLOWED_OVERUSE,
    PAPER_MAX_REWARD,
    Scenario,
    paper_prototype_scenario,
    synthetic_scenario,
)
from repro.negotiation.methods.base import NegotiationMethod
from repro.negotiation.methods.offer import OfferMethod
from repro.negotiation.methods.request_for_bids import RequestForBidsMethod

#: Method names the builder resolves; ``"reward_tables"`` maps to each
#: scenario family's calibrated default construction.
_METHOD_NAMES = ("reward_tables", "offer", "request_for_bids")


class ScenarioBuilder:
    """Chainable builder over the two scenario families.

    Starts as a synthetic-town builder; :meth:`paper_prototype` switches to
    the calibrated Figures 6-9 scenario.  Every setter returns ``self``.
    """

    def __init__(self) -> None:
        self._paper = False
        self._num_households = 50
        self._seed = 0
        self._cold_snap = True
        self._planning = "columnar"
        self._method: Union[str, NegotiationMethod] = "reward_tables"
        self._beta: Optional[float] = None
        self._max_reward: Optional[float] = None
        self._max_allowed_overuse: Optional[float] = None
        #: Synthetic-only setters that were called, for paper-mode conflict checks.
        self._synthetic_only_calls: list[str] = []

    # -- family selection ---------------------------------------------------------

    def paper_prototype(self) -> "ScenarioBuilder":
        """Build the calibrated prototype scenario (Figures 6-9, 20 customers)."""
        self._paper = True
        return self

    # -- population --------------------------------------------------------------

    def households(self, count: int) -> "ScenarioBuilder":
        """Number of synthetic households (not applicable to the paper scenario)."""
        if count <= 0:
            raise ValueError("household count must be positive")
        self._num_households = int(count)
        self._synthetic_only_calls.append('households')
        return self

    def seed(self, seed: int) -> "ScenarioBuilder":
        """Seed for the synthetic population generator."""
        self._seed = int(seed)
        self._synthetic_only_calls.append('seed')
        return self

    def cold_snap(self, enabled: bool = True) -> "ScenarioBuilder":
        """Severe-cold day (the default) or a mild reference day."""
        self._cold_snap = bool(enabled)
        self._synthetic_only_calls.append('cold_snap')
        return self

    def mild_day(self) -> "ScenarioBuilder":
        """Shorthand for ``cold_snap(False)``."""
        return self.cold_snap(False)

    def planning(self, mode: str) -> "ScenarioBuilder":
        """How the synthetic population's planning quantities are computed.

        ``"columnar"`` (default) runs the batched
        :class:`~repro.grid.fleet.HouseholdFleet` kernels; ``"scalar"`` the
        per-household loop.  Bit-identical by contract — the scalar path
        exists as the equivalence oracle.
        """
        from repro.core.modes import validate_planning_mode

        self._planning = validate_planning_mode(mode)
        self._synthetic_only_calls.append('planning')
        return self

    # -- method ------------------------------------------------------------------

    def method(self, method: Union[str, NegotiationMethod]) -> "ScenarioBuilder":
        """Announcement method: a name or a ready :class:`NegotiationMethod`.

        Names: ``"reward_tables"`` (default, calibrated per scenario family),
        ``"offer"``, ``"request_for_bids"``.
        """
        if isinstance(method, str):
            if method not in _METHOD_NAMES:
                raise ValueError(
                    f"unknown method {method!r}; expected one of "
                    f"{', '.join(_METHOD_NAMES)} or a NegotiationMethod instance"
                )
        elif not isinstance(method, NegotiationMethod):
            raise TypeError(
                "method must be a method name or a NegotiationMethod instance"
            )
        self._method = method
        return self

    def beta(self, beta: float) -> "ScenarioBuilder":
        """Concession-speed β of the reward-tables method."""
        if beta <= 0:
            raise ValueError("beta must be positive")
        self._beta = float(beta)
        return self

    def max_reward(self, max_reward: float) -> "ScenarioBuilder":
        """Reward ceiling of the reward-tables method."""
        if max_reward <= 0:
            raise ValueError("max_reward must be positive")
        self._max_reward = float(max_reward)
        return self

    def max_allowed_overuse(self, overuse: float) -> "ScenarioBuilder":
        """Overuse the utility tolerates without negotiating (paper scenario)."""
        if overuse < 0:
            raise ValueError("max allowed overuse must be non-negative")
        self._max_allowed_overuse = float(overuse)
        return self

    # -- terminal operations -------------------------------------------------------

    def build(self) -> Scenario:
        """Materialise the :class:`Scenario`."""
        self._check_consistency()
        if self._paper:
            return self._build_paper()
        return self._build_synthetic()

    def run(self, backend: str = "auto", **overrides: object) -> NegotiationResult:
        """Build and immediately run through :func:`repro.api.run`."""
        from repro.api.engine import run as engine_run

        return engine_run(self.build(), backend=backend, **overrides)

    # -- internals -----------------------------------------------------------------

    def _check_consistency(self) -> None:
        if self._paper and self._synthetic_only_calls:
            calls = ", ".join(f"{name}()" for name in self._synthetic_only_calls)
            raise ValueError(
                f"{calls} configure the synthetic population; the calibrated "
                f"paper scenario has a fixed population of 20 customers"
            )
        tuning_reward_tables = self._beta is not None or self._max_reward is not None
        if tuning_reward_tables:
            if isinstance(self._method, NegotiationMethod):
                raise ValueError(
                    "beta()/max_reward() tune the built-in reward-tables method; "
                    "configure an explicit NegotiationMethod instance directly instead"
                )
            if self._method != "reward_tables":
                raise ValueError(
                    f"beta()/max_reward() only apply to the reward-tables method, "
                    f"not {self._method!r}"
                )
        if self._paper and self._method != "reward_tables":
            # Covers the "offer"/"request_for_bids" names AND explicit
            # NegotiationMethod instances: paper_prototype_scenario() builds
            # its own calibrated reward-tables method, so any other choice
            # would be silently dropped rather than honoured.
            raise ValueError(
                "the calibrated paper scenario uses its own calibrated "
                "reward-tables method (tune it with beta()/max_reward()); "
                "build other methods onto a synthetic population with "
                "households() instead"
            )
        if self._max_allowed_overuse is not None and not self._paper:
            raise ValueError(
                "max_allowed_overuse() is a paper-scenario parameter; synthetic "
                "populations derive it from the generated capacity"
            )

    def _build_paper(self) -> Scenario:
        return paper_prototype_scenario(
            beta=self._beta,
            max_reward=(
                self._max_reward if self._max_reward is not None else PAPER_MAX_REWARD
            ),
            max_allowed_overuse=(
                self._max_allowed_overuse
                if self._max_allowed_overuse is not None
                else PAPER_MAX_ALLOWED_OVERUSE
            ),
        )

    def _build_synthetic(self) -> Scenario:
        method: Optional[NegotiationMethod]
        if isinstance(self._method, NegotiationMethod):
            method = self._method
        elif self._method == "offer":
            method = OfferMethod()
        elif self._method == "request_for_bids":
            method = RequestForBidsMethod()
        else:
            # "reward_tables": let synthetic_scenario build its calibrated
            # default so the builder round-trips exactly.
            method = None
        kwargs: dict[str, object] = {}
        if self._beta is not None:
            kwargs["beta"] = self._beta
        if self._max_reward is not None:
            kwargs["max_reward"] = self._max_reward
        return synthetic_scenario(
            num_households=self._num_households,
            seed=self._seed,
            method=method,
            cold_snap=self._cold_snap,
            planning=self._planning,
            **kwargs,
        )


def scenario() -> ScenarioBuilder:
    """Start a fluent :class:`ScenarioBuilder` chain."""
    return ScenarioBuilder()
