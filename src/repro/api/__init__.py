"""repro.api — the one entry point for running negotiations.

Every in-repo negotiation run (experiments, CLI, the load-balancing system,
planning campaigns, examples and benchmarks) goes through this façade::

    from repro.api import run, scenario

    result = run(scenario().households(200).build())          # backend="auto"
    result = run(my_scenario, backend="object", seed=3)       # explicit backend

The pieces:

* :func:`run` — dispatches a scenario to a registered backend;
  ``backend="auto"`` picks the vectorized fast path when the scenario
  qualifies and falls back to the faithful object path otherwise, recording
  the choice in ``result.metadata["backend"]``.
* :func:`campaign` — runs a multi-day planning campaign
  (:class:`~repro.core.planning.MultiDayCampaign`) through the same backend
  registry and :class:`EngineConfig`, with columnar day-ahead planning by
  default and per-day backend choices recorded in the result.
* :class:`EngineConfig` — consolidates the former kwarg sprawl (``seed``,
  ``max_simulation_rounds``, ``check_protocol``, …) plus the campaign
  ``planning`` path.
* :class:`NegotiationEngine` / :func:`register_backend` — the backend
  registry; ``"object"``, ``"vectorized"`` and ``"sharded"`` are built in,
  ``"async"`` is a declared slot for the ROADMAP's asyncio runtime.
* :func:`scenario` / :class:`ScenarioBuilder` — fluent scenario construction.

The façade also has a network form: ``python -m repro serve``
(:mod:`repro.serve`) exposes :func:`run` as a long-lived HTTP service with
request-coalescing micro-batching — concurrent compatible requests share one
combined vectorized kernel arena, each request's result bit-identical to a
solo :func:`run` call.  See the README's *Serving* section.
"""

from repro.api.builder import ScenarioBuilder, scenario
from repro.api.campaign import campaign
from repro.api.config import EngineConfig
from repro.core.checkpoint import CampaignCheckpoint
from repro.runtime.faults import FaultPlan
from repro.api.engine import (
    AUTO_PRIORITY,
    BackendError,
    BackendUnavailableError,
    BackendUnsupportedError,
    DuplicateBackendError,
    NegotiationEngine,
    UnknownBackendError,
    available_backends,
    get_backend,
    register_backend,
    run,
    select_backend,
    unregister_backend,
)

__all__ = [
    "AUTO_PRIORITY",
    "BackendError",
    "BackendUnavailableError",
    "BackendUnsupportedError",
    "CampaignCheckpoint",
    "DuplicateBackendError",
    "EngineConfig",
    "FaultPlan",
    "NegotiationEngine",
    "ScenarioBuilder",
    "UnknownBackendError",
    "available_backends",
    "campaign",
    "get_backend",
    "register_backend",
    "run",
    "scenario",
    "select_backend",
    "unregister_backend",
]
