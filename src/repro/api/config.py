"""Engine configuration: one dataclass instead of kwarg sprawl.

Before the façade existed, every call site re-plumbed the same keyword
arguments into :class:`~repro.core.session.NegotiationSession` /
:class:`~repro.core.fast_session.FastSession` by hand.  :class:`EngineConfig`
consolidates them; backends translate it into whatever their session type
accepts.

Migration table (old session kwarg → config field):

==========================  ============================
``seed``                    :attr:`EngineConfig.seed`
``max_simulation_rounds``   :attr:`EngineConfig.max_simulation_rounds`
``check_protocol``          :attr:`EngineConfig.check_protocol`
``retain_message_log``      :attr:`EngineConfig.retain_message_log`
``include_producer``        :attr:`EngineConfig.include_producer`
``include_external_world``  :attr:`EngineConfig.include_external_world`
``with_resource_consumers`` :attr:`EngineConfig.with_resource_consumers`
==========================  ============================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.agents.sharded import default_shard_count
from repro.core.modes import (
    validate_history_window,
    validate_materialise_mode,
    validate_planning_mode,
    validate_rounds_mode,
    validate_shard_count,
    validate_shard_threshold,
)
from repro.runtime.faults import FaultPlan

#: Population size from which ``backend="auto"`` starts considering the
#: sharded runtime.  Below it the per-round fan-out overhead outweighs the
#: parallel kernel time and the vectorized single-core path wins; at 5000
#: households a round's kernel time is an order of magnitude above the
#: pool's dispatch cost, so multiple workers have something real to split.
DEFAULT_SHARD_THRESHOLD = 5000


@dataclass(frozen=True)
class EngineConfig:
    """Everything a negotiation engine needs besides the scenario itself.

    Attributes
    ----------
    seed:
        Runtime seed.  Negotiations are deterministic given the scenario, so
        this only matters for components that draw randomness (kept for
        reproducibility bookkeeping and signature compatibility).
    max_simulation_rounds:
        Hard cap on simulation rounds (defensive bound, not a protocol
        parameter).
    check_protocol:
        Whether the monotonic-concession protocol checker runs in strict mode.
    retain_message_log:
        Whether the object path's message bus retains full message logs.
        The batched backends never materialise messages; for them this
        controls the analogous per-round *bid* retention on the negotiation
        record — set it ``False`` for huge campaign runs that only read the
        accounting rows (at 100k households the retained bids dominate
        campaign memory).
    include_producer:
        Add the Producer Agent to the society (object path only).
    include_external_world:
        Add the External World agent (object path only).
    with_resource_consumers:
        Attach Resource Consumer Agents to each household (object path only).
    shards:
        Shard/worker count for the sharded runtime.  ``None`` (default) means
        one shard per CPU core; the effective count is clamped to the
        population size.  Setting it to ``1`` effectively disables sharding.
    shard_threshold:
        Minimum population size at which ``backend="auto"`` considers the
        sharded runtime (explicitly requesting ``backend="sharded"`` ignores
        it).
    planning:
        Planning path used by campaign runs (:func:`repro.api.campaign` /
        :class:`~repro.core.planning.MultiDayCampaign`): ``"columnar"``
        (default) runs the day-ahead planner on the batched
        :class:`~repro.grid.fleet.HouseholdFleet` kernels, ``"scalar"`` on
        the per-household object loop.  Both build bit-identical scenarios;
        the scalar path is the seed-equivalence oracle.  Ignored by single
        negotiations, whose scenario is already built.
    materialise:
        How campaign runs hand each planned day over to the negotiation:
        ``"eager"`` (default, the equivalence oracle) builds the
        per-household ``CustomerSpec`` objects and dict reward tables;
        ``"lazy"`` feeds the negotiation kernels straight from the columnar
        planning arrays and materialises nothing per household.  Both
        produce bit-identical campaign rows; lazy applies on the columnar
        planning path (the scalar oracle always materialises).  Ignored by
        single negotiations.
    rounds:
        Round-evaluation mode of the negotiation fast path: ``"object"``
        (default, the equivalence oracle) builds per-round ``Bid`` objects
        and dict round tables; ``"array"`` evaluates each round directly on
        the numpy state arrays the kernels already compute — zero per-round
        object construction, which is what makes 1M-household negotiations
        tractable.  Both produce bit-identical results; scenarios the array
        path cannot take (non-stock method or acceptance/bidding policy)
        fall back to object rounds, and the effective mode is recorded in
        ``NegotiationResult.metadata["rounds_mode"]``.  Array rounds never
        retain per-round bids on the record (there are no bid objects to
        retain).  Ignored by the object backend.
    history_window:
        Observation window (days) of the campaign planner's consumption
        predictor.  ``None`` (default) leaves the planner's own predictor
        configuration untouched (an unbounded default predictor keeps the
        full history — O(days · N · slots) memory); a positive window
        re-bounds the planner's predictor *in place* to a fixed ring —
        O(window · N · slots) no matter how long the campaign runs,
        dropping the oldest retained days when shrinking (the re-bound
        persists on the planner after the campaign).  Ignored by single
        negotiations.
    fault_plan:
        Deterministic fault-injection plan
        (:class:`~repro.runtime.faults.FaultPlan`).  ``None`` (default)
        disables injection entirely; a plan with every rate at zero takes
        the identical code paths as ``None`` and is bit-identical to it.
        With non-zero rates the runtime degrades instead of aborting —
        see the injected-fault report under
        ``NegotiationResult.metadata["faults"]``.
    """

    seed: Optional[int] = 0
    max_simulation_rounds: int = 200
    check_protocol: bool = True
    retain_message_log: bool = True
    include_producer: bool = False
    include_external_world: bool = False
    with_resource_consumers: bool = False
    shards: Optional[int] = None
    shard_threshold: int = DEFAULT_SHARD_THRESHOLD
    planning: str = "columnar"
    materialise: str = "eager"
    rounds: str = "object"
    history_window: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.max_simulation_rounds <= 0:
            raise ValueError("max_simulation_rounds must be positive")
        # One canonical validator per knob (shared with the planner, the
        # population constructors and the sharded session): a typo'd value
        # fails here, at construction, instead of silently selecting a
        # fallback path or surfacing as a confusing pool-level error.
        validate_shard_count(self.shards)
        validate_shard_threshold(self.shard_threshold)
        validate_planning_mode(self.planning)
        validate_materialise_mode(self.materialise)
        validate_rounds_mode(self.rounds)
        validate_history_window(self.history_window)
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ValueError(
                f"fault_plan must be a FaultPlan or None, got "
                f"{type(self.fault_plan).__name__}"
            )

    # -- derived views -----------------------------------------------------------

    @property
    def needs_full_agent_society(self) -> bool:
        """Whether the configuration requires the object path's extra agents."""
        return (
            self.include_producer
            or self.include_external_world
            or self.with_resource_consumers
        )

    def replace(self, **overrides: object) -> "EngineConfig":
        """A copy with the given fields replaced (unknown fields raise)."""
        return dataclasses.replace(self, **overrides)

    # -- session construction ------------------------------------------------------

    def session_kwargs(self) -> dict[str, object]:
        """Keyword arguments for :class:`~repro.core.session.NegotiationSession`."""
        return {
            "seed": self.seed,
            "include_producer": self.include_producer,
            "include_external_world": self.include_external_world,
            "with_resource_consumers": self.with_resource_consumers,
            "max_simulation_rounds": self.max_simulation_rounds,
            "check_protocol": self.check_protocol,
            "retain_message_log": self.retain_message_log,
            "fault_plan": self.fault_plan,
        }

    def fast_session_kwargs(self) -> dict[str, object]:
        """Keyword arguments for :class:`~repro.core.fast_session.FastSession`."""
        return {
            "seed": self.seed,
            "max_simulation_rounds": self.max_simulation_rounds,
            "check_protocol": self.check_protocol,
            "retain_round_bids": self.retain_message_log,
            "rounds": self.rounds,
            "fault_plan": self.fault_plan,
        }

    def sharded_session_kwargs(self) -> dict[str, object]:
        """Keyword arguments for :class:`~repro.core.sharded_session.ShardedSession`."""
        return {**self.fast_session_kwargs(), "shards": self.shards}

    def resolved_shards(self) -> int:
        """The worker count the sharded runtime would use (before clamping)."""
        return self.shards if self.shards is not None else default_shard_count()
