"""Engine configuration: one dataclass instead of kwarg sprawl.

Before the façade existed, every call site re-plumbed the same keyword
arguments into :class:`~repro.core.session.NegotiationSession` /
:class:`~repro.core.fast_session.FastSession` by hand.  :class:`EngineConfig`
consolidates them; backends translate it into whatever their session type
accepts.

Migration table (old session kwarg → config field):

==========================  ============================
``seed``                    :attr:`EngineConfig.seed`
``max_simulation_rounds``   :attr:`EngineConfig.max_simulation_rounds`
``check_protocol``          :attr:`EngineConfig.check_protocol`
``retain_message_log``      :attr:`EngineConfig.retain_message_log`
``include_producer``        :attr:`EngineConfig.include_producer`
``include_external_world``  :attr:`EngineConfig.include_external_world`
``with_resource_consumers`` :attr:`EngineConfig.with_resource_consumers`
==========================  ============================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.agents.sharded import default_shard_count

#: Population size from which ``backend="auto"`` starts considering the
#: sharded runtime.  Below it the per-round fan-out overhead outweighs the
#: parallel kernel time and the vectorized single-core path wins; at 5000
#: households a round's kernel time is an order of magnitude above the
#: pool's dispatch cost, so multiple workers have something real to split.
DEFAULT_SHARD_THRESHOLD = 5000


@dataclass(frozen=True)
class EngineConfig:
    """Everything a negotiation engine needs besides the scenario itself.

    Attributes
    ----------
    seed:
        Runtime seed.  Negotiations are deterministic given the scenario, so
        this only matters for components that draw randomness (kept for
        reproducibility bookkeeping and signature compatibility).
    max_simulation_rounds:
        Hard cap on simulation rounds (defensive bound, not a protocol
        parameter).
    check_protocol:
        Whether the monotonic-concession protocol checker runs in strict mode.
    retain_message_log:
        Whether the object path's message bus retains full message logs
        (ignored by vectorized backends, which never materialise messages).
    include_producer:
        Add the Producer Agent to the society (object path only).
    include_external_world:
        Add the External World agent (object path only).
    with_resource_consumers:
        Attach Resource Consumer Agents to each household (object path only).
    shards:
        Shard/worker count for the sharded runtime.  ``None`` (default) means
        one shard per CPU core; the effective count is clamped to the
        population size.  Setting it to ``1`` effectively disables sharding.
    shard_threshold:
        Minimum population size at which ``backend="auto"`` considers the
        sharded runtime (explicitly requesting ``backend="sharded"`` ignores
        it).
    planning:
        Planning path used by campaign runs (:func:`repro.api.campaign` /
        :class:`~repro.core.planning.MultiDayCampaign`): ``"columnar"``
        (default) runs the day-ahead planner on the batched
        :class:`~repro.grid.fleet.HouseholdFleet` kernels, ``"scalar"`` on
        the per-household object loop.  Both build bit-identical scenarios;
        the scalar path is the seed-equivalence oracle.  Ignored by single
        negotiations, whose scenario is already built.
    """

    seed: Optional[int] = 0
    max_simulation_rounds: int = 200
    check_protocol: bool = True
    retain_message_log: bool = True
    include_producer: bool = False
    include_external_world: bool = False
    with_resource_consumers: bool = False
    shards: Optional[int] = None
    shard_threshold: int = DEFAULT_SHARD_THRESHOLD
    planning: str = "columnar"

    def __post_init__(self) -> None:
        if self.max_simulation_rounds <= 0:
            raise ValueError("max_simulation_rounds must be positive")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be at least 1 when given")
        if self.shard_threshold < 1:
            raise ValueError("shard_threshold must be positive")
        if self.planning not in ("columnar", "scalar"):
            raise ValueError(
                f"planning must be 'columnar' or 'scalar', got {self.planning!r}"
            )

    # -- derived views -----------------------------------------------------------

    @property
    def needs_full_agent_society(self) -> bool:
        """Whether the configuration requires the object path's extra agents."""
        return (
            self.include_producer
            or self.include_external_world
            or self.with_resource_consumers
        )

    def replace(self, **overrides: object) -> "EngineConfig":
        """A copy with the given fields replaced (unknown fields raise)."""
        return dataclasses.replace(self, **overrides)

    # -- session construction ------------------------------------------------------

    def session_kwargs(self) -> dict[str, object]:
        """Keyword arguments for :class:`~repro.core.session.NegotiationSession`."""
        return {
            "seed": self.seed,
            "include_producer": self.include_producer,
            "include_external_world": self.include_external_world,
            "with_resource_consumers": self.with_resource_consumers,
            "max_simulation_rounds": self.max_simulation_rounds,
            "check_protocol": self.check_protocol,
            "retain_message_log": self.retain_message_log,
        }

    def fast_session_kwargs(self) -> dict[str, object]:
        """Keyword arguments for :class:`~repro.core.fast_session.FastSession`."""
        return {
            "seed": self.seed,
            "max_simulation_rounds": self.max_simulation_rounds,
            "check_protocol": self.check_protocol,
        }

    def sharded_session_kwargs(self) -> dict[str, object]:
        """Keyword arguments for :class:`~repro.core.sharded_session.ShardedSession`."""
        return {**self.fast_session_kwargs(), "shards": self.shards}

    def resolved_shards(self) -> int:
        """The worker count the sharded runtime would use (before clamping)."""
        return self.shards if self.shards is not None else default_shard_count()
