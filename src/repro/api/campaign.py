"""Multi-day campaigns through the engine façade.

:func:`campaign` is to :class:`~repro.core.planning.MultiDayCampaign` what
:func:`repro.api.run` is to the session classes: one entry point that routes
every planned day's negotiation through the backend registry with a single
:class:`~repro.api.config.EngineConfig`, and records what actually ran::

    from repro.api import EngineConfig, campaign

    result = campaign(planner, num_days=14)               # backend="auto"
    result = campaign(planner, num_days=14, backend="object",
                      config=EngineConfig(planning="scalar"))   # oracle run

The default configuration plans each day on the columnar
:class:`~repro.grid.fleet.HouseholdFleet` kernels and negotiates on the
fastest qualifying backend; ``EngineConfig(planning="scalar")`` plus
``backend="object"`` reruns the identical campaign through the faithful
object path — the seed-equivalence oracle.  Per-day backend choices land in
``CampaignDay.backend`` (``CampaignResult.backends`` as a list), and the
planning/negotiation wall-clock split in ``CampaignResult.planning_seconds``
/ ``negotiation_seconds``.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from repro.api.config import EngineConfig
from repro.core.planning import CampaignResult, DayAheadPlanner, MultiDayCampaign
from repro.grid.production import ProductionModel
from repro.grid.weather import WeatherCondition, WeatherModel


def campaign(
    planner: DayAheadPlanner,
    num_days: int,
    *,
    conditions: Optional[Sequence[WeatherCondition]] = None,
    backend: str = "auto",
    config: Optional[EngineConfig] = None,
    warmup_days: int = 3,
    seed: int = 0,
    production: Optional[ProductionModel] = None,
    weather_model: Optional[WeatherModel] = None,
    checkpoint_path: Optional[str | os.PathLike] = None,
    resume_from: Optional[str | os.PathLike] = None,
    **overrides: object,
) -> CampaignResult:
    """Run a multi-day load-management campaign through the engine façade.

    Parameters
    ----------
    planner:
        The :class:`~repro.core.planning.DayAheadPlanner` owning the
        households, predictor and preference models.
    num_days:
        Campaign length (after ``warmup_days`` predictor warm-up days).
    conditions:
        Optional repeating weather-condition cycle; free-running weather
        otherwise.
    backend:
        Engine backend for each day's negotiation — a registered name or
        ``"auto"`` (default).
    config:
        Base :class:`EngineConfig`; its ``planning`` field selects the
        columnar or scalar planning path, its ``materialise`` field the
        eager (oracle) or lazy (zero-materialisation) planning → negotiation
        hand-off, and its ``history_window`` bounds the predictor's memory
        (when omitted, the planner's own modes govern); its ``seed`` is
        stepped per day.
    warmup_days / seed / production / weather_model:
        Passed through to :class:`~repro.core.planning.MultiDayCampaign`.
    checkpoint_path:
        Persist a resumable :class:`~repro.core.checkpoint.CampaignCheckpoint`
        after each completed day (atomic write; a crash mid-day keeps the
        previous day's snapshot).
    resume_from:
        Continue a checkpointed campaign at its next day; the final rows are
        bit-identical to the uninterrupted run.  Build the campaign with the
        same parameters (enforced via the checkpoint fingerprint) and pass
        the same ``conditions`` sequence.
    **overrides:
        Individual :class:`EngineConfig` fields overriding ``config``, e.g.
        ``campaign(planner, 14, planning="scalar")``.

    Returns
    -------
    CampaignResult
        With ``metadata`` recording the requested backend and the planning
        mode; per-day backend choices are on ``CampaignResult.backends``.
    """
    resolved = config
    if overrides:
        resolved = (config if config is not None else EngineConfig()).replace(**overrides)
    runner = MultiDayCampaign(
        planner,
        production=production,
        weather_model=weather_model,
        warmup_days=warmup_days,
        seed=seed,
        backend=backend,
        config=resolved,
    )
    result = runner.run(
        num_days,
        conditions=conditions,
        checkpoint_path=checkpoint_path,
        resume_from=resume_from,
    )
    result.metadata.update(
        {
            "backend": backend,
            # With no config given, the planner's own modes govern.
            "planning": resolved.planning if resolved is not None else planner.planning,
            "materialise": (
                resolved.materialise if resolved is not None else planner.materialise
            ),
            "rounds": resolved.rounds if resolved is not None else "object",
            "history_window": (
                resolved.history_window
                if resolved is not None and resolved.history_window is not None
                else getattr(planner.predictor, "history_window", None)
            ),
        }
    )
    return result
