"""Negotiation engines: one dispatching entry point, pluggable backends.

The paper separates *what* is negotiated (scenario, reward tables, methods)
from *how* the agent society executes it.  This module makes the "how"
pluggable: a :class:`NegotiationEngine` wraps one execution strategy —
the faithful object path (:class:`~repro.core.session.NegotiationSession`),
the vectorized fast path (:class:`~repro.core.fast_session.FastSession`) and
the parallel sharded runtime (:class:`~repro.core.sharded_session.
ShardedSession`); the async runtime the ROADMAP plans is a declared slot —
behind a common ``run(scenario, config)`` interface, and :func:`run`
dispatches to a backend by name.

``backend="auto"`` picks the fastest backend that *qualifies* for the
scenario (homogeneous requirement grids, a method with batched kernels, no
extra agents requested) and transparently falls back to the object path
otherwise.  Which backend actually ran is recorded in
``NegotiationResult.metadata["backend"]``; by the fast-path equivalence
contract the choice never changes the result, only the wall-clock.

Registering a new backend::

    @register_backend("sharded")
    class ShardedBackend(NegotiationEngine):
        name = "sharded"

        def run(self, scenario, config):
            ...
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Type

from repro.agents.vectorized import GRID_GROUP_AUTO_CAP, shares_requirement_grid
from repro.api.config import EngineConfig
from repro.core.fast_session import FastSession
from repro.core.results import NegotiationResult
from repro.core.scenario import Scenario
from repro.core.session import NegotiationSession
from repro.core.sharded_session import ShardedSession
from repro.negotiation.methods.offer import OfferMethod
from repro.negotiation.methods.request_for_bids import RequestForBidsMethod
from repro.negotiation.methods.reward_tables import RewardTablesMethod
from repro.negotiation.strategy import (
    ExpectedGainBidding,
    HighestAcceptableCutdownBidding,
)


class BackendError(Exception):
    """Base class for backend registry and dispatch errors."""


class DuplicateBackendError(BackendError):
    """A backend name was registered twice."""


class UnknownBackendError(BackendError, LookupError):
    """No backend is registered under the requested name."""


class BackendUnavailableError(BackendError, NotImplementedError):
    """The backend is a declared slot whose implementation has not landed yet."""


class BackendUnsupportedError(BackendError, ValueError):
    """The explicitly requested backend cannot run this scenario/config."""


class NegotiationEngine(abc.ABC):
    """One way of executing a negotiation scenario.

    Subclasses wrap a session type (or a future distributed runtime) and are
    registered by name via :func:`register_backend`.  Engines are stateless:
    one instance serves every :func:`run` call.
    """

    #: Registry name; set by subclasses and mirrored by ``register_backend``.
    name: str = "abstract"
    #: Declared-but-unimplemented slots set this to ``False``; they appear in
    #: :func:`available_backends` listings but refuse to run.
    available: bool = True

    @abc.abstractmethod
    def run(self, scenario: Scenario, config: EngineConfig) -> NegotiationResult:
        """Execute the negotiation and return its result."""

    def can_run(
        self, scenario: Scenario, config: EngineConfig
    ) -> tuple[bool, str]:
        """Hard capability check: can this engine run the scenario at all?

        Returns ``(ok, reason)``; the reason explains a refusal.  Explicitly
        selecting a backend that cannot run raises
        :class:`BackendUnsupportedError` with that reason.
        """
        return True, ""

    def qualifies(
        self, scenario: Scenario, config: EngineConfig
    ) -> tuple[bool, str]:
        """Whether ``backend="auto"`` should pick this engine.

        Stricter than :meth:`can_run`: an engine may be *able* to run a
        scenario (e.g. via a scalar fallback) without being the right
        automatic choice for it.
        """
        return self.can_run(scenario, config)


_BACKENDS: dict[str, NegotiationEngine] = {}

#: ``backend="auto"`` tries these names in order and picks the first
#: registered, available backend whose ``qualifies`` check passes.  The
#: object path is the universal fallback and must stay last.
AUTO_PRIORITY: tuple[str, ...] = ("sharded", "async", "vectorized", "object")


def register_backend(
    name: str,
) -> Callable[[Type[NegotiationEngine]], Type[NegotiationEngine]]:
    """Class decorator registering a :class:`NegotiationEngine` under ``name``."""

    def decorator(cls: Type[NegotiationEngine]) -> Type[NegotiationEngine]:
        if name in _BACKENDS:
            raise DuplicateBackendError(
                f"a negotiation backend named {name!r} is already registered "
                f"({type(_BACKENDS[name]).__name__}); unregister it first"
            )
        cls.name = name
        _BACKENDS[name] = cls()
        return cls

    return decorator


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (for tests and plugin teardown)."""
    _BACKENDS.pop(name, None)


def get_backend(name: str) -> NegotiationEngine:
    """Look up a registered backend by name."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown negotiation backend {name!r}; registered backends: "
            f"{', '.join(sorted(_BACKENDS))}"
        ) from None


def available_backends() -> dict[str, bool]:
    """Registered backend names mapped to their availability."""
    return {name: engine.available for name, engine in sorted(_BACKENDS.items())}


# -- built-in backends ----------------------------------------------------------------


@register_backend("object")
class ObjectBackend(NegotiationEngine):
    """The faithful multi-agent object path.

    One agent object per household, real messages over the bus, DESIRE
    process models, optional Producer / External World / Resource Consumer
    agents — the reference execution for paper-facing figures and the
    universal fallback of ``backend="auto"``.
    """

    def run(self, scenario: Scenario, config: EngineConfig) -> NegotiationResult:
        return NegotiationSession(scenario, **config.session_kwargs()).run()


#: Reward-table bidding policies with batched kernels on
#: :class:`~repro.agents.vectorized.VectorizedPopulation`.
_VECTORIZED_POLICIES = (HighestAcceptableCutdownBidding, ExpectedGainBidding)


def _distinct_requirement_grids(scenario: Scenario) -> int:
    """How many distinct cut-down grids the customers' requirement tables use.

    Mirrors the vectorized layer's own packing criteria so auto-selection and
    ``VectorizedPopulation`` can never drift apart: one grid rides the single
    shared requirement matrix, up to :data:`~repro.agents.vectorized
    .GRID_GROUP_AUTO_CAP` grids ride the grouped per-grid kernels, and more
    than that falls back to the scalar per-customer code.  Lazily
    materialised populations share one grid by construction (their tables
    all come from a single ``FleetRequirements`` matrix), so the check must
    not — and does not — touch ``population.specs``.
    """
    if scenario.population.columnar_view() is not None:
        return 1
    requirements = [spec.requirements for spec in scenario.population.specs]
    if shares_requirement_grid(requirements):
        return 1
    return len({tuple(table.cutdowns()) for table in requirements})


def _no_full_society(config: EngineConfig) -> tuple[bool, str]:
    """Hard capability check shared by every batched (non-object) backend."""
    if config.needs_full_agent_society:
        return False, (
            "producer / external-world / resource-consumer agents require "
            "the object path"
        )
    return True, ""


def _fast_path_qualifies(
    scenario: Scenario, config: EngineConfig
) -> tuple[bool, str]:
    """Whether the scenario rides the batched kernels end to end.

    Shared by the vectorized and sharded backends so the two can never drift:
    the sharded runtime is the vectorized data plane cut into slices, so a
    scenario that would hit the fast path's scalar fallback disqualifies both.
    """
    ok, reason = _no_full_society(config)
    if not ok:
        return ok, reason
    method = scenario.method
    if isinstance(method, RewardTablesMethod):
        # Exact-type match, mirroring FastSession's kernel dispatch: a
        # policy *subclass* would hit the fast path's history-free scalar
        # fallback and could diverge from the object path, so it must not
        # qualify for automatic selection.
        if type(method.bidding_policy) not in _VECTORIZED_POLICIES:
            return False, (
                f"no batched kernel for bidding policy "
                f"{type(method.bidding_policy).__name__}"
            )
    elif not isinstance(method, (OfferMethod, RequestForBidsMethod)):
        return False, f"no batched kernel for method {type(method).__name__}"
    distinct_grids = _distinct_requirement_grids(scenario)
    if distinct_grids > GRID_GROUP_AUTO_CAP:
        return False, (
            f"{distinct_grids} distinct requirement grids exceed the "
            f"grouped-kernel cap of {GRID_GROUP_AUTO_CAP} (scalar fallback)"
        )
    return True, ""


@register_backend("vectorized")
class VectorizedBackend(NegotiationEngine):
    """The batched numpy fast path (:class:`~repro.core.fast_session.FastSession`).

    Bit-identical to the object path at equal seeds; scales to 10k+
    households.  It cannot host the extra agents of the full society, so
    configurations requesting them are refused.
    """

    def run(self, scenario: Scenario, config: EngineConfig) -> NegotiationResult:
        return FastSession(scenario, **config.fast_session_kwargs()).run()

    def can_run(
        self, scenario: Scenario, config: EngineConfig
    ) -> tuple[bool, str]:
        return _no_full_society(config)

    def qualifies(
        self, scenario: Scenario, config: EngineConfig
    ) -> tuple[bool, str]:
        return _fast_path_qualifies(scenario, config)


@register_backend("sharded")
class ShardedBackend(NegotiationEngine):
    """The parallel runtime (:class:`~repro.core.sharded_session.ShardedSession`).

    Partitions the vectorized population into per-core shards and fans each
    round's kernels out to a thread pool; bit-identical to the vectorized and
    object paths at equal seeds.  ``backend="auto"`` only picks it for
    populations of at least :attr:`EngineConfig.shard_threshold` households
    with more than one worker available — below that the single-core
    vectorized path wins — but it can always be requested explicitly.
    """

    def run(self, scenario: Scenario, config: EngineConfig) -> NegotiationResult:
        session = ShardedSession(scenario, **config.sharded_session_kwargs())
        result = session.run()
        result.metadata["shards"] = session.num_shards
        return result

    def can_run(
        self, scenario: Scenario, config: EngineConfig
    ) -> tuple[bool, str]:
        return _no_full_society(config)

    def qualifies(
        self, scenario: Scenario, config: EngineConfig
    ) -> tuple[bool, str]:
        ok, reason = _fast_path_qualifies(scenario, config)
        if not ok:
            return ok, reason
        num_households = len(scenario.population)
        if num_households < config.shard_threshold:
            return False, (
                f"population of {num_households} below the shard threshold "
                f"({config.shard_threshold}); single-core vectorized path wins"
            )
        if config.resolved_shards() < 2:
            return False, (
                "only one worker available (set EngineConfig.shards >= 2 to "
                "shard anyway)"
            )
        return True, ""


class _PlannedBackend(NegotiationEngine):
    """A declared slot for a backend the ROADMAP plans but has not landed."""

    available = False
    roadmap_item: str = ""

    def run(self, scenario: Scenario, config: EngineConfig) -> NegotiationResult:
        raise BackendUnavailableError(
            f"the {self.name!r} backend is a planned slot ({self.roadmap_item}); "
            f"use backend='auto', 'vectorized' or 'object' until it lands"
        )

    def can_run(
        self, scenario: Scenario, config: EngineConfig
    ) -> tuple[bool, str]:
        return False, f"{self.name!r} backend not implemented yet ({self.roadmap_item})"


@register_backend("async")
class AsyncBackend(_PlannedBackend):
    """Slot for the asyncio message-bus runtime (overlapped information acquisition)."""

    roadmap_item = "ROADMAP: async message bus"


# -- dispatch --------------------------------------------------------------------------


def select_backend(
    scenario: Scenario, config: EngineConfig
) -> tuple[NegotiationEngine, dict[str, str]]:
    """The engine ``backend="auto"`` would pick, plus the rejection reasons.

    Walks :data:`AUTO_PRIORITY` and returns the first available engine whose
    ``qualifies`` check passes; the second element maps each skipped backend
    to why it was skipped (useful for diagnostics and tests).
    """
    rejections: dict[str, str] = {}
    for name in AUTO_PRIORITY:
        engine = _BACKENDS.get(name)
        if engine is None:
            continue
        if not engine.available:
            rejections[name] = "not implemented yet"
            continue
        ok, reason = engine.qualifies(scenario, config)
        if ok:
            return engine, rejections
        rejections[name] = reason
    raise UnknownBackendError(
        "no registered backend qualifies for this scenario; "
        f"rejections: {rejections}"
    )


def run(
    scenario: Scenario,
    backend: str = "auto",
    config: Optional[EngineConfig] = None,
    **overrides: object,
) -> NegotiationResult:
    """Run one negotiation through the engine façade.

    Parameters
    ----------
    scenario:
        The :class:`~repro.core.scenario.Scenario` to negotiate (build one
        with :func:`repro.api.scenario` or the ``repro.core.scenario``
        factories).
    backend:
        A registered backend name, or ``"auto"`` (default) to pick the
        fastest qualifying backend with transparent fallback to the object
        path.
    config:
        An :class:`EngineConfig`; defaults to ``EngineConfig()``.
    **overrides:
        Individual :class:`EngineConfig` fields overriding ``config``, e.g.
        ``run(scenario, seed=3, check_protocol=False)``.

    Returns
    -------
    NegotiationResult
        With ``metadata["backend"]`` set to the backend that actually ran.
    """
    resolved = config if config is not None else EngineConfig()
    if overrides:
        resolved = resolved.replace(**overrides)
    rejections: dict[str, str] = {}
    if backend == "auto":
        engine, rejections = select_backend(scenario, resolved)
    else:
        engine = get_backend(backend)
        if not engine.available:
            _, reason = engine.can_run(scenario, resolved)
            raise BackendUnavailableError(
                f"backend {backend!r} is registered but not available"
                + (f": {reason}" if reason else "")
            )
        ok, reason = engine.can_run(scenario, resolved)
        if not ok:
            raise BackendUnsupportedError(
                f"backend {backend!r} cannot run scenario "
                f"{scenario.name!r}: {reason}"
            )
    result = engine.run(scenario, resolved)
    result.metadata["backend"] = engine.name
    if backend == "auto":
        # Why faster backends were passed over (empty when the first choice
        # won) — lets callers and tests see e.g. that "sharded" was excluded
        # for being below the shard threshold.
        result.metadata["backend_rejections"] = rejections
    planning_fallback = getattr(scenario.population, "planning_fallback", None)
    if planning_fallback is not None:
        # The population was asked for columnar planning but fell back to
        # the scalar per-household loop — surface why, instead of the former
        # silent degradation.
        result.metadata["planning_fallback"] = planning_fallback
    return result
