"""Supply and demand behaviour of the computational-market participants.

In the market framing of load management (Ygge & Akkermans), the commodity is
*load reduction* during the peak interval.  Customers are suppliers: at a
price ``p`` per unit of reduction, a customer offers the cut-down that
maximises ``p * reduction - discomfort``, with discomfort read from the same
cut-down-reward requirement table the negotiating Customer Agent uses — so the
comparison between mechanisms is apples-to-apples.  The utility is the (only)
buyer: it wants enough reduction to remove the predicted overuse and values a
unit of reduction at the avoided expensive-production cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.negotiation.reward_table import CutdownRewardRequirements, DEFAULT_CUTDOWN_GRID


@dataclass(frozen=True)
class SupplyOffer:
    """A customer's best response at a given price."""

    cutdown: float
    reduction: float
    surplus: float
    payment: float


@dataclass
class CustomerSupplyCurve:
    """One customer's supply of load reduction as a function of price."""

    customer: str
    predicted_use: float
    requirements: CutdownRewardRequirements
    grid: Sequence[float] = DEFAULT_CUTDOWN_GRID

    def __post_init__(self) -> None:
        if self.predicted_use < 0:
            raise ValueError("predicted use must be non-negative")

    def best_response(self, price: float) -> SupplyOffer:
        """The cut-down maximising the customer's surplus at ``price``.

        A customer never supplies at negative surplus and never beyond its
        physically feasible cut-down.
        """
        if price < 0:
            raise ValueError("price must be non-negative")
        best = SupplyOffer(cutdown=0.0, reduction=0.0, surplus=0.0, payment=0.0)
        for cutdown in self.grid:
            if cutdown == 0.0:
                continue
            if cutdown > self.requirements.max_feasible_cutdown + 1e-12:
                continue
            discomfort = self.requirements.interpolated_requirement(cutdown)
            reduction = cutdown * self.predicted_use
            payment = price * reduction
            surplus = payment - discomfort
            if surplus > best.surplus or (
                surplus == best.surplus and reduction > best.reduction and surplus > 0
            ):
                best = SupplyOffer(
                    cutdown=cutdown, reduction=reduction, surplus=surplus, payment=payment
                )
        return best

    def reduction_at(self, price: float) -> float:
        """Reduction supplied at a price (convenience for aggregation)."""
        return self.best_response(price).reduction


@dataclass
class UtilityDemandCurve:
    """The utility's willingness to pay for load reduction.

    The utility needs ``needed_reduction`` to bring the predicted overuse
    down to its acceptable level, and values reduction at the expensive
    production cost it avoids (per unit of predicted peak consumption) up to
    a reservation price; beyond the needed amount its marginal value is zero.
    """

    needed_reduction: float
    reservation_price: float

    def __post_init__(self) -> None:
        if self.needed_reduction < 0:
            raise ValueError("needed reduction must be non-negative")
        if self.reservation_price < 0:
            raise ValueError("reservation price must be non-negative")

    def demand_at(self, price: float) -> float:
        """Reduction demanded at a price."""
        if price < 0:
            raise ValueError("price must be non-negative")
        if price > self.reservation_price:
            return 0.0
        return self.needed_reduction
