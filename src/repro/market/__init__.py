"""Computational-market baseline.

Section 3.2.4 and the discussion in Section 7 point to computational markets
(Ygge & Akkermans, "Power Load Management as a Computational Market",
ICMAS'96 — reference [12]) as an alternative mechanism for the same load
management problem.  This package implements such a baseline so the
negotiation protocols can be compared against it (experiment E8):

* :mod:`repro.market.equilibrium` — a uniform-price market for load
  *reduction* during the peak interval, cleared by bisection on the price.
* :mod:`repro.market.market_agent` — the per-customer supply behaviour
  (how much reduction a customer offers at a given price).
"""

from repro.market.equilibrium import EquilibriumMarket, MarketOutcome
from repro.market.market_agent import CustomerSupplyCurve, UtilityDemandCurve

__all__ = [
    "CustomerSupplyCurve",
    "EquilibriumMarket",
    "MarketOutcome",
    "UtilityDemandCurve",
]
