"""Clearing the computational market for load reduction.

The :class:`EquilibriumMarket` searches for the lowest uniform price at which
the aggregate reduction supplied by the customers covers the utility's needed
reduction (capped at the utility's reservation price).  The search is a
bisection on the price axis; the iteration count plays the role the
negotiation round count plays for the protocol-based mechanisms, so the two
approaches can be compared on speed, reduction achieved and money spent
(experiment E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.agents.population import CustomerPopulation
from repro.market.market_agent import CustomerSupplyCurve, SupplyOffer, UtilityDemandCurve


@dataclass
class MarketOutcome:
    """Result of clearing the market once."""

    clearing_price: float
    total_reduction: float
    needed_reduction: float
    total_payment: float
    iterations: int
    offers: dict[str, SupplyOffer] = field(default_factory=dict)
    cleared: bool = True

    @property
    def reduction_achieved_fraction(self) -> float:
        if self.needed_reduction <= 0:
            return 1.0
        return min(1.0, self.total_reduction / self.needed_reduction)

    @property
    def total_customer_surplus(self) -> float:
        return sum(offer.surplus for offer in self.offers.values())

    @property
    def payment_per_unit_reduction(self) -> float:
        if self.total_reduction <= 0:
            return float("inf") if self.total_payment > 0 else 0.0
        return self.total_payment / self.total_reduction

    def summary(self) -> dict[str, float]:
        return {
            "clearing_price": self.clearing_price,
            "total_reduction": self.total_reduction,
            "needed_reduction": self.needed_reduction,
            "total_payment": self.total_payment,
            "iterations": self.iterations,
            "cleared": float(self.cleared),
            "total_customer_surplus": self.total_customer_surplus,
        }


class EquilibriumMarket:
    """A uniform-price market for peak-interval load reduction."""

    def __init__(
        self,
        supply_curves: Sequence[CustomerSupplyCurve],
        demand: UtilityDemandCurve,
        price_tolerance: float = 1e-3,
        max_iterations: int = 60,
    ) -> None:
        if not supply_curves:
            raise ValueError("the market needs at least one supplier")
        if price_tolerance <= 0:
            raise ValueError("price tolerance must be positive")
        if max_iterations <= 0:
            raise ValueError("max iterations must be positive")
        self.supply_curves = list(supply_curves)
        self.demand = demand
        self.price_tolerance = price_tolerance
        self.max_iterations = max_iterations

    # -- aggregation ---------------------------------------------------------------

    def aggregate_supply(self, price: float) -> float:
        """Total reduction supplied at a price."""
        return sum(curve.reduction_at(price) for curve in self.supply_curves)

    # -- clearing ----------------------------------------------------------------------

    def clear(self) -> MarketOutcome:
        """Find the lowest price covering the needed reduction (or the reservation cap).

        The price is found by bisection between zero and the utility's
        reservation price.  If even the reservation price cannot buy the
        needed reduction, the market clears at the reservation price with
        whatever reduction is available (``cleared=False``).
        """
        needed = self.demand.needed_reduction
        ceiling = self.demand.reservation_price
        iterations = 0
        if needed <= 0:
            return self._outcome(price=0.0, iterations=0, cleared=True)
        supply_at_ceiling = self.aggregate_supply(ceiling)
        if supply_at_ceiling < needed:
            return self._outcome(price=ceiling, iterations=1, cleared=False)
        low, high = 0.0, ceiling
        while high - low > self.price_tolerance and iterations < self.max_iterations:
            mid = (low + high) / 2.0
            iterations += 1
            if self.aggregate_supply(mid) >= needed:
                high = mid
            else:
                low = mid
        return self._outcome(price=high, iterations=iterations, cleared=True)

    def _outcome(self, price: float, iterations: int, cleared: bool) -> MarketOutcome:
        offers = {
            curve.customer: curve.best_response(price) for curve in self.supply_curves
        }
        total_reduction = sum(offer.reduction for offer in offers.values())
        total_payment = sum(offer.payment for offer in offers.values())
        return MarketOutcome(
            clearing_price=price,
            total_reduction=total_reduction,
            needed_reduction=self.demand.needed_reduction,
            total_payment=total_payment,
            iterations=iterations,
            offers=offers,
            cleared=cleared,
        )

    # -- constructors ------------------------------------------------------------------------

    @classmethod
    def from_population(
        cls,
        population: CustomerPopulation,
        reservation_price: Optional[float] = None,
        price_tolerance: float = 1e-3,
    ) -> "EquilibriumMarket":
        """Build a market over the same population a negotiation would use.

        The needed reduction is the overuse beyond the population's
        ``max_allowed_overuse``; the default reservation price corresponds to
        a generous willingness to pay per unit of reduced peak consumption
        (comparable to the reward levels of the negotiation scenarios).
        """
        supply = [
            CustomerSupplyCurve(
                customer=spec.customer_id,
                predicted_use=spec.predicted_use,
                requirements=spec.requirements,
            )
            for spec in population.specs
        ]
        needed = max(0.0, population.initial_overuse - population.max_allowed_overuse)
        if reservation_price is None:
            # Willingness to pay per unit (kW) of reduction: scaled so it is
            # in the same currency range as the negotiation's max rewards.
            reservation_price = 25.0
        demand = UtilityDemandCurve(
            needed_reduction=needed, reservation_price=reservation_price
        )
        return cls(supply, demand, price_tolerance=price_tolerance)
