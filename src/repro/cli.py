"""Command-line interface for running the reproduction's experiments.

Usage (after ``pip install -e .``)::

    python -m repro list                 # list the registered experiments
    python -m repro run E2               # run one experiment and print its report
    python -m repro run all              # run every experiment (slow but complete)
    python -m repro quickstart           # run the prototype negotiation end to end
    python -m repro backends             # list the registered negotiation backends
    python -m repro serve                # start the negotiation HTTP server

The CLI is a thin wrapper over :mod:`repro.experiments`; anything it prints
can also be produced programmatically (see the examples/ directory).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.reporting import format_key_values, format_table
from repro.experiments import EXPERIMENTS, get_experiment


def _render_result(result: object) -> str:
    """Best-effort rendering of an experiment result object."""
    render = getattr(result, "render", None)
    if callable(render):
        return render()
    rows = getattr(result, "rows", None)
    if callable(rows):
        return format_table(rows())
    summary = getattr(result, "summary", None)
    if callable(summary):
        return format_key_values(summary())
    return repr(result)


def command_list() -> int:
    """Print the experiment registry."""
    rows = [
        {
            "id": info.experiment_id,
            "paper artefact": info.paper_artefact,
            "description": info.description,
        }
        for info in EXPERIMENTS.values()
    ]
    print(format_table(rows, title="Registered experiments"))
    return 0


def command_run(experiment_id: str) -> int:
    """Run one experiment (or all of them) and print the report(s)."""
    if experiment_id.lower() == "all":
        exit_code = 0
        for info in EXPERIMENTS.values():
            print("=" * 72)
            print(f"{info.experiment_id} — {info.description}")
            print("=" * 72)
            try:
                print(_render_result(info.runner()))
            except Exception as error:  # pragma: no cover - defensive CLI path
                print(f"experiment {info.experiment_id} failed: {error}", file=sys.stderr)
                exit_code = 1
            print()
        return exit_code
    try:
        info = get_experiment(experiment_id.upper())
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(f"{info.experiment_id} — {info.description}")
    print(_render_result(info.runner()))
    return 0


def command_quickstart(backend: str = "auto") -> int:
    """Run the calibrated prototype negotiation and print its summary."""
    from repro.api import BackendError, run, scenario

    try:
        result = run(scenario().paper_prototype().build(), backend=backend, seed=0)
    except BackendError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(format_key_values(result.summary()))
    print()
    print(f"backend:            {result.metadata.get('backend', backend)}")
    print("overuse trajectory: "
          + ", ".join(f"{v:.2f}" for v in result.overuse_trajectory()))
    print("reward @ 0.4:       "
          + ", ".join(f"{v:.2f}" for v in result.reward_trajectory(0.4)))
    return 0


def command_backends() -> int:
    """Print the registered negotiation backends and the serving layer."""
    from repro.api import available_backends
    from repro.serve.coalesce import request_coalesces  # noqa: F401 - availability probe

    rows = [
        {"backend": name, "status": "available" if ok else "planned slot"}
        for name, ok in available_backends().items()
    ]
    print(format_table(rows, title="Registered negotiation backends"))
    print()
    print(
        "serving: python -m repro serve exposes backend='auto' over HTTP with\n"
        "request-coalescing micro-batching (submit/status/result/stream/metrics)."
    )
    return 0


def command_serve(
    host: str,
    port: int,
    max_batch: int,
    max_wait: float,
    workers: Optional[int],
    state_dir: Optional[str],
    max_queue: Optional[int],
    rate_limit: Optional[float],
    default_deadline: Optional[int],
    watchdog_timeout: Optional[float],
) -> int:
    """Run the negotiation server until interrupted."""
    import asyncio

    from repro.serve.server import NegotiationServer

    server = NegotiationServer(
        host=host,
        port=port,
        max_batch=max_batch,
        max_wait=max_wait,
        workers=workers,
        state_dir=state_dir,
        max_queue=max_queue,
        rate_limit=rate_limit,
        default_deadline_ms=default_deadline,
        watchdog_timeout=watchdog_timeout,
    )
    try:
        asyncio.run(server.run_forever())
    except KeyboardInterrupt:
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Agents Negotiating for Load Balancing of Electricity Use'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list the registered experiments")
    run_parser = subparsers.add_parser("run", help="run an experiment by id (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. E2, or 'all'")
    quickstart_parser = subparsers.add_parser(
        "quickstart", help="run the prototype negotiation"
    )
    quickstart_parser.add_argument(
        "--backend", default="auto",
        help="negotiation backend (auto, object, vectorized; default auto)",
    )
    subparsers.add_parser("backends", help="list the registered negotiation backends")
    serve_parser = subparsers.add_parser(
        "serve", help="serve negotiations over HTTP with request coalescing"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8731,
        help="bind port; 0 lets the OS pick (default 8731)",
    )
    serve_parser.add_argument(
        "--max-batch", type=int, default=8,
        help="requests coalesced into one kernel pass (default 8)",
    )
    serve_parser.add_argument(
        "--max-wait", type=float, default=0.05,
        help="seconds a request may wait for batch-mates (default 0.05)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=None,
        help="negotiation worker threads (default min(4, cpu count))",
    )
    serve_parser.add_argument(
        "--state-dir", default=None,
        help="directory persisting finished sessions as JSON and the "
             "in-flight journal (default: none — no persistence, no "
             "restart recovery)",
    )
    serve_parser.add_argument(
        "--max-queue", type=int, default=None,
        help="admission bound: maximum accepted-but-unfinished requests; "
             "beyond it POST /submit answers 429 with Retry-After "
             "(default: unbounded)",
    )
    serve_parser.add_argument(
        "--rate-limit", type=float, default=None,
        help="sustained admissions per second (token bucket; default: none)",
    )
    serve_parser.add_argument(
        "--default-deadline", type=int, default=None,
        help="latency budget in milliseconds applied to requests that do "
             "not set deadline_ms themselves (default: none)",
    )
    serve_parser.add_argument(
        "--watchdog-timeout", type=float, default=600.0,
        help="seconds before a stuck worker batch's sessions are failed "
             "cleanly (default 600; 0 disables the watchdog)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.command == "list":
        return command_list()
    if arguments.command == "run":
        return command_run(arguments.experiment)
    if arguments.command == "quickstart":
        return command_quickstart(arguments.backend)
    if arguments.command == "backends":
        return command_backends()
    if arguments.command == "serve":
        return command_serve(
            host=arguments.host,
            port=arguments.port,
            max_batch=arguments.max_batch,
            max_wait=arguments.max_wait,
            workers=arguments.workers,
            state_dir=arguments.state_dir,
            max_queue=arguments.max_queue,
            rate_limit=arguments.rate_limit,
            default_deadline=arguments.default_deadline,
            watchdog_timeout=(
                arguments.watchdog_timeout if arguments.watchdog_timeout > 0 else None
            ),
        )
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
