"""Announcements, bids and awards exchanged during negotiation.

These are the *content* objects carried inside
:class:`~repro.runtime.messaging.Message` envelopes.  Each of the three
announcement methods of Section 3.2 has its own announcement and bid types;
they share the :class:`Announcement` / :class:`Bid` base classes so the
protocol and analysis code can treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.grid.pricing import Tariff
from repro.negotiation.reward_table import RewardTable
from repro.runtime.clock import TimeInterval


@dataclass(frozen=True)
class Announcement:
    """Base class for announcements sent by the Utility Agent."""

    round_number: int
    interval: Optional[TimeInterval] = None

    def method_name(self) -> str:
        return "abstract"


@dataclass(frozen=True)
class OfferAnnouncement(Announcement):
    """The offer method's single take-it-or-leave-it announcement.

    "if they only use ``x_max`` % of a given amount of electricity, they will
    receive that electricity for a lower price.  If, however, they use more
    electricity than this given amount, they will have to pay a higher price"
    (Section 3.2.1).
    """

    #: Fraction of the allowed amount customers may use at the lower price.
    x_max: float = 0.8
    tariff: Tariff = field(default_factory=Tariff.standard)

    def __post_init__(self) -> None:
        if not 0.0 < self.x_max <= 1.0:
            raise ValueError(f"x_max must be in (0, 1], got {self.x_max}")

    def method_name(self) -> str:
        return "offer"

    def allowance_for(self, allowed_use: float) -> float:
        """The amount a customer may use at the lower price."""
        if allowed_use < 0:
            raise ValueError("allowed use must be non-negative")
        return self.x_max * allowed_use


@dataclass(frozen=True)
class RequestForBidsAnnouncement(Announcement):
    """The request-for-bids method's announcement.

    Customers are asked to state how much electricity they really need
    (``y_min``); awarded bids pay the lower price for ``y_min`` and the higher
    price for anything beyond (Section 3.2.2).
    """

    tariff: Tariff = field(default_factory=Tariff.standard)
    #: Minimum improvement (kW) expected from a customer that moves
    #: "one step forward" instead of standing still.
    step_size: float = 0.0

    def method_name(self) -> str:
        return "request_for_bids"


@dataclass(frozen=True)
class RewardTableAnnouncement(Announcement):
    """The announce-reward-tables method's announcement (Section 3.2.3)."""

    table: RewardTable = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.table is None:
            raise ValueError("a reward table announcement needs a table")

    def method_name(self) -> str:
        return "reward_tables"


@dataclass(frozen=True)
class Bid:
    """Base class for customer responses to an announcement."""

    customer: str
    round_number: int

    def method_name(self) -> str:
        return "abstract"


@dataclass(frozen=True)
class OfferResponse(Bid):
    """Yes/no answer to an :class:`OfferAnnouncement`."""

    accept: bool = False

    def method_name(self) -> str:
        return "offer"


@dataclass(frozen=True)
class QuantityBid(Bid):
    """Response to a request for bids: the electricity really needed (y_min)."""

    needed_use: float = 0.0

    def __post_init__(self) -> None:
        if self.needed_use < 0:
            raise ValueError(f"needed use must be non-negative, got {self.needed_use}")

    def method_name(self) -> str:
        return "request_for_bids"


@dataclass(frozen=True)
class CutdownBid(Bid):
    """Response to a reward-table announcement: the committed cut-down fraction."""

    cutdown: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.cutdown <= 1.0:
            raise ValueError(f"cutdown must be in [0, 1], got {self.cutdown}")

    def method_name(self) -> str:
        return "reward_tables"


@dataclass(frozen=True)
class Award:
    """The Utility Agent's final decision on one customer's bid."""

    customer: str
    accepted: bool
    #: The cut-down (or allowance) the award commits the customer to.
    committed_cutdown: float = 0.0
    #: The reward (or price advantage) the customer receives.
    reward: float = 0.0
    round_number: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.committed_cutdown <= 1.0:
            raise ValueError("committed cut-down must be in [0, 1]")
        if self.reward < 0:
            raise ValueError("reward must be non-negative")
