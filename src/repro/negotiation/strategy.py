"""Tunable negotiation policies.

The paper separates the *mechanics* of each announcement method from the
*strategies* the agents plug into them:

* the Utility Agent's **β controller** — the prototype uses a constant β;
  Section 7 explicitly calls for "dynamically varying the value of beta on
  the basis of experience" (implemented here as :class:`AdaptiveBeta`);
* the Utility Agent's **announcement determination** — "generate and select"
  versus "statistical analysis and optimisation" (Figure 3);
* the Utility Agent's **bid acceptance strategy** (Figure 3: *determine bid
  acceptance*): accept every bid, or select just enough bids;
* the Customer Agent's **bidding policy** (Figure 5: *choose appropriate
  bid* / *calculate expected gain*): bid the highest acceptable cut-down
  (the prototype's behaviour, Figures 8/9) or maximise expected gain.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.negotiation.formulas import update_reward_table
from repro.negotiation.reward_table import (
    DEFAULT_CUTDOWN_GRID,
    CutdownRewardRequirements,
    RewardTable,
)


# ---------------------------------------------------------------------------
# beta controllers
# ---------------------------------------------------------------------------

class BetaController(abc.ABC):
    """Supplies the β used for the next reward-table update."""

    @abc.abstractmethod
    def next_beta(self, round_number: int, overuse: float, previous_overuse: Optional[float]) -> float:
        """β for the upcoming update.

        Parameters
        ----------
        round_number:
            Round just completed (0-based).
        overuse:
            Current relative overuse (predicted overuse / normal use).
        previous_overuse:
            Relative overuse after the previous round (``None`` in round 0).
        """


class ConstantBeta(BetaController):
    """The prototype's behaviour: "the factor beta ... has a constant value"."""

    def __init__(self, beta: float = 2.0) -> None:
        if beta < 0:
            raise ValueError(f"beta must be non-negative, got {beta}")
        self.beta = float(beta)

    def next_beta(self, round_number: int, overuse: float, previous_overuse: Optional[float]) -> float:
        return self.beta


class AdaptiveBeta(BetaController):
    """Dynamic β based on experience (the Section 7 extension).

    The controller speeds up (raises β) when the overuse is not falling fast
    enough between rounds and slows down (lowers β) when it is falling
    quickly, so the utility spends no more reward than necessary while still
    converging in few rounds.
    """

    def __init__(
        self,
        initial_beta: float = 2.0,
        min_beta: float = 0.25,
        max_beta: float = 8.0,
        target_improvement: float = 0.3,
        adjustment: float = 1.5,
    ) -> None:
        if not 0 < min_beta <= initial_beta <= max_beta:
            raise ValueError("need 0 < min_beta <= initial_beta <= max_beta")
        if not 0 < target_improvement < 1:
            raise ValueError("target improvement must be in (0, 1)")
        if adjustment <= 1:
            raise ValueError("adjustment factor must exceed 1")
        self.beta = float(initial_beta)
        self.min_beta = float(min_beta)
        self.max_beta = float(max_beta)
        self.target_improvement = float(target_improvement)
        self.adjustment = float(adjustment)

    def next_beta(self, round_number: int, overuse: float, previous_overuse: Optional[float]) -> float:
        if previous_overuse is None or previous_overuse <= 0:
            return self.beta
        improvement = (previous_overuse - overuse) / previous_overuse
        if improvement < self.target_improvement:
            self.beta = min(self.max_beta, self.beta * self.adjustment)
        elif improvement > 2 * self.target_improvement:
            self.beta = max(self.min_beta, self.beta / self.adjustment)
        return self.beta


# ---------------------------------------------------------------------------
# announcement determination (initial reward table construction)
# ---------------------------------------------------------------------------

class AnnouncementPolicy(abc.ABC):
    """Constructs the Utility Agent's initial reward table."""

    @abc.abstractmethod
    def initial_table(
        self,
        relative_overuse: float,
        max_reward: float,
        grid: Sequence[float] = DEFAULT_CUTDOWN_GRID,
    ) -> RewardTable:
        """The first announced reward table."""


class GenerateAndSelectAnnouncements(AnnouncementPolicy):
    """Generate candidate tables and select one (Figure 3, left branch).

    Candidates are convex tables at several generosity levels; the policy
    selects the cheapest candidate whose generosity scales with the severity
    of the predicted overuse — a simple qualitative selection, as the paper
    suggests ("this selection process can be randomly determined, or it can
    be based on, for example, predictions of the results").
    """

    def __init__(self, generosity_levels: Sequence[float] = (0.2, 0.35, 0.5, 0.65, 0.8)) -> None:
        if not generosity_levels:
            raise ValueError("need at least one generosity level")
        if any(not 0 < g <= 1 for g in generosity_levels):
            raise ValueError("generosity levels must be in (0, 1]")
        self.generosity_levels = sorted(generosity_levels)

    def initial_table(
        self,
        relative_overuse: float,
        max_reward: float,
        grid: Sequence[float] = DEFAULT_CUTDOWN_GRID,
    ) -> RewardTable:
        if max_reward <= 0:
            raise ValueError("max reward must be positive")
        candidates = [
            RewardTable.convex(level * max_reward, exponent=1.6, grid=grid)
            for level in self.generosity_levels
        ]
        # Severe overuse (>= 30% of capacity) warrants the most generous
        # candidate, mild overuse the least generous one.
        severity = min(1.0, max(0.0, relative_overuse) / 0.3)
        index = min(
            len(candidates) - 1, int(round(severity * (len(candidates) - 1)))
        )
        return candidates[index]


class StatisticalAnnouncementOptimisation(AnnouncementPolicy):
    """Optimise the initial table against a model of customer acceptance.

    The policy assumes customers accept a cut-down when the offered reward
    exceeds their (unknown) requirement, modelled as proportional to an
    assumed marginal discomfort; it then picks the cheapest table expected to
    remove the predicted overuse.  This is the "statistical analysis and
    optimisation" branch of Figure 3.
    """

    def __init__(
        self,
        assumed_requirement_scale: float = 50.0,
        assumed_exponent: float = 1.8,
        acceptance_margin: float = 1.1,
    ) -> None:
        if assumed_requirement_scale <= 0:
            raise ValueError("requirement scale must be positive")
        if assumed_exponent <= 0:
            raise ValueError("exponent must be positive")
        if acceptance_margin < 1.0:
            raise ValueError("acceptance margin must be at least 1")
        self.assumed_requirement_scale = assumed_requirement_scale
        self.assumed_exponent = assumed_exponent
        self.acceptance_margin = acceptance_margin

    def initial_table(
        self,
        relative_overuse: float,
        max_reward: float,
        grid: Sequence[float] = DEFAULT_CUTDOWN_GRID,
    ) -> RewardTable:
        if max_reward <= 0:
            raise ValueError("max reward must be positive")
        # The cut-down every customer must (on average) deliver to remove the
        # overuse entirely.
        needed_cutdown = min(0.9, max(0.0, relative_overuse) / (1.0 + max(0.0, relative_overuse)))
        entries = {}
        for cutdown in grid:
            assumed_requirement = (
                self.assumed_requirement_scale * (cutdown ** self.assumed_exponent)
            )
            if cutdown <= needed_cutdown:
                reward = min(max_reward, assumed_requirement * self.acceptance_margin)
            else:
                # Deeper cut-downs than needed are offered but not subsidised
                # beyond the proportional trend.
                reward = min(max_reward, assumed_requirement)
            entries[cutdown] = reward
        return RewardTable(entries)


# ---------------------------------------------------------------------------
# bid acceptance strategies (Utility Agent)
# ---------------------------------------------------------------------------

class BidAcceptancePolicy(abc.ABC):
    """Decides which customer bids the Utility Agent accepts."""

    @abc.abstractmethod
    def select(
        self,
        bids: Mapping[str, float],
        predicted_uses: Mapping[str, float],
        normal_use: float,
        total_predicted: float,
    ) -> dict[str, bool]:
        """Per-customer acceptance decision.

        Parameters
        ----------
        bids:
            Customer name -> committed cut-down fraction.
        predicted_uses:
            Customer name -> predicted use in the peak interval.
        normal_use:
            Capacity servable at normal cost.
        total_predicted:
            Total predicted use before any cut-down.
        """


class AcceptAllBids(BidAcceptancePolicy):
    """The prototype's behaviour: every responding customer's bid is accepted."""

    def select(
        self,
        bids: Mapping[str, float],
        predicted_uses: Mapping[str, float],
        normal_use: float,
        total_predicted: float,
    ) -> dict[str, bool]:
        return {customer: cutdown > 0 for customer, cutdown in bids.items()}


class SelectiveBidAcceptance(BidAcceptancePolicy):
    """Accept only enough bids to remove the overuse, preferring big savers.

    Rewards cost money, so once the accumulated cut-downs remove the overuse
    (plus a safety margin) the remaining bids are declined.  Bids are ranked
    by the absolute consumption reduction they deliver.
    """

    def __init__(self, safety_margin: float = 0.05) -> None:
        if safety_margin < 0:
            raise ValueError("safety margin must be non-negative")
        self.safety_margin = safety_margin

    def select(
        self,
        bids: Mapping[str, float],
        predicted_uses: Mapping[str, float],
        normal_use: float,
        total_predicted: float,
    ) -> dict[str, bool]:
        overuse = total_predicted - normal_use
        target_reduction = overuse * (1.0 + self.safety_margin)
        decisions = {customer: False for customer in bids}
        if target_reduction <= 0:
            return decisions
        savings = [
            (customer, bids[customer] * predicted_uses.get(customer, 0.0))
            for customer in bids
            if bids[customer] > 0
        ]
        savings.sort(key=lambda item: item[1], reverse=True)
        accumulated = 0.0
        for customer, saving in savings:
            if accumulated >= target_reduction:
                break
            decisions[customer] = True
            accumulated += saving
        return decisions


# ---------------------------------------------------------------------------
# customer bidding policies
# ---------------------------------------------------------------------------

class CustomerBiddingPolicy(abc.ABC):
    """Chooses a customer's cut-down bid given an announced reward table."""

    @abc.abstractmethod
    def choose_cutdown(
        self,
        table: RewardTable,
        requirements: CutdownRewardRequirements,
        previous_bid: Optional[float] = None,
    ) -> float:
        """The cut-down to bid this round (0.0 means no cut-down)."""


class HighestAcceptableCutdownBidding(CustomerBiddingPolicy):
    """The prototype's behaviour: bid the highest acceptable cut-down.

    "the Customer Agent chooses the highest acceptable cut-down as its
    preferred cut-down and informs the Utility Agent of this choice"
    (Section 6.2).  Monotonic concession is preserved by never bidding below
    a previous bid (rewards only rise, so previously acceptable cut-downs
    remain acceptable; the ``max`` is a guard against irregular tables).
    """

    def choose_cutdown(
        self,
        table: RewardTable,
        requirements: CutdownRewardRequirements,
        previous_bid: Optional[float] = None,
    ) -> float:
        candidate = requirements.highest_acceptable_cutdown(table)
        if previous_bid is not None:
            return max(candidate, previous_bid)
        return candidate


class ExpectedGainBidding(CustomerBiddingPolicy):
    """Bid the cut-down maximising the customer's surplus (Figure 5).

    The surplus of a cut-down is the offered reward minus the customer's
    required reward (its monetised discomfort).  Among acceptable cut-downs
    the one with the largest surplus is chosen; ties go to the larger
    cut-down (better for the grid at equal gain).
    """

    def choose_cutdown(
        self,
        table: RewardTable,
        requirements: CutdownRewardRequirements,
        previous_bid: Optional[float] = None,
    ) -> float:
        best_cutdown = 0.0
        best_surplus = 0.0
        for cutdown in requirements.acceptable_cutdowns(table):
            if cutdown == 0.0:
                continue
            surplus = requirements.surplus(cutdown, table.entries[cutdown])
            if surplus > best_surplus or (
                surplus == best_surplus and cutdown > best_cutdown
            ):
                best_cutdown = cutdown
                best_surplus = surplus
        if previous_bid is not None:
            return max(best_cutdown, previous_bid)
        return best_cutdown
