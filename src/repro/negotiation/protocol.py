"""The monotonic concession protocol as a checkable state machine.

Rosenschein and Zlotkin's monotonic concession protocol governs the
negotiation (Section 3.1): "during a negotiation process all proposed deals
must be equally or more acceptable to the counter party than all previous
deals proposed.  Agreement is reached when one of the agents proposes a deal
that coincides or exceeds the deal proposed by the other agent."

In the load-management instantiation the Utility Agent's deals are reward
tables (more acceptable to customers = rewards at least as high everywhere)
and a Customer Agent's deals are cut-down commitments (more acceptable to the
utility = a cut-down at least as large).  :class:`MonotonicConcessionProtocol`
enforces both directions and records the full negotiation history, which the
analysis layer and the property-based tests use to verify convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Optional

from repro.negotiation.messages import Announcement, Bid, CutdownBid, RewardTableAnnouncement
from repro.negotiation.termination import TerminationReason


class ProtocolViolation(RuntimeError):
    """Raised when a proposed deal breaks the monotonic concession rules."""


class NegotiationOutcome(Enum):
    """Overall outcome classification of a finished negotiation."""

    PEAK_REMOVED = "peak_removed"
    PEAK_REDUCED = "peak_reduced"
    NO_IMPROVEMENT = "no_improvement"
    ONGOING = "ongoing"


@dataclass
class RoundRecord:
    """Everything that happened in one negotiation round."""

    round_number: int
    announcement: Announcement
    bids: dict[str, Bid] = field(default_factory=dict)
    predicted_overuse_before: float = 0.0
    predicted_overuse_after: float = 0.0

    @property
    def participation(self) -> float:
        """Fraction of bids committing to a positive cut-down/response."""
        if not self.bids:
            return 0.0
        positive = 0
        for bid in self.bids.values():
            if isinstance(bid, CutdownBid):
                positive += bid.cutdown > 0
            else:
                positive += getattr(bid, "accept", False) or getattr(bid, "needed_use", 0) > 0
        return positive / len(self.bids)


@dataclass
class NegotiationRecord:
    """Full history of one negotiation process."""

    conversation_id: str
    normal_use: float
    initial_overuse: float
    rounds: list[RoundRecord] = field(default_factory=list)
    termination_reason: TerminationReason = TerminationReason.NOT_TERMINATED
    final_overuse: Optional[float] = None

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def outcome(self) -> NegotiationOutcome:
        if self.final_overuse is None:
            return NegotiationOutcome.ONGOING
        if self.final_overuse <= 0:
            return NegotiationOutcome.PEAK_REMOVED
        if self.final_overuse < self.initial_overuse:
            return NegotiationOutcome.PEAK_REDUCED
        return NegotiationOutcome.NO_IMPROVEMENT

    @property
    def overuse_trajectory(self) -> list[float]:
        """Predicted overuse after each round (starting from the initial value)."""
        trajectory = [self.initial_overuse]
        trajectory.extend(r.predicted_overuse_after for r in self.rounds)
        return trajectory

    def final_bids(self) -> dict[str, Bid]:
        """The last bid of every customer that ever responded."""
        latest: dict[str, Bid] = {}
        for round_record in self.rounds:
            latest.update(round_record.bids)
        return latest


class MonotonicConcessionProtocol:
    """Validates announcements and bids against the concession rules."""

    def __init__(self, strict: bool = True) -> None:
        #: When True, violations raise :class:`ProtocolViolation`; when False
        #: they are only recorded (useful to *measure* violations in tests of
        #: deliberately broken strategies).
        self.strict = strict
        self.violations: list[str] = []
        self._announcements: list[Announcement] = []
        self._bids_by_customer: dict[str, list[Bid]] = {}

    # -- recording with validation -------------------------------------------

    def record_announcement(self, announcement: Announcement) -> None:
        """Validate and record a new announcement by the Utility Agent."""
        if self._announcements:
            previous = self._announcements[-1]
            self._check_announcement_concession(previous, announcement)
        self._announcements.append(announcement)

    def record_bid(self, bid: Bid) -> None:
        """Validate and record a new bid by one Customer Agent."""
        history = self._bids_by_customer.setdefault(bid.customer, [])
        if history:
            self._check_bid_concession(history[-1], bid)
        history.append(bid)

    # -- queries ----------------------------------------------------------------

    @property
    def announcements(self) -> list[Announcement]:
        return list(self._announcements)

    def bids_of(self, customer: str) -> list[Bid]:
        return list(self._bids_by_customer.get(customer, []))

    def customers_heard_from(self) -> list[str]:
        return list(self._bids_by_customer)

    def agreement_reached(
        self, required_cutdowns: Mapping[str, float]
    ) -> bool:
        """Whether the customers' latest bids meet or exceed the required cut-downs.

        This is the "coincides or exceeds" agreement criterion, evaluated
        against the per-customer cut-down levels the Utility Agent needs.
        """
        for customer, required in required_cutdowns.items():
            history = self._bids_by_customer.get(customer)
            if not history:
                return False
            latest = history[-1]
            if not isinstance(latest, CutdownBid) or latest.cutdown < required:
                return False
        return True

    # -- rule checks ---------------------------------------------------------------

    def _record_violation(self, description: str) -> None:
        self.violations.append(description)
        if self.strict:
            raise ProtocolViolation(description)

    def _check_announcement_concession(
        self, previous: Announcement, current: Announcement
    ) -> None:
        if current.round_number <= previous.round_number:
            self._record_violation(
                f"announcement round number did not advance "
                f"({previous.round_number} -> {current.round_number})"
            )
        if isinstance(previous, RewardTableAnnouncement) and isinstance(
            current, RewardTableAnnouncement
        ):
            if not current.table.at_least_as_generous_as(previous.table):
                self._record_violation(
                    f"reward table announced in round {current.round_number} is less "
                    f"generous than the round {previous.round_number} table"
                )

    def _check_bid_concession(self, previous: Bid, current: Bid) -> None:
        if isinstance(previous, CutdownBid) and isinstance(current, CutdownBid):
            if current.cutdown < previous.cutdown:
                self._record_violation(
                    f"customer {current.customer!r} retreated from cut-down "
                    f"{previous.cutdown} to {current.cutdown}"
                )
