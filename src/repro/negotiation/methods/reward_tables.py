"""The announce-reward-tables method (Sections 3.2.3 and 6).

The Utility Agent announces a reward table; each Customer Agent replies with
the cut-down it is prepared to implement; the Utility Agent recomputes the
predicted overuse with the Section 6 formulae and, if unsatisfied, announces
a new table whose rewards have been escalated with the logistic rule.  The
process ends when the overuse is acceptable or the rewards have (almost)
saturated at ``max_reward``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

import numpy as np

from repro.negotiation.formulas import (
    predicted_overuse,
    predicted_overuse_array,
    relative_overuse,
    update_reward_table,
)
from repro.negotiation.messages import (
    Announcement,
    Bid,
    CutdownBid,
    RewardTableAnnouncement,
)
from repro.negotiation.methods.base import (
    ArrayRoundEvaluation,
    CustomerContext,
    NegotiationMethod,
    RoundEvaluation,
    UtilityContext,
)
from repro.negotiation.reward_table import DEFAULT_CUTDOWN_GRID, RewardTable
from repro.negotiation.strategy import (
    AcceptAllBids,
    AnnouncementPolicy,
    BetaController,
    BidAcceptancePolicy,
    ConstantBeta,
    CustomerBiddingPolicy,
    ExpectedGainBidding,
    GenerateAndSelectAnnouncements,
    HighestAcceptableCutdownBidding,
)
from repro.negotiation.termination import (
    CompositeTermination,
    NegotiationStatus,
    TerminationCondition,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.vectorized import VectorizedPopulation


class RewardTablesMethod(NegotiationMethod):
    """The prototype's negotiation mechanism.

    Parameters
    ----------
    max_reward:
        The maximum reward the Utility Agent can offer (fixed in advance,
        Section 3.2.3).
    beta_controller:
        Supplies β for each reward escalation (constant in the prototype).
    initial_table:
        Optional explicit opening reward table (used to reproduce the exact
        Figure 6 scenario); when omitted the ``announcement_policy`` builds
        one.
    announcement_policy:
        How the opening table is constructed when not given explicitly.
    acceptance_policy:
        Which bids are accepted once the negotiation ends.
    bidding_policy:
        The customer-side policy (highest acceptable cut-down by default).
    termination:
        Stopping criterion; defaults to the paper's composite condition.
    cutdown_grid:
        The discrete cut-down fractions offered.
    """

    name = "reward_tables"

    def __init__(
        self,
        max_reward: float = 30.0,
        beta_controller: Optional[BetaController] = None,
        initial_table: Optional[RewardTable] = None,
        announcement_policy: Optional[AnnouncementPolicy] = None,
        acceptance_policy: Optional[BidAcceptancePolicy] = None,
        bidding_policy: Optional[CustomerBiddingPolicy] = None,
        termination: Optional[TerminationCondition] = None,
        cutdown_grid: Sequence[float] = DEFAULT_CUTDOWN_GRID,
        reward_epsilon: float = 1.0,
        max_rounds: int = 50,
    ) -> None:
        if max_reward <= 0:
            raise ValueError("max reward must be positive")
        if initial_table is not None and initial_table.max_reward_offered() > max_reward:
            raise ValueError("the initial table already exceeds max_reward")
        self.max_reward = float(max_reward)
        self.beta_controller = beta_controller or ConstantBeta()
        self.initial_table = initial_table
        self.announcement_policy = announcement_policy or GenerateAndSelectAnnouncements()
        self.acceptance_policy = acceptance_policy or AcceptAllBids()
        self.bidding_policy = bidding_policy or HighestAcceptableCutdownBidding()
        self.cutdown_grid = tuple(cutdown_grid)
        self.termination = termination or CompositeTermination.paper_default(
            max_allowed_overuse=0.0, epsilon=reward_epsilon, max_rounds=max_rounds
        )
        self._previous_relative_overuse: Optional[float] = None

    # -- Utility Agent side ------------------------------------------------------

    def initial_announcement(self, context: UtilityContext) -> RewardTableAnnouncement:
        if self.initial_table is not None:
            table = self.initial_table
        else:
            table = self.announcement_policy.initial_table(
                context.initial_relative_overuse, self.max_reward, self.cutdown_grid
            )
        if context.interval is not None:
            table = table.with_interval(context.interval)
        self._previous_relative_overuse = None
        return RewardTableAnnouncement(round_number=0, interval=context.interval, table=table)

    def evaluate_round(
        self,
        context: UtilityContext,
        announcement: Announcement,
        bids: Mapping[str, Bid],
        round_number: int,
    ) -> RoundEvaluation:
        cutdowns = self.committed_cutdowns(context, bids)
        overuse = predicted_overuse(
            context.predicted_uses, context.allowed_uses, cutdowns, context.normal_use
        )
        ratio = relative_overuse(overuse, context.normal_use)
        status = NegotiationStatus(
            round_number=round_number,
            predicted_overuse=overuse,
            normal_use=context.normal_use,
            previous_table=None,
            current_table=None,
        )
        reason = self._overuse_condition(context).check(status)
        acceptance = self.acceptance_policy.select(
            cutdowns, context.predicted_uses, context.normal_use, context.total_predicted_use
        )
        return RoundEvaluation(
            predicted_overuse=overuse,
            relative_overuse=ratio,
            termination=reason,
            accepted_customers=acceptance,
        )

    def next_announcement(
        self,
        context: UtilityContext,
        previous: Announcement,
        evaluation: RoundEvaluation,
        round_number: int,
    ) -> Optional[RewardTableAnnouncement]:
        if not isinstance(previous, RewardTableAnnouncement):
            raise TypeError("reward-tables method needs a RewardTableAnnouncement")
        beta = self.beta_controller.next_beta(
            round_number, evaluation.relative_overuse, self._previous_relative_overuse
        )
        self._previous_relative_overuse = evaluation.relative_overuse
        new_table = update_reward_table(
            previous.table, beta, evaluation.relative_overuse, self.max_reward
        )
        status = NegotiationStatus(
            round_number=round_number,
            predicted_overuse=evaluation.predicted_overuse,
            normal_use=context.normal_use,
            previous_table=previous.table,
            current_table=new_table,
        )
        if self.termination.check(status) is not None:
            return None
        return RewardTableAnnouncement(
            round_number=round_number + 1, interval=previous.interval, table=new_table
        )

    def _overuse_condition(self, context: UtilityContext) -> TerminationCondition:
        from repro.negotiation.termination import OveruseAcceptable

        return OveruseAcceptable(context.max_allowed_overuse)

    # -- Customer Agent side ---------------------------------------------------------

    def respond(
        self,
        announcement: Announcement,
        customer: CustomerContext,
        previous_bid: Optional[Bid] = None,
    ) -> CutdownBid:
        if not isinstance(announcement, RewardTableAnnouncement):
            raise TypeError("reward-tables method needs a RewardTableAnnouncement")
        previous_cutdown = (
            previous_bid.cutdown if isinstance(previous_bid, CutdownBid) else None
        )
        cutdown = self.bidding_policy.choose_cutdown(
            announcement.table, customer.requirements, previous_cutdown
        )
        return CutdownBid(
            customer=customer.customer,
            round_number=announcement.round_number,
            cutdown=cutdown,
        )

    # -- bookkeeping -------------------------------------------------------------------

    def committed_cutdowns(
        self, context: UtilityContext, bids: Mapping[str, Bid]
    ) -> dict[str, float]:
        cutdowns: dict[str, float] = {}
        for customer, bid in bids.items():
            if isinstance(bid, CutdownBid):
                cutdowns[customer] = bid.cutdown
            else:
                cutdowns[customer] = 0.0
        return cutdowns

    def rewards_due(
        self, context: UtilityContext, announcement: Announcement, bids: Mapping[str, Bid]
    ) -> dict[str, float]:
        if not isinstance(announcement, RewardTableAnnouncement):
            raise TypeError("reward-tables method needs a RewardTableAnnouncement")
        rewards: dict[str, float] = {}
        for customer, bid in bids.items():
            if isinstance(bid, CutdownBid) and bid.cutdown > 0:
                try:
                    rewards[customer] = announcement.table.reward_for(bid.cutdown)
                except KeyError:
                    rewards[customer] = 0.0
            else:
                rewards[customer] = 0.0
        return rewards

    # -- array-native rounds -----------------------------------------------------

    def supports_array_rounds(self) -> bool:
        """Array rounds need the stock policies whose kernels fill the state.

        Exact-type checks, mirroring the engine façade's fast-path routing:
        a subclass or a custom acceptance/bidding policy may redefine the
        per-bid semantics the array contract hard-codes, so anything but the
        stock combination falls back to object rounds.
        """
        return (
            type(self) is RewardTablesMethod
            and type(self.acceptance_policy) is AcceptAllBids
            and type(self.bidding_policy)
            in (HighestAcceptableCutdownBidding, ExpectedGainBidding)
        )

    def evaluate_round_arrays(
        self,
        context: UtilityContext,
        announcement: Announcement,
        population: "VectorizedPopulation",
        bid_state: np.ndarray,
        undelivered: Optional[np.ndarray],
        round_number: int,
    ) -> ArrayRoundEvaluation:
        """Array sibling of :meth:`evaluate_round` over the cut-down state.

        ``bid_state`` is the session's per-customer cut-down array (what the
        round's ``CutdownBid`` objects would carry); an undelivered row acts
        as an absent bid, i.e. a zero cut-down, exactly like the dict path's
        ``cutdowns.get(customer, 0.0)``.  Acceptance is the stock
        ``AcceptAllBids`` rule — every delivered positive cut-down.
        """
        cutdowns = self.committed_cutdowns_array(
            context, population, bid_state, undelivered
        )
        overuse = predicted_overuse_array(
            population.predicted_uses,
            population.allowed_uses,
            cutdowns,
            context.normal_use,
        )
        ratio = relative_overuse(overuse, context.normal_use)
        status = NegotiationStatus(
            round_number=round_number,
            predicted_overuse=overuse,
            normal_use=context.normal_use,
            previous_table=None,
            current_table=None,
        )
        reason = self._overuse_condition(context).check(status)
        return ArrayRoundEvaluation(
            predicted_overuse=overuse,
            relative_overuse=ratio,
            termination=reason,
            accepted_mask=cutdowns > 0.0,
        )

    def committed_cutdowns_array(
        self,
        context: UtilityContext,
        population: "VectorizedPopulation",
        bid_state: np.ndarray,
        undelivered: Optional[np.ndarray],
    ) -> np.ndarray:
        if undelivered is None:
            return bid_state
        return np.where(undelivered, 0.0, bid_state)

    def rewards_due_array(
        self,
        context: UtilityContext,
        announcement: Announcement,
        population: "VectorizedPopulation",
        bid_state: np.ndarray,
        undelivered: Optional[np.ndarray],
    ) -> np.ndarray:
        if not isinstance(announcement, RewardTableAnnouncement):
            raise TypeError("reward-tables method needs a RewardTableAnnouncement")
        rewards = population.table_rewards(announcement.table, bid_state)
        if undelivered is None:
            return rewards
        return np.where(undelivered, 0.0, rewards)
