"""The offer method (Section 3.2.1): one-shot take-it-or-leave-it deal.

The Utility Agent announces a single offer: customers who keep their
consumption within ``x_max`` of their allowed amount during the peak interval
pay the lower price for that electricity (and the higher price for any
excess); customers who decline simply pay the normal price.  Only one round
of negotiation takes place, so the method is fast but gives customers "almost
no influence on the negotiation process".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional

import numpy as np

from repro.grid.pricing import Tariff
from repro.negotiation.formulas import (
    predicted_overuse,
    predicted_overuse_array,
    relative_overuse,
)
from repro.negotiation.messages import Announcement, Bid, OfferAnnouncement, OfferResponse
from repro.negotiation.methods.base import (
    ArrayRoundEvaluation,
    CustomerContext,
    NegotiationMethod,
    RoundEvaluation,
    UtilityContext,
)
from repro.negotiation.termination import TerminationReason

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.vectorized import VectorizedPopulation


class OfferMethod(NegotiationMethod):
    """One-shot offer: lower price within the allowance, higher price above it.

    Parameters
    ----------
    x_max:
        Fraction of the allowed amount customers may use at the lower price
        ("This ``x_max`` is the same for all consumers", as Swedish law
        requires equal treatment).
    tariff:
        The lower / normal / higher price levels, known to all customers.
    peak_hours:
        Duration of the peak interval in hours, used to convert average-power
        predictions into billable energy.
    """

    name = "offer"

    def __init__(
        self,
        x_max: float = 0.8,
        tariff: Optional[Tariff] = None,
        peak_hours: float = 3.0,
    ) -> None:
        if not 0.0 < x_max <= 1.0:
            raise ValueError(f"x_max must be in (0, 1], got {x_max}")
        if peak_hours <= 0:
            raise ValueError("peak duration must be positive")
        self.x_max = float(x_max)
        self.tariff = tariff if tariff is not None else Tariff.standard()
        self.peak_hours = float(peak_hours)

    # -- Utility Agent side ----------------------------------------------------

    def initial_announcement(self, context: UtilityContext) -> OfferAnnouncement:
        return OfferAnnouncement(
            round_number=0,
            interval=context.interval,
            x_max=self.x_max,
            tariff=self.tariff,
        )

    def evaluate_round(
        self,
        context: UtilityContext,
        announcement: Announcement,
        bids: Mapping[str, Bid],
        round_number: int,
    ) -> RoundEvaluation:
        cutdowns = self.committed_cutdowns(context, bids)
        # Treat acceptance as a commitment to stay within x_max of the
        # allowed use; the implied cut-down relative to the allowance is
        # (1 - x_max), which predicted_use_with_cutdown converts per customer.
        overuse = predicted_overuse(
            context.predicted_uses, context.allowed_uses, cutdowns, context.normal_use
        )
        ratio = relative_overuse(overuse, context.normal_use)
        accepted = {
            customer: isinstance(bid, OfferResponse) and bid.accept
            for customer, bid in bids.items()
        }
        # The offer method always terminates after its single round.
        reason = (
            TerminationReason.OVERUSE_ACCEPTABLE
            if overuse <= context.max_allowed_overuse
            else TerminationReason.AGREEMENT
        )
        return RoundEvaluation(
            predicted_overuse=overuse,
            relative_overuse=ratio,
            termination=reason,
            accepted_customers=accepted,
        )

    def next_announcement(
        self,
        context: UtilityContext,
        previous: Announcement,
        evaluation: RoundEvaluation,
        round_number: int,
    ) -> Optional[Announcement]:
        # "only one step is made in the negotiation and then the negotiation ends."
        return None

    # -- Customer Agent side -----------------------------------------------------

    def respond(
        self,
        announcement: Announcement,
        customer: CustomerContext,
        previous_bid: Optional[Bid] = None,
    ) -> OfferResponse:
        if not isinstance(announcement, OfferAnnouncement):
            raise TypeError("offer method needs an OfferAnnouncement")
        accept = self._deal_is_worthwhile(announcement, customer)
        return OfferResponse(
            customer=customer.customer,
            round_number=announcement.round_number,
            accept=accept,
        )

    def _deal_is_worthwhile(
        self, announcement: OfferAnnouncement, customer: CustomerContext
    ) -> bool:
        """Whether accepting (and complying with) the offer beats declining.

        The customer compares its peak-interval bill at the normal price with
        the bill under the deal assuming it cuts down to the allowance, and
        weighs the price saving against the monetised discomfort of that
        cut-down (its requirement table).  Customers that cannot physically
        reach the allowance decline.
        """
        allowance = announcement.allowance_for(customer.allowed_use)
        predicted_energy = customer.predicted_use * self.peak_hours
        allowance_energy = allowance * self.peak_hours
        tariff = announcement.tariff
        if customer.predicted_use <= allowance:
            # Already within the allowance: the lower price is a pure gain.
            return True
        required_cutdown = 1.0 - allowance / customer.predicted_use
        if required_cutdown > customer.requirements.max_feasible_cutdown:
            return False
        discomfort = customer.requirements.interpolated_requirement(required_cutdown)
        bill_normal = predicted_energy * tariff.normal_price
        bill_deal = allowance_energy * tariff.lower_price
        saving = bill_normal - bill_deal
        return saving >= discomfort

    # -- bookkeeping -----------------------------------------------------------------

    def committed_cutdowns(
        self, context: UtilityContext, bids: Mapping[str, Bid]
    ) -> dict[str, float]:
        cutdowns: dict[str, float] = {}
        for customer, bid in bids.items():
            if isinstance(bid, OfferResponse) and bid.accept:
                cutdowns[customer] = 1.0 - self.x_max
            else:
                cutdowns[customer] = 0.0
        return cutdowns

    def rewards_due(
        self, context: UtilityContext, announcement: Announcement, bids: Mapping[str, Bid]
    ) -> dict[str, float]:
        """The price advantage granted to accepting customers.

        The "reward" of the offer method is implicit in the tariff: the
        difference between the normal and the lower price on the allowance
        actually consumed.
        """
        if not isinstance(announcement, OfferAnnouncement):
            raise TypeError("offer method needs an OfferAnnouncement")
        rewards: dict[str, float] = {}
        for customer, bid in bids.items():
            if isinstance(bid, OfferResponse) and bid.accept:
                allowance = announcement.allowance_for(context.allowed_uses.get(customer, 0.0))
                consumed = min(context.predicted_uses.get(customer, 0.0), allowance)
                rewards[customer] = (
                    consumed * self.peak_hours * announcement.tariff.discount
                )
            else:
                rewards[customer] = 0.0
        return rewards

    # -- array-native rounds -----------------------------------------------------

    def supports_array_rounds(self) -> bool:
        """Exact-type check: a subclass may redefine the per-bid semantics."""
        return type(self) is OfferMethod

    def _delivered_acceptances(
        self, bid_state: np.ndarray, undelivered: Optional[np.ndarray]
    ) -> np.ndarray:
        """Acceptance booleans with undelivered responses counting as absent."""
        if undelivered is None:
            return bid_state
        return bid_state & ~undelivered

    def evaluate_round_arrays(
        self,
        context: UtilityContext,
        announcement: Announcement,
        population: "VectorizedPopulation",
        bid_state: np.ndarray,
        undelivered: Optional[np.ndarray],
        round_number: int,
    ) -> ArrayRoundEvaluation:
        """Array sibling of :meth:`evaluate_round` over the acceptance booleans.

        ``bid_state`` holds each customer's acceptance decision (what the
        round's ``OfferResponse`` objects would carry); an undelivered row is
        an absent response, i.e. a decline.
        """
        accepted = self._delivered_acceptances(bid_state, undelivered)
        cutdowns = np.where(accepted, 1.0 - self.x_max, 0.0)
        overuse = predicted_overuse_array(
            population.predicted_uses,
            population.allowed_uses,
            cutdowns,
            context.normal_use,
        )
        ratio = relative_overuse(overuse, context.normal_use)
        reason = (
            TerminationReason.OVERUSE_ACCEPTABLE
            if overuse <= context.max_allowed_overuse
            else TerminationReason.AGREEMENT
        )
        return ArrayRoundEvaluation(
            predicted_overuse=overuse,
            relative_overuse=ratio,
            termination=reason,
            accepted_mask=accepted,
        )

    def committed_cutdowns_array(
        self,
        context: UtilityContext,
        population: "VectorizedPopulation",
        bid_state: np.ndarray,
        undelivered: Optional[np.ndarray],
    ) -> np.ndarray:
        accepted = self._delivered_acceptances(bid_state, undelivered)
        return np.where(accepted, 1.0 - self.x_max, 0.0)

    def rewards_due_array(
        self,
        context: UtilityContext,
        announcement: Announcement,
        population: "VectorizedPopulation",
        bid_state: np.ndarray,
        undelivered: Optional[np.ndarray],
    ) -> np.ndarray:
        if not isinstance(announcement, OfferAnnouncement):
            raise TypeError("offer method needs an OfferAnnouncement")
        accepted = self._delivered_acceptances(bid_state, undelivered)
        allowances = announcement.x_max * population.allowed_uses
        consumed = np.minimum(population.predicted_uses, allowances)
        return np.where(
            accepted, consumed * self.peak_hours * announcement.tariff.discount, 0.0
        )
