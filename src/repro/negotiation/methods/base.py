"""Common interface of the three announcement methods.

A :class:`NegotiationMethod` is a *mechanism*: it defines what the Utility
Agent announces, how Customer Agents may respond, how responses are folded
into a new prediction and when the process stops.  The agents in
:mod:`repro.agents` delegate their cooperation-management decisions to a
method object, so switching between the offer, request-for-bids and
reward-tables mechanisms is a one-line configuration change — which is
exactly the flexibility Section 3.2.4 argues for ("allow agents to use all
three methods ... as different strategies").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

import numpy as np

from repro.negotiation.messages import Announcement, Bid
from repro.negotiation.reward_table import CutdownRewardRequirements
from repro.negotiation.termination import TerminationReason
from repro.runtime.clock import TimeInterval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.vectorized import VectorizedPopulation


@dataclass
class UtilityContext:
    """Everything the Utility Agent knows when driving a negotiation.

    Attributes
    ----------
    normal_use:
        Capacity servable at normal production cost during the peak interval
        (the paper's ``normal_use``).
    predicted_uses:
        Per-customer predicted consumption in the peak interval.
    allowed_uses:
        Per-customer allowed (baseline) consumption in the peak interval.
    interval:
        The peak interval being negotiated about.
    max_allowed_overuse:
        The largest predicted overuse the Utility Agent tolerates without
        further negotiation (absolute, same unit as ``normal_use``).
    """

    normal_use: float
    predicted_uses: dict[str, float]
    allowed_uses: dict[str, float]
    interval: Optional[TimeInterval] = None
    max_allowed_overuse: float = 0.0

    def __post_init__(self) -> None:
        if self.normal_use <= 0:
            raise ValueError("normal use must be positive")
        if set(self.predicted_uses) != set(self.allowed_uses):
            raise ValueError("predicted and allowed uses must cover the same customers")
        if self.max_allowed_overuse < 0:
            raise ValueError("max allowed overuse must be non-negative")

    @property
    def customers(self) -> list[str]:
        return list(self.predicted_uses)

    @property
    def total_predicted_use(self) -> float:
        return sum(self.predicted_uses.values())

    @property
    def initial_overuse(self) -> float:
        return self.total_predicted_use - self.normal_use

    @property
    def initial_relative_overuse(self) -> float:
        return self.initial_overuse / self.normal_use


@dataclass
class CustomerContext:
    """Everything one Customer Agent knows when responding to announcements."""

    customer: str
    predicted_use: float
    allowed_use: float
    requirements: CutdownRewardRequirements

    def __post_init__(self) -> None:
        if self.predicted_use < 0:
            raise ValueError("predicted use must be non-negative")
        if self.allowed_use < 0:
            raise ValueError("allowed use must be non-negative")


@dataclass
class RoundEvaluation:
    """The Utility Agent's evaluation of the responses of one round."""

    predicted_overuse: float
    relative_overuse: float
    termination: Optional[TerminationReason] = None
    accepted_customers: dict[str, bool] = field(default_factory=dict)

    @property
    def satisfied(self) -> bool:
        return self.termination is not None


@dataclass
class ArrayRoundEvaluation(RoundEvaluation):
    """A round evaluation whose acceptance decision is a boolean mask.

    The ``rounds="array"`` fast path never builds the per-customer
    ``accepted_customers`` dict; acceptance lives in ``accepted_mask``
    (population order).  The scalar fields carry exactly the doubles the
    dict-based :meth:`NegotiationMethod.evaluate_round` would compute, so
    :meth:`NegotiationMethod.next_announcement` consumes either evaluation
    interchangeably.
    """

    accepted_mask: Optional[np.ndarray] = None


class NegotiationMethod(abc.ABC):
    """Interface shared by the offer, request-for-bids and reward-table methods."""

    #: Human-readable method name used in traces and reports.
    name: str = "abstract"

    @abc.abstractmethod
    def initial_announcement(self, context: UtilityContext) -> Announcement:
        """The Utility Agent's opening announcement."""

    @abc.abstractmethod
    def respond(
        self,
        announcement: Announcement,
        customer: CustomerContext,
        previous_bid: Optional[Bid] = None,
    ) -> Bid:
        """A Customer Agent's response to an announcement."""

    @abc.abstractmethod
    def evaluate_round(
        self,
        context: UtilityContext,
        announcement: Announcement,
        bids: Mapping[str, Bid],
        round_number: int,
    ) -> RoundEvaluation:
        """Fold the round's bids into a new prediction and check termination."""

    @abc.abstractmethod
    def next_announcement(
        self,
        context: UtilityContext,
        previous: Announcement,
        evaluation: RoundEvaluation,
        round_number: int,
    ) -> Optional[Announcement]:
        """The next announcement, or ``None`` when no further round is possible.

        Implementations must respect the monotonic concession protocol: the
        returned announcement must be at least as attractive to customers as
        ``previous``.
        """

    @abc.abstractmethod
    def committed_cutdowns(
        self, context: UtilityContext, bids: Mapping[str, Bid]
    ) -> dict[str, float]:
        """Per-customer cut-down fractions implied by the given bids."""

    @abc.abstractmethod
    def rewards_due(
        self, context: UtilityContext, announcement: Announcement, bids: Mapping[str, Bid]
    ) -> dict[str, float]:
        """Per-customer reward (or price advantage) owed if these bids are awarded."""

    # -- array-native round contract (the ``rounds="array"`` fast path) ----------
    #
    # In array rounds a round's bids exist only as the numpy state array the
    # session's kernels already compute — cut-down fractions (reward tables),
    # needed uses (request for bids) or acceptance booleans (offer) in
    # population order.  ``undelivered`` (``None`` when fault-free) marks
    # rows whose bid the Utility Agent never received; implementations must
    # treat those rows exactly as the dict-based methods treat an absent
    # ``bids`` entry.  Every scalar the array contract produces must be
    # bit-identical to its dict sibling at equal inputs — the object path is
    # the equivalence oracle.

    def supports_array_rounds(self) -> bool:
        """Whether this method instance can evaluate rounds array-natively.

        ``False`` (the default) makes the session fall back to object
        rounds; the stock methods override with an exact-type check so a
        subclass with redefined semantics never silently rides the arrays.
        """
        return False

    def evaluate_round_arrays(
        self,
        context: UtilityContext,
        announcement: Announcement,
        population: "VectorizedPopulation",
        bid_state: np.ndarray,
        undelivered: Optional[np.ndarray],
        round_number: int,
    ) -> ArrayRoundEvaluation:
        """Array sibling of :meth:`evaluate_round` over the bid-state array."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement array-native rounds"
        )

    def committed_cutdowns_array(
        self,
        context: UtilityContext,
        population: "VectorizedPopulation",
        bid_state: np.ndarray,
        undelivered: Optional[np.ndarray],
    ) -> np.ndarray:
        """Array sibling of :meth:`committed_cutdowns` (population order)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement array-native rounds"
        )

    def rewards_due_array(
        self,
        context: UtilityContext,
        announcement: Announcement,
        population: "VectorizedPopulation",
        bid_state: np.ndarray,
        undelivered: Optional[np.ndarray],
    ) -> np.ndarray:
        """Array sibling of :meth:`rewards_due` (population order)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement array-native rounds"
        )
