"""The three announcement methods of Section 3.2.

Each method bundles the Utility-Agent side (how to construct and escalate
announcements, how to evaluate responses) and the Customer-Agent side (how to
respond to an announcement given the customer's private preferences) of one
negotiation mechanism:

* :class:`~repro.negotiation.methods.offer.OfferMethod` — one-shot
  take-it-or-leave-it offer (Section 3.2.1),
* :class:`~repro.negotiation.methods.request_for_bids.RequestForBidsMethod`
  — iterative request for quantity bids (Section 3.2.2),
* :class:`~repro.negotiation.methods.reward_tables.RewardTablesMethod` — the
  prototype's announce-reward-tables method (Sections 3.2.3 and 6).
"""

from repro.negotiation.methods.base import CustomerContext, NegotiationMethod, UtilityContext
from repro.negotiation.methods.offer import OfferMethod
from repro.negotiation.methods.request_for_bids import RequestForBidsMethod
from repro.negotiation.methods.reward_tables import RewardTablesMethod

__all__ = [
    "CustomerContext",
    "NegotiationMethod",
    "OfferMethod",
    "RequestForBidsMethod",
    "RewardTablesMethod",
    "UtilityContext",
]
