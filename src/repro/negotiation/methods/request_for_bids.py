"""The request-for-bids method (Section 3.2.2).

The Utility Agent requests bids; each Customer Agent states how much
electricity it really needs (``y_min``) when a reward — here the lower tariff
on the bid amount — is promised.  If the resulting predicted balance is not
satisfactory, a new request is issued and customers either repeat their bid
("stand still") or improve it slightly ("one step forward").  Customers have
much more influence than under the offer method, at the cost of a longer,
multi-round negotiation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional

import numpy as np

from repro.grid.pricing import Tariff
from repro.negotiation.formulas import relative_overuse
from repro.negotiation.messages import (
    Announcement,
    Bid,
    QuantityBid,
    RequestForBidsAnnouncement,
)
from repro.negotiation.methods.base import (
    ArrayRoundEvaluation,
    CustomerContext,
    NegotiationMethod,
    RoundEvaluation,
    UtilityContext,
)
from repro.negotiation.termination import TerminationReason

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.vectorized import VectorizedPopulation


class RequestForBidsMethod(NegotiationMethod):
    """Iterative quantity bidding.

    Parameters
    ----------
    tariff:
        The lower / normal / higher price levels.
    step_fraction:
        The "one step forward" size: the fraction of its predicted use a
        customer shaves off its bid when it decides to improve.
    peak_hours:
        Duration of the peak interval in hours (converts power to energy for
        the customer's financial comparison).
    max_rounds:
        Round budget; the method also stops as soon as a round brings no
        improvement (every customer stood still).
    """

    name = "request_for_bids"

    def __init__(
        self,
        tariff: Optional[Tariff] = None,
        step_fraction: float = 0.1,
        peak_hours: float = 3.0,
        max_rounds: int = 20,
    ) -> None:
        if not 0.0 < step_fraction <= 1.0:
            raise ValueError("step fraction must be in (0, 1]")
        if peak_hours <= 0:
            raise ValueError("peak duration must be positive")
        if max_rounds <= 0:
            raise ValueError("max rounds must be positive")
        self.tariff = tariff if tariff is not None else Tariff.standard()
        self.step_fraction = float(step_fraction)
        self.peak_hours = float(peak_hours)
        self.max_rounds = int(max_rounds)
        self._previous_total_need: Optional[float] = None

    # -- Utility Agent side -------------------------------------------------------

    def initial_announcement(self, context: UtilityContext) -> RequestForBidsAnnouncement:
        self._previous_total_need = None
        return RequestForBidsAnnouncement(
            round_number=0,
            interval=context.interval,
            tariff=self.tariff,
            step_size=self.step_fraction,
        )

    def evaluate_round(
        self,
        context: UtilityContext,
        announcement: Announcement,
        bids: Mapping[str, Bid],
        round_number: int,
    ) -> RoundEvaluation:
        needs = self._needed_uses(context, bids)
        total_need = sum(needs.values())
        overuse = total_need - context.normal_use
        ratio = relative_overuse(overuse, context.normal_use)
        reason: Optional[TerminationReason] = None
        if overuse <= context.max_allowed_overuse:
            reason = TerminationReason.OVERUSE_ACCEPTABLE
        elif round_number + 1 >= self.max_rounds:
            reason = TerminationReason.MAX_ROUNDS
        elif (
            self._previous_total_need is not None
            and total_need >= self._previous_total_need - 1e-9
        ):
            # Every customer stood still: no further improvement can come.
            reason = TerminationReason.REWARD_SATURATED
        self._previous_total_need = total_need
        accepted = {
            customer: isinstance(bid, QuantityBid)
            and bid.needed_use < context.predicted_uses.get(customer, 0.0)
            for customer, bid in bids.items()
        }
        return RoundEvaluation(
            predicted_overuse=overuse,
            relative_overuse=ratio,
            termination=reason,
            accepted_customers=accepted,
        )

    def next_announcement(
        self,
        context: UtilityContext,
        previous: Announcement,
        evaluation: RoundEvaluation,
        round_number: int,
    ) -> Optional[RequestForBidsAnnouncement]:
        if evaluation.termination is not None:
            return None
        return RequestForBidsAnnouncement(
            round_number=round_number + 1,
            interval=previous.interval,
            tariff=self.tariff,
            step_size=self.step_fraction,
        )

    # -- Customer Agent side --------------------------------------------------------

    def respond(
        self,
        announcement: Announcement,
        customer: CustomerContext,
        previous_bid: Optional[Bid] = None,
    ) -> QuantityBid:
        if not isinstance(announcement, RequestForBidsAnnouncement):
            raise TypeError("request-for-bids method needs a RequestForBidsAnnouncement")
        if isinstance(previous_bid, QuantityBid):
            current_need = previous_bid.needed_use
        else:
            current_need = customer.predicted_use
        candidate = max(0.0, current_need - self.step_fraction * customer.predicted_use)
        if self._step_is_worthwhile(announcement, customer, current_need, candidate):
            needed = candidate
        else:
            needed = current_need  # stand still
        return QuantityBid(
            customer=customer.customer,
            round_number=announcement.round_number,
            needed_use=needed,
        )

    def _step_is_worthwhile(
        self,
        announcement: RequestForBidsAnnouncement,
        customer: CustomerContext,
        current_need: float,
        candidate_need: float,
    ) -> bool:
        """Whether moving one step forward beats standing still.

        The step lowers the customer's peak consumption to ``candidate_need``.
        The financial gain is the saved energy cost (the customer buys less
        peak energy, at the lower price granted on awarded bids); the cost is
        the discomfort of the implied cut-down, read from the requirement
        table.  Infeasible cut-downs are never worthwhile.
        """
        if customer.predicted_use <= 0 or candidate_need >= current_need:
            return False
        implied_cutdown = 1.0 - candidate_need / customer.predicted_use
        if implied_cutdown > customer.requirements.max_feasible_cutdown:
            return False
        current_cutdown = max(0.0, 1.0 - current_need / customer.predicted_use)
        discomfort_delta = customer.requirements.interpolated_requirement(
            implied_cutdown
        ) - customer.requirements.interpolated_requirement(current_cutdown)
        saved_energy = (current_need - candidate_need) * self.peak_hours
        # A customer that bids and is awarded pays the lower price for what it
        # needs; the energy it no longer consumes was worth the normal price.
        financial_gain = saved_energy * announcement.tariff.normal_price
        return financial_gain >= discomfort_delta

    # -- bookkeeping -------------------------------------------------------------------

    def _needed_uses(
        self, context: UtilityContext, bids: Mapping[str, Bid]
    ) -> dict[str, float]:
        needs: dict[str, float] = {}
        for customer, predicted in context.predicted_uses.items():
            bid = bids.get(customer)
            if isinstance(bid, QuantityBid):
                needs[customer] = min(predicted, bid.needed_use)
            else:
                needs[customer] = predicted
        return needs

    def committed_cutdowns(
        self, context: UtilityContext, bids: Mapping[str, Bid]
    ) -> dict[str, float]:
        """Per-customer cut-down fractions implied by the quantity bids."""
        fractions: dict[str, float] = {}
        for customer, bid in bids.items():
            predicted = context.predicted_uses.get(customer, 0.0)
            if isinstance(bid, QuantityBid) and predicted > 0:
                fractions[customer] = max(0.0, 1.0 - bid.needed_use / predicted)
            else:
                fractions[customer] = 0.0
        return fractions

    def rewards_due(
        self, context: UtilityContext, announcement: Announcement, bids: Mapping[str, Bid]
    ) -> dict[str, float]:
        """Price advantage on the bid amount for customers whose bids are awarded."""
        if not isinstance(announcement, RequestForBidsAnnouncement):
            raise TypeError("request-for-bids method needs a RequestForBidsAnnouncement")
        rewards: dict[str, float] = {}
        for customer, bid in bids.items():
            if isinstance(bid, QuantityBid):
                billable = min(
                    bid.needed_use, context.predicted_uses.get(customer, bid.needed_use)
                )
                rewards[customer] = (
                    billable * self.peak_hours * announcement.tariff.discount
                )
            else:
                rewards[customer] = 0.0
        return rewards

    # -- array-native rounds -----------------------------------------------------

    def supports_array_rounds(self) -> bool:
        """Exact-type check: a subclass may redefine the per-bid semantics."""
        return type(self) is RequestForBidsMethod

    def evaluate_round_arrays(
        self,
        context: UtilityContext,
        announcement: Announcement,
        population: "VectorizedPopulation",
        bid_state: np.ndarray,
        undelivered: Optional[np.ndarray],
        round_number: int,
    ) -> ArrayRoundEvaluation:
        """Array sibling of :meth:`evaluate_round` over the needed-use state.

        ``bid_state`` holds each customer's bid quantity (what the round's
        ``QuantityBid`` objects would carry); an undelivered row is an absent
        bid, i.e. the customer's full predicted use.  The total-need
        reduction runs through ``np.cumsum`` (strictly sequential) so it is
        bit-identical to the dict path's ``sum()``, and the stand-still check
        reads and updates the same ``_previous_total_need`` the dict path
        maintains.
        """
        predicted = population.predicted_uses
        capped = np.minimum(predicted, bid_state)
        if undelivered is not None:
            capped = np.where(undelivered, predicted, capped)
        total_need = float(np.cumsum(capped)[-1]) if capped.size else 0.0
        overuse = total_need - context.normal_use
        ratio = relative_overuse(overuse, context.normal_use)
        reason: Optional[TerminationReason] = None
        if overuse <= context.max_allowed_overuse:
            reason = TerminationReason.OVERUSE_ACCEPTABLE
        elif round_number + 1 >= self.max_rounds:
            reason = TerminationReason.MAX_ROUNDS
        elif (
            self._previous_total_need is not None
            and total_need >= self._previous_total_need - 1e-9
        ):
            reason = TerminationReason.REWARD_SATURATED
        self._previous_total_need = total_need
        accepted = bid_state < predicted
        if undelivered is not None:
            accepted = accepted & ~undelivered
        return ArrayRoundEvaluation(
            predicted_overuse=overuse,
            relative_overuse=ratio,
            termination=reason,
            accepted_mask=accepted,
        )

    def committed_cutdowns_array(
        self,
        context: UtilityContext,
        population: "VectorizedPopulation",
        bid_state: np.ndarray,
        undelivered: Optional[np.ndarray],
    ) -> np.ndarray:
        predicted = population.predicted_uses
        with np.errstate(divide="ignore", invalid="ignore"):
            safe_predicted = np.where(predicted > 0.0, predicted, 1.0)
            fractions = np.maximum(0.0, 1.0 - bid_state / safe_predicted)
        delivered_with_use = predicted > 0.0
        if undelivered is not None:
            delivered_with_use = delivered_with_use & ~undelivered
        return np.where(delivered_with_use, fractions, 0.0)

    def rewards_due_array(
        self,
        context: UtilityContext,
        announcement: Announcement,
        population: "VectorizedPopulation",
        bid_state: np.ndarray,
        undelivered: Optional[np.ndarray],
    ) -> np.ndarray:
        if not isinstance(announcement, RequestForBidsAnnouncement):
            raise TypeError("request-for-bids method needs a RequestForBidsAnnouncement")
        billable = np.minimum(bid_state, population.predicted_uses)
        rewards = billable * self.peak_hours * announcement.tariff.discount
        if undelivered is None:
            return rewards
        return np.where(undelivered, 0.0, rewards)
