"""Reward tables and customer cut-down-reward requirement tables.

A :class:`RewardTable` is what the Utility Agent announces in the
announce-reward-tables method: "possible cut-down values, a reward value
assigned to each cut-down value, together with a time interval" (Section
3.2.3).

A :class:`CutdownRewardRequirements` table is the Customer Agent's private
knowledge of its own preferences: "the percentage with which a Customer Agent
is willing to decrease (cut-down) its electricity usage, given a specific
level of financial compensation" (Section 6.2) — e.g. the Figure 8/9 customer
requires a reward of at least 10 for a cut-down of 0.3 and at least 21 for a
cut-down of 0.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.runtime.clock import TimeInterval

#: Default grid of cut-down fractions used by the prototype (Figure 6:
#: "for each cut-down fraction (0, 0.1, 0.2, ...)").
DEFAULT_CUTDOWN_GRID: tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(11))


def _validate_cutdown(cutdown: float) -> float:
    if not 0.0 <= cutdown <= 1.0:
        raise ValueError(f"cut-down fraction must be in [0, 1], got {cutdown}")
    return round(float(cutdown), 6)


@dataclass(frozen=True)
class RewardTable:
    """Rewards offered by the Utility Agent per cut-down fraction.

    Attributes
    ----------
    entries:
        Mapping cut-down fraction -> reward (currency units for implementing
        that cut-down during the interval).
    interval:
        The time interval the cut-downs refer to (may be ``None`` in unit
        tests and formula-level computations).
    """

    entries: Mapping[float, float]
    interval: Optional[TimeInterval] = None

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("a reward table needs at least one entry")
        normalised = {}
        for cutdown, reward in self.entries.items():
            cutdown = _validate_cutdown(cutdown)
            if reward < 0:
                raise ValueError(f"reward for cut-down {cutdown} must be non-negative")
            normalised[cutdown] = float(reward)
        object.__setattr__(self, "entries", normalised)

    # -- access ----------------------------------------------------------------

    def cutdowns(self) -> list[float]:
        """Cut-down fractions offered, ascending."""
        return sorted(self.entries)

    def reward_for(self, cutdown: float) -> float:
        """Reward offered for a specific cut-down fraction.

        Raises
        ------
        KeyError
            If the cut-down value is not in the table (customers may only
            choose "from some discrete values").
        """
        key = _validate_cutdown(cutdown)
        if key not in self.entries:
            raise KeyError(f"cut-down {cutdown} not offered by this reward table")
        return self.entries[key]

    def max_reward_offered(self) -> float:
        return max(self.entries.values())

    def __len__(self) -> int:
        return len(self.entries)

    # -- comparisons -------------------------------------------------------------

    def at_least_as_generous_as(self, other: "RewardTable") -> bool:
        """Whether every reward in this table is >= the other's (same grid).

        This is the monotonic-concession requirement on successive
        announcements by the Utility Agent.
        """
        if set(self.entries) != set(other.entries):
            return False
        return all(self.entries[c] >= other.entries[c] for c in self.entries)

    def strictly_more_generous_than(self, other: "RewardTable") -> bool:
        """At least as generous, and strictly better for some cut-down."""
        return self.at_least_as_generous_as(other) and any(
            self.entries[c] > other.entries[c] for c in self.entries
        )

    def is_monotone_in_cutdown(self) -> bool:
        """Whether larger cut-downs are rewarded at least as much as smaller ones."""
        ordered = self.cutdowns()
        rewards = [self.entries[c] for c in ordered]
        return all(b >= a for a, b in zip(rewards, rewards[1:]))

    # -- construction helpers -------------------------------------------------------

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[tuple[float, float]],
        interval: Optional[TimeInterval] = None,
    ) -> "RewardTable":
        return cls(dict(pairs), interval)

    @classmethod
    def linear(
        cls,
        reward_at_full_cutdown: float,
        grid: Iterable[float] = DEFAULT_CUTDOWN_GRID,
        interval: Optional[TimeInterval] = None,
    ) -> "RewardTable":
        """A table whose reward is proportional to the cut-down fraction."""
        if reward_at_full_cutdown < 0:
            raise ValueError("reward at full cut-down must be non-negative")
        return cls(
            {c: reward_at_full_cutdown * _validate_cutdown(c) for c in grid}, interval
        )

    @classmethod
    def convex(
        cls,
        reward_at_full_cutdown: float,
        exponent: float = 2.0,
        grid: Iterable[float] = DEFAULT_CUTDOWN_GRID,
        interval: Optional[TimeInterval] = None,
    ) -> "RewardTable":
        """A table whose reward grows super-linearly with the cut-down.

        Convexity reflects that deep cut-downs hurt customers more than
        proportionally, so they must be rewarded more than proportionally.
        """
        if reward_at_full_cutdown < 0:
            raise ValueError("reward at full cut-down must be non-negative")
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        return cls(
            {
                c: reward_at_full_cutdown * (_validate_cutdown(c) ** exponent)
                for c in grid
            },
            interval,
        )

    def with_interval(self, interval: TimeInterval) -> "RewardTable":
        return RewardTable(dict(self.entries), interval)

    def as_rows(self) -> list[dict[str, float]]:
        """Tabular rendering (used by the Figure 6/7 bench)."""
        return [
            {"cutdown": cutdown, "reward": self.entries[cutdown]}
            for cutdown in self.cutdowns()
        ]


@dataclass(frozen=True)
class CutdownRewardRequirements:
    """A customer's private requirement: minimum reward per cut-down fraction.

    A cut-down is *acceptable* under an announced reward table when the
    offered reward is at least the required reward ("Each cut-down for which
    the required reward value of the customer is lower than the reward offered
    by the Utility Agent, is an acceptable cut-down", Section 6.2; we read
    "lower" as "not higher", i.e. ties are acceptable, which also matches the
    monotonic concession framing of equally-acceptable deals).

    ``max_feasible_cutdown`` captures the physical limit reported by the
    Resource Consumer Agents: cut-downs above it are never acceptable no
    matter the reward.
    """

    requirements: Mapping[float, float]
    max_feasible_cutdown: float = 1.0

    def __post_init__(self) -> None:
        if not self.requirements:
            raise ValueError("a requirement table needs at least one entry")
        normalised = {}
        for cutdown, required in self.requirements.items():
            cutdown = _validate_cutdown(cutdown)
            if required < 0:
                raise ValueError(f"required reward for cut-down {cutdown} must be non-negative")
            normalised[cutdown] = float(required)
        object.__setattr__(self, "requirements", normalised)
        if not 0.0 <= self.max_feasible_cutdown <= 1.0:
            raise ValueError("max feasible cut-down must be in [0, 1]")

    def cutdowns(self) -> list[float]:
        return sorted(self.requirements)

    def required_reward_for(self, cutdown: float) -> float:
        key = _validate_cutdown(cutdown)
        if key not in self.requirements:
            raise KeyError(f"cut-down {cutdown} not covered by this requirement table")
        return self.requirements[key]

    def is_acceptable(self, cutdown: float, offered_reward: float) -> bool:
        """Whether a cut-down is acceptable at an offered reward."""
        key = _validate_cutdown(cutdown)
        if key > self.max_feasible_cutdown + 1e-12:
            return False
        if key == 0.0:
            return True
        required = self.requirements.get(key)
        if required is None:
            return False
        return offered_reward >= required

    def acceptable_cutdowns(self, table: RewardTable) -> list[float]:
        """All cut-downs in the announced table acceptable to this customer."""
        return [
            cutdown
            for cutdown in table.cutdowns()
            if self.is_acceptable(cutdown, table.entries[cutdown])
        ]

    def highest_acceptable_cutdown(self, table: RewardTable) -> float:
        """The customer's preferred (largest acceptable) cut-down; 0.0 if none."""
        acceptable = self.acceptable_cutdowns(table)
        return max(acceptable) if acceptable else 0.0

    def surplus(self, cutdown: float, offered_reward: float) -> float:
        """Offered reward minus required reward (the customer's gain margin)."""
        if cutdown == 0.0:
            return 0.0
        required = self.requirements.get(_validate_cutdown(cutdown))
        if required is None:
            raise KeyError(f"cut-down {cutdown} not covered by this requirement table")
        return offered_reward - required

    def is_monotone(self) -> bool:
        """Whether deeper cut-downs require at least as much reward."""
        ordered = self.cutdowns()
        required = [self.requirements[c] for c in ordered]
        return all(b >= a for a, b in zip(required, required[1:]))

    def interpolated_requirement(self, cutdown: float) -> float:
        """Required reward for an arbitrary cut-down fraction.

        Linearly interpolates between grid points; extrapolates with the last
        segment's slope beyond the grid.  Returns ``inf`` for cut-downs beyond
        the customer's physical limit.  Used by the offer and request-for-bids
        methods, whose deals are not restricted to the discrete grid.
        """
        cutdown = _validate_cutdown(cutdown)
        if cutdown > self.max_feasible_cutdown + 1e-12:
            return float("inf")
        if cutdown == 0.0:
            return 0.0
        grid = self.cutdowns()
        if cutdown in self.requirements:
            return self.requirements[cutdown]
        below = [c for c in grid if c < cutdown]
        above = [c for c in grid if c > cutdown]
        if below and above:
            low, high = max(below), min(above)
            low_value, high_value = self.requirements[low], self.requirements[high]
            fraction = (cutdown - low) / (high - low)
            return low_value + fraction * (high_value - low_value)
        if below:
            if len(below) >= 2:
                second, last = below[-2], below[-1]
                slope = (self.requirements[last] - self.requirements[second]) / (last - second)
            else:
                last = below[-1]
                slope = self.requirements[last] / last if last > 0 else 0.0
            return self.requirements[below[-1]] + slope * (cutdown - below[-1])
        first = above[0]
        return self.requirements[first] * (cutdown / first)

    @classmethod
    def paper_figure_8_customer(cls) -> "CutdownRewardRequirements":
        """The requirement table of the customer shown in Figures 8 and 9.

        The paper gives two anchor points — at least 10 for a cut-down of 0.3
        and at least 21 for 0.4 ("and so on") — and the behaviour that in the
        first round (reward table of Figure 6) the highest acceptable cut-down
        is 0.2.  The remaining values are interpolated consistently with that
        behaviour and with convex discomfort.
        """
        return cls(
            requirements={
                0.0: 0.0,
                0.1: 1.0,
                0.2: 4.0,
                0.3: 10.0,
                0.4: 21.0,
                0.5: 35.0,
                0.6: 52.0,
                0.7: 72.0,
                0.8: 95.0,
                0.9: 121.0,
                1.0: 150.0,
            },
            max_feasible_cutdown=0.8,
        )
