"""Negotiation protocols for load management.

This package implements Section 3 (the negotiation methods) and Section 6
(the prototype's formulae) of the paper:

* :mod:`repro.negotiation.formulas` — the exact Section 6 formulae:
  ``predicted_use_with_cutdown``, ``predicted_overuse``, ``overuse`` and the
  logistic reward update ``new_reward``.
* :mod:`repro.negotiation.reward_table` — reward tables announced by the
  Utility Agent and cut-down-reward requirement tables held by customers.
* :mod:`repro.negotiation.messages` — announcements, bids and awards for all
  three announcement methods.
* :mod:`repro.negotiation.protocol` — the monotonic concession protocol
  (Rosenschein & Zlotkin) as a checkable state machine.
* :mod:`repro.negotiation.termination` — termination conditions (overuse
  acceptable, reward saturation, round budget).
* :mod:`repro.negotiation.strategy` — the tunable policies: β controllers,
  bid-acceptance strategies, customer bidding policies and announcement
  construction policies.
* :mod:`repro.negotiation.methods` — the three announcement methods: offer,
  request for bids, and announce reward tables.
"""

from repro.negotiation.formulas import (
    new_reward,
    predicted_overuse,
    predicted_use_with_cutdown,
    relative_overuse,
    update_reward_table,
)
from repro.negotiation.messages import (
    Announcement,
    Award,
    Bid,
    CutdownBid,
    OfferAnnouncement,
    OfferResponse,
    QuantityBid,
    RequestForBidsAnnouncement,
    RewardTableAnnouncement,
)
from repro.negotiation.protocol import (
    MonotonicConcessionProtocol,
    NegotiationOutcome,
    NegotiationRecord,
    ProtocolViolation,
    RoundRecord,
)
from repro.negotiation.reward_table import CutdownRewardRequirements, RewardTable
from repro.negotiation.strategy import (
    AcceptAllBids,
    AdaptiveBeta,
    BetaController,
    BidAcceptancePolicy,
    ConstantBeta,
    CustomerBiddingPolicy,
    ExpectedGainBidding,
    GenerateAndSelectAnnouncements,
    HighestAcceptableCutdownBidding,
    SelectiveBidAcceptance,
    StatisticalAnnouncementOptimisation,
)
from repro.negotiation.termination import (
    CompositeTermination,
    MaxRoundsReached,
    OveruseAcceptable,
    RewardSaturated,
    TerminationCondition,
    TerminationReason,
)

__all__ = [
    "AcceptAllBids",
    "AdaptiveBeta",
    "Announcement",
    "Award",
    "BetaController",
    "Bid",
    "BidAcceptancePolicy",
    "CompositeTermination",
    "ConstantBeta",
    "CustomerBiddingPolicy",
    "CutdownBid",
    "CutdownRewardRequirements",
    "ExpectedGainBidding",
    "GenerateAndSelectAnnouncements",
    "HighestAcceptableCutdownBidding",
    "MaxRoundsReached",
    "MonotonicConcessionProtocol",
    "NegotiationOutcome",
    "NegotiationRecord",
    "OfferAnnouncement",
    "OfferResponse",
    "OveruseAcceptable",
    "ProtocolViolation",
    "QuantityBid",
    "RequestForBidsAnnouncement",
    "RewardSaturated",
    "RewardTable",
    "RewardTableAnnouncement",
    "RoundRecord",
    "SelectiveBidAcceptance",
    "StatisticalAnnouncementOptimisation",
    "TerminationCondition",
    "TerminationReason",
    "new_reward",
    "predicted_overuse",
    "predicted_use_with_cutdown",
    "relative_overuse",
    "update_reward_table",
]
