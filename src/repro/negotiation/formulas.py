"""The Section 6 formulae of the paper, implemented verbatim.

The prototype's Utility Agent predicts the balance between consumption and
production with::

    predicted_use_with_cutdown(c) =
        predicted_use(c)                    if (1 - cutdown(c)) * allowed_use(c) >= predicted_use(c)
        (1 - cutdown(c)) * allowed_use(c)   otherwise

    predicted_overuse = sum_{c in CA} predicted_use_with_cutdown(c) - normal_use

    overuse = predicted_overuse / normal_use

and escalates rewards between rounds with the logistic rule::

    new_reward = reward + beta * overuse * (1 - reward / max_reward) * reward

β determines how steeply rewards increase (constant in the prototype); the
``(1 - reward/max_reward)`` factor keeps the reward below ``max_reward``; and
the negotiation ends when the reward increment is at most 1.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.negotiation.reward_table import RewardTable


def predicted_use_with_cutdown(
    predicted_use: float, allowed_use: float, cutdown: float
) -> float:
    """Predicted use of one customer after applying its promised cut-down.

    A cut-down is relative to the customer's *allowed* (baseline) use; if the
    reduced allowance still exceeds what the customer was going to use anyway,
    the prediction is unchanged.

    Parameters
    ----------
    predicted_use:
        The customer's predicted consumption in the peak interval (kW or kWh —
        any unit, as long as it is consistent across customers).
    allowed_use:
        The customer's baseline / allowed consumption in the same unit.
    cutdown:
        The cut-down fraction the customer has committed to, in [0, 1].
    """
    if predicted_use < 0:
        raise ValueError(f"predicted use must be non-negative, got {predicted_use}")
    if allowed_use < 0:
        raise ValueError(f"allowed use must be non-negative, got {allowed_use}")
    if not 0.0 <= cutdown <= 1.0:
        raise ValueError(f"cutdown must be in [0, 1], got {cutdown}")
    reduced_allowance = (1.0 - cutdown) * allowed_use
    if reduced_allowance >= predicted_use:
        return predicted_use
    return reduced_allowance


def predicted_overuse(
    predicted_uses: Mapping[str, float],
    allowed_uses: Mapping[str, float],
    cutdowns: Mapping[str, float],
    normal_use: float,
) -> float:
    """Aggregate predicted overuse given every customer's committed cut-down.

    ``cutdowns`` may omit customers (treated as a zero cut-down).  The result
    may be negative when the committed cut-downs push predicted consumption
    below the normal capacity.

    Parameters
    ----------
    predicted_uses / allowed_uses:
        Per-customer predicted and allowed use (same keys).
    cutdowns:
        Per-customer committed cut-down fraction.
    normal_use:
        The capacity servable at normal production cost (the paper's
        ``normal_use``).
    """
    if normal_use <= 0:
        raise ValueError(f"normal use must be positive, got {normal_use}")
    missing = set(predicted_uses) - set(allowed_uses)
    if missing:
        raise ValueError(f"allowed_uses missing customers: {sorted(missing)}")
    total = 0.0
    for customer, predicted in predicted_uses.items():
        cutdown = cutdowns.get(customer, 0.0)
        total += predicted_use_with_cutdown(predicted, allowed_uses[customer], cutdown)
    return total - normal_use


def predicted_overuse_array(
    predicted_uses: np.ndarray,
    allowed_uses: np.ndarray,
    cutdowns: np.ndarray,
    normal_use: float,
) -> float:
    """Array sibling of :func:`predicted_overuse`, bit-identical to it.

    The per-customer clamp repeats :func:`predicted_use_with_cutdown`'s
    arithmetic element-wise in the same operation order, and the reduction
    uses ``np.cumsum(...)[-1]`` — a strictly left-to-right accumulation —
    rather than ``np.sum``, whose pairwise summation reassociates the adds.
    The result therefore carries the exact double the scalar loop computes,
    which is what keeps the ``rounds="array"`` fast path inside the
    bit-identity contract.
    """
    if normal_use <= 0:
        raise ValueError(f"normal use must be positive, got {normal_use}")
    reduced_allowance = (1.0 - cutdowns) * allowed_uses
    clamped = np.where(reduced_allowance >= predicted_uses, predicted_uses, reduced_allowance)
    if clamped.size == 0:
        return -normal_use
    return float(np.cumsum(clamped)[-1] - normal_use)


def relative_overuse(overuse_value: float, normal_use: float) -> float:
    """The paper's ``overuse`` ratio: predicted overuse relative to normal use."""
    if normal_use <= 0:
        raise ValueError(f"normal use must be positive, got {normal_use}")
    return overuse_value / normal_use


def new_reward(reward: float, beta: float, overuse: float, max_reward: float) -> float:
    """One application of the logistic reward-escalation rule.

    ``new_reward = reward + beta * overuse * (1 - reward/max_reward) * reward``

    The result never exceeds ``max_reward`` for ``reward`` in
    ``[0, max_reward]`` and ``beta * overuse <= 1``; for larger products the
    result is clamped at ``max_reward`` so monotonic concession towards the
    customers is preserved even with aggressive parameters.  A non-positive
    ``overuse`` (no peak left) leaves the reward unchanged: the Utility Agent
    never *reduces* an announced reward, as the monotonic concession protocol
    requires.
    """
    if reward < 0:
        raise ValueError(f"reward must be non-negative, got {reward}")
    if max_reward <= 0:
        raise ValueError(f"max reward must be positive, got {max_reward}")
    if reward > max_reward:
        raise ValueError(f"reward ({reward}) exceeds max reward ({max_reward})")
    if beta < 0:
        raise ValueError(f"beta must be non-negative, got {beta}")
    if overuse <= 0:
        return reward
    updated = reward + beta * overuse * (1.0 - reward / max_reward) * reward
    return min(updated, max_reward)


def update_reward_table(
    table: RewardTable, beta: float, overuse: float, max_reward: float
) -> RewardTable:
    """Apply the reward-escalation rule to every entry of a reward table.

    Returns a new table announcing rewards "at least as high, and for some
    cut-down values higher than in the former reward table" — the monotonic
    concession step of Section 3.2.3.
    """
    updated_entries = {
        cutdown: new_reward(reward, beta, overuse, max_reward)
        for cutdown, reward in table.entries.items()
    }
    return RewardTable(entries=updated_entries, interval=table.interval)


def reward_increment(old: RewardTable, new: RewardTable) -> float:
    """Largest per-entry reward increase between two tables.

    The prototype stops negotiating "when the difference between the new
    reward values and the (old) reward values is less than or equal to 1";
    this function computes that difference.
    """
    if set(old.entries) != set(new.entries):
        raise ValueError("reward tables cover different cut-down values")
    if not old.entries:
        return 0.0
    return max(new.entries[c] - old.entries[c] for c in old.entries)
