"""Termination conditions of the negotiation process.

The paper (Sections 3.2.3 and 6) ends the reward-table negotiation when

1. "the peak is satisfactorily low for the Utility Agent (at most the maximal
   allowed overuse)", or
2. "the reward values in the new reward table have (almost) reached the
   maximum value the Utility Agent can offer" — operationalised in the
   prototype as a per-round reward increment of at most 1.

We model each condition as a small object so strategies and experiments can
mix them (plus a round-budget safety net) with :class:`CompositeTermination`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

from repro.negotiation.formulas import reward_increment
from repro.negotiation.reward_table import RewardTable


class TerminationReason(Enum):
    """Why a negotiation ended."""

    OVERUSE_ACCEPTABLE = "overuse_acceptable"
    REWARD_SATURATED = "reward_saturated"
    MAX_ROUNDS = "max_rounds"
    AGREEMENT = "agreement"
    NOT_TERMINATED = "not_terminated"


@dataclass(frozen=True)
class NegotiationStatus:
    """Snapshot of the quantities termination conditions look at."""

    round_number: int
    predicted_overuse: float
    normal_use: float
    previous_table: Optional[RewardTable] = None
    current_table: Optional[RewardTable] = None

    @property
    def relative_overuse(self) -> float:
        if self.normal_use <= 0:
            raise ValueError("normal use must be positive")
        return self.predicted_overuse / self.normal_use


class TerminationCondition(abc.ABC):
    """A single stopping criterion."""

    @abc.abstractmethod
    def check(self, status: NegotiationStatus) -> Optional[TerminationReason]:
        """Return the reason to stop, or ``None`` to continue."""


class OveruseAcceptable(TerminationCondition):
    """Stop when predicted overuse is at most the maximal allowed overuse."""

    def __init__(self, max_allowed_overuse: float = 0.0) -> None:
        self.max_allowed_overuse = float(max_allowed_overuse)

    def check(self, status: NegotiationStatus) -> Optional[TerminationReason]:
        if status.predicted_overuse <= self.max_allowed_overuse:
            return TerminationReason.OVERUSE_ACCEPTABLE
        return None


class RewardSaturated(TerminationCondition):
    """Stop when the per-round reward increment drops to at most ``epsilon``.

    The prototype uses ``epsilon = 1``.
    """

    def __init__(self, epsilon: float = 1.0) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        self.epsilon = float(epsilon)

    def check(self, status: NegotiationStatus) -> Optional[TerminationReason]:
        if status.previous_table is None or status.current_table is None:
            return None
        if reward_increment(status.previous_table, status.current_table) <= self.epsilon:
            return TerminationReason.REWARD_SATURATED
        return None


class MaxRoundsReached(TerminationCondition):
    """Safety net: stop after a fixed number of rounds."""

    def __init__(self, max_rounds: int = 100) -> None:
        if max_rounds <= 0:
            raise ValueError(f"max rounds must be positive, got {max_rounds}")
        self.max_rounds = int(max_rounds)

    def check(self, status: NegotiationStatus) -> Optional[TerminationReason]:
        if status.round_number >= self.max_rounds:
            return TerminationReason.MAX_ROUNDS
        return None


class CompositeTermination(TerminationCondition):
    """First condition that fires decides the reason (checked in order)."""

    def __init__(self, conditions: Sequence[TerminationCondition]) -> None:
        if not conditions:
            raise ValueError("a composite termination needs at least one condition")
        self.conditions = list(conditions)

    def check(self, status: NegotiationStatus) -> Optional[TerminationReason]:
        for condition in self.conditions:
            reason = condition.check(status)
            if reason is not None:
                return reason
        return None

    @classmethod
    def paper_default(
        cls,
        max_allowed_overuse: float = 0.0,
        epsilon: float = 1.0,
        max_rounds: int = 100,
    ) -> "CompositeTermination":
        """The prototype's termination: acceptable overuse, saturation, budget."""
        return cls(
            [
                OveruseAcceptable(max_allowed_overuse),
                RewardSaturated(epsilon),
                MaxRoundsReached(max_rounds),
            ]
        )
