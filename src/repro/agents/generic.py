"""The generic agent model and the Figure 2-5 task hierarchies.

Section 5 of the paper (re)uses a generic agent model in which every agent
performs seven generic tasks::

    own process control, agent specific task, cooperation management,
    agent interaction management, world interaction management,
    maintenance of world information, maintenance of agent information

and refines them for the Utility Agent (Figures 2 and 3) and the Customer
Agent (Figures 4 and 5).  This module builds those hierarchies as DESIRE
:class:`~repro.desire.component.ComposedComponent` trees.  The structural
tests verify them against the figures; the runtime agents attach them as
their ``desire_model`` so the compositional design artefact travels with the
implementation.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.desire.component import ComposedComponent, ComputationalComponent
from repro.desire.information_types import InformationState

#: The seven generic agent tasks of the generic agent model.
GENERIC_AGENT_TASKS: tuple[str, ...] = (
    "own_process_control",
    "agent_specific_task",
    "cooperation_management",
    "agent_interaction_management",
    "world_interaction_management",
    "maintenance_of_world_information",
    "maintenance_of_agent_information",
)


def _noop(state: InformationState) -> Iterable[object]:
    """Placeholder behaviour for structural (not-yet-specialised) components."""
    return ()


def _primitive(name: str) -> ComputationalComponent:
    return ComputationalComponent(name, _noop)


def _composed(name: str, children: Sequence[object]) -> ComposedComponent:
    """Build a composed component from a nested name structure.

    ``children`` mixes plain strings (primitive children) and
    ``(name, [children...])`` tuples (nested compositions).
    """
    component = ComposedComponent(name)
    for child in children:
        if isinstance(child, str):
            component.add_child(_primitive(child))
        else:
            child_name, grandchildren = child
            component.add_child(_composed(child_name, grandchildren))
    return component


def build_generic_agent_model(agent_name: str) -> ComposedComponent:
    """The unrefined generic agent model: seven primitive generic tasks."""
    model = ComposedComponent(agent_name)
    for task in GENERIC_AGENT_TASKS:
        model.add_child(_primitive(task))
    return model


def build_utility_agent_model(agent_name: str = "utility_agent") -> ComposedComponent:
    """The Utility Agent's task hierarchy (Figures 2 and 3).

    * *own process control* (Figure 2) contains *determine general negotiation
      strategy* (itself containing *determine announcement method* and
      *determine bid acceptance strategy*) and *evaluate negotiation process*.
    * *agent specific task* contains *determine predicted balance
      consumption/production* and *evaluate prediction* (Section 5.1.2).
    * *cooperation management* (Figure 3) contains *determine announcement*
      (with the generate-and-select and the statistical-optimisation branches)
      and *determine bid acceptance* (monitor bid receipt, evaluate bids,
      select bids).
    * The remaining generic tasks stay primitive.
    """
    model = ComposedComponent(agent_name)
    model.add_child(
        _composed(
            "own_process_control",
            [
                (
                    "determine_general_negotiation_strategy",
                    [
                        "determine_announcement_method",
                        "determine_bid_acceptance_strategy",
                    ],
                ),
                "evaluate_negotiation_process",
            ],
        )
    )
    model.add_child(
        _composed(
            "agent_specific_task",
            [
                "determine_predicted_balance_consumption_production",
                "evaluate_prediction",
            ],
        )
    )
    model.add_child(
        _composed(
            "cooperation_management",
            [
                (
                    "determine_announcement",
                    [
                        (
                            "determine_announcement_by_generate_and_select",
                            [
                                "generate_announcements",
                                "evaluate_prediction_for_announcements",
                                "select_announcement",
                            ],
                        ),
                        "determine_announcement_by_statistical_analysis_and_optimisation",
                    ],
                ),
                (
                    "determine_bid_acceptance",
                    [
                        "monitor_bid_receipt",
                        "evaluate_bids",
                        "select_bids",
                    ],
                ),
            ],
        )
    )
    for task in GENERIC_AGENT_TASKS[3:]:
        model.add_child(_primitive(task))
    return model


def build_customer_agent_model(agent_name: str = "customer_agent") -> ComposedComponent:
    """The Customer Agent's task hierarchy (Figures 4 and 5).

    * *own process control* (Figure 4) contains *determine general negotiation
      strategies* (resource-allocation strategy and bidding strategy) and
      *evaluate processes* (resource-allocation process and bidding process).
    * *cooperation management* (Figure 5) contains *determine resource
      consumers* (implementation instructions, needs of resource consumers,
      interpretation of resource-allocation monitoring) and *determine bid*
      (generate bids, select bid — choosing the appropriate bid and
      calculating expected gain —, evaluate bid, interpretation of bid
      monitoring).
    * The remaining generic tasks stay primitive.
    """
    model = ComposedComponent(agent_name)
    model.add_child(
        _composed(
            "own_process_control",
            [
                (
                    "determine_general_negotiation_strategies",
                    [
                        "determine_general_resource_allocation_strategy",
                        "determine_general_bidding_strategy",
                    ],
                ),
                (
                    "evaluate_processes",
                    [
                        "evaluate_resource_allocation_process",
                        "evaluate_bidding_process",
                    ],
                ),
            ],
        )
    )
    model.add_child(_primitive("agent_specific_task"))
    model.add_child(
        _composed(
            "cooperation_management",
            [
                (
                    "determine_resource_consumers",
                    [
                        "determine_implementation_instructions",
                        "determine_needs_of_resource_consumers",
                        "interpret_monitoring_results_of_resource_allocation",
                    ],
                ),
                (
                    "determine_bid",
                    [
                        "generate_bids",
                        (
                            "select_bid",
                            [
                                "choose_appropriate_bid",
                                "calculate_expected_gain",
                            ],
                        ),
                        "evaluate_bid",
                        "interpret_monitoring_results_of_bids",
                    ],
                ),
            ],
        )
    )
    for task in GENERIC_AGENT_TASKS[3:]:
        model.add_child(_primitive(task))
    return model


def component_names(model: ComposedComponent) -> set[str]:
    """All component names in a model (the model itself plus descendants)."""
    return {model.name} | {component.name for component in model.descendants()}
