"""Sharded customer population — parallel slices of the vectorized data plane.

:class:`~repro.agents.vectorized.VectorizedPopulation` already evaluates every
customer's bid decision for a round in one batched numpy call, but a single
process rides that call on one core.  The population arrays partition
trivially by index range, so :class:`ShardedPopulation` splits them into K
contiguous shards — each a zero-copy row view of the parent — and fans every
per-round kernel out to a :mod:`concurrent.futures` pool, concatenating the
shard results back into population order.

**Bit-identity.**  Every kernel is per-customer (each output row depends only
on that customer's row and the announced table), so partitioning by index
range and concatenating in shard order reproduces the unsharded arrays bit
for bit; no floating-point reassociation happens across shard boundaries.
The *aggregates* a Utility Agent derives from the shard results (the global
overuse estimate above all) are reduced by the very same Section 6 code path
the scalar and vectorized sessions use, which is what keeps the sharded
runtime in the fast path's equivalence contract.  Shard-local partial sums
(:meth:`shard_use_partials`) are exposed for between-round reconciliation
diagnostics; they use exactly-rounded summation so the reconciled estimate
can be asserted against the authoritative one.

Threads, not processes: the kernels are numpy-bound and release the GIL, so a
thread pool gets the cores without pickling 50k-household arrays per round.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import Executor
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from repro.agents.vectorized import VectorizedPopulation
from repro.negotiation.reward_table import RewardTable
from repro.runtime.faults import FaultInjector, InjectedShardFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.negotiation.messages import OfferAnnouncement


def _run_shard_kernel(kernel, shard, start, stop, inject_failure):
    """Worker-side kernel wrapper: raises when a failure was injected.

    The *decision* to fail is made in the submitting thread (sequential, so
    deterministic); the worker merely realises it, which keeps the injector's
    counters free of cross-thread races.
    """
    if inject_failure:
        raise InjectedShardFault(
            f"injected shard-worker failure for customers [{start}, {stop})"
        )
    return kernel(shard, start, stop)


def default_shard_count() -> int:
    """The shard count used when none is configured: one shard per core."""
    return os.cpu_count() or 1


def partition_bounds(num_customers: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous near-equal index ranges covering ``[0, num_customers)``.

    The first ``num_customers % num_shards`` shards get one extra customer, so
    shard sizes differ by at most one.  More shards than customers collapses
    to one customer per shard.
    """
    if num_customers < 1:
        raise ValueError("cannot partition an empty population")
    if num_shards < 1:
        raise ValueError("need at least one shard")
    num_shards = min(num_shards, num_customers)
    base, extra = divmod(num_customers, num_shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(num_shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


class ShardedPopulation:
    """K contiguous shards of one :class:`VectorizedPopulation`, kernels fanned out.

    Duck-types the population API the fast session drives (attribute views
    plus the per-round kernels), so :class:`~repro.core.sharded_session.
    ShardedSession` is a drop-in over it.  Without an attached executor the
    shards run serially — same results, useful for tests and one-core hosts.

    Parameters
    ----------
    population:
        The packed global population (shards are row views into it).
    num_shards:
        Requested shard count; clamped to the population size.
    executor:
        Optional :class:`concurrent.futures.Executor` running the shard
        kernels; attach one later with :meth:`attach_executor`.
    """

    def __init__(
        self,
        population: VectorizedPopulation,
        num_shards: int,
        executor: Optional[Executor] = None,
    ) -> None:
        self.population = population
        self.bounds = partition_bounds(len(population), num_shards)
        self.shards = [population.slice(start, stop) for start, stop in self.bounds]
        self._executor = executor
        self._injector: Optional[FaultInjector] = None
        self._kernel_calls = 0
        #: One record per recovered shard-kernel failure:
        #: ``{"kernel_call", "shard", "start", "stop", "stage", "error"}``
        #: where ``stage`` is ``"inline_retry"`` (bit-identical re-run) or
        #: ``"oracle"`` (per-customer decomposition of the same kernel).
        self.recovery_events: list[dict[str, object]] = []

    @classmethod
    def from_population(
        cls, population, num_shards: int, executor: Optional[Executor] = None
    ) -> "ShardedPopulation":
        """Pack a :class:`~repro.agents.population.CustomerPopulation` and shard it."""
        return cls(
            VectorizedPopulation.from_population(population), num_shards, executor
        )

    def attach_executor(self, executor: Optional[Executor]) -> None:
        """Set (or clear, with ``None``) the pool running the shard kernels."""
        self._executor = executor

    def attach_fault_injector(self, injector: Optional[FaultInjector]) -> None:
        """Set (or clear) the injector driving shard-worker failures."""
        self._injector = injector

    # -- delegated views ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.population)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def customer_ids(self) -> list[str]:
        return self.population.customer_ids

    @property
    def predicted_uses(self) -> np.ndarray:
        return self.population.predicted_uses

    @property
    def allowed_uses(self) -> np.ndarray:
        return self.population.allowed_uses

    @property
    def requirements(self) -> list:
        return self.population.requirements

    @property
    def max_feasible_cutdowns(self) -> np.ndarray:
        return self.population.max_feasible_cutdowns

    @property
    def is_vectorizable(self) -> bool:
        return self.population.is_vectorizable

    def kernel_cache_stats(self) -> dict[str, int]:
        """Hit/miss counters summed over all shard-local kernel caches."""
        totals = {"hits": 0, "misses": 0}
        for shard in self.shards:
            stats = shard.kernel_cache_stats()
            totals["hits"] += stats["hits"]
            totals["misses"] += stats["misses"]
        return totals

    # -- fan-out machinery -------------------------------------------------------

    def map_shards(
        self, kernel: Callable[[VectorizedPopulation, int, int], object]
    ) -> list:
        """Run ``kernel(shard, start, stop)`` on every shard, in shard order.

        With an attached executor the shards run concurrently (futures are
        collected in submission order, so results always come back in
        population order); otherwise serially.  A shard whose worker raises —
        injected by an attached fault injector or a genuine failure — goes
        through the recovery ladder (:meth:`_recover_shard`): one inline
        re-run, then the per-customer oracle decomposition; either way the
        shard's rows come back bit-identical to a fault-free run.
        """
        injector = self._injector
        inject = injector is not None and injector.shard_faults
        if self._executor is None or len(self.shards) == 1:
            if not inject:
                return [
                    kernel(shard, start, stop)
                    for shard, (start, stop) in zip(self.shards, self.bounds)
                ]
            results = []
            for index, (shard, (start, stop)) in enumerate(
                zip(self.shards, self.bounds)
            ):
                call_id = self._kernel_calls
                self._kernel_calls += 1
                try:
                    results.append(
                        _run_shard_kernel(
                            kernel, shard, start, stop,
                            injector.should_fail_shard(call_id, index, attempt=0),
                        )
                    )
                except Exception as error:
                    results.append(
                        self._recover_shard(
                            kernel, call_id, index, shard, start, stop, error
                        )
                    )
            return results
        submissions = []
        for index, (shard, (start, stop)) in enumerate(zip(self.shards, self.bounds)):
            call_id = self._kernel_calls
            self._kernel_calls += 1
            fail = inject and injector.should_fail_shard(call_id, index, attempt=0)
            future = self._executor.submit(
                _run_shard_kernel, kernel, shard, start, stop, fail
            )
            submissions.append((future, call_id, index, shard, start, stop))
        results = []
        for future, call_id, index, shard, start, stop in submissions:
            try:
                results.append(future.result())
            except Exception as error:
                results.append(
                    self._recover_shard(kernel, call_id, index, shard, start, stop, error)
                )
        return results

    def _recover_shard(
        self,
        kernel: Callable[[VectorizedPopulation, int, int], object],
        call_id: int,
        shard_index: int,
        shard: VectorizedPopulation,
        start: int,
        stop: int,
        error: Exception,
    ) -> object:
        """Recovery ladder for one failed shard-kernel call.

        Stage 1 re-runs the identical kernel inline (in the collecting
        thread) — when that succeeds the result is bit-identical by
        construction.  Stage 2 decomposes the shard into single-customer
        slices and runs the same kernel per customer: every kernel is
        per-customer (the contract the sharding itself relies on), so the
        concatenated rows are again bit-identical, just computed one row at a
        time — the scalar oracle for this index range.  Both stages land in
        :attr:`recovery_events` for reconciliation diagnostics.
        """
        injector = self._injector
        retry_blocked = (
            injector is not None
            and injector.shard_faults
            and injector.should_fail_shard(call_id, shard_index, attempt=1)
        )
        if not retry_blocked:
            try:
                result = kernel(shard, start, stop)
                self._record_recovery(
                    call_id, shard_index, start, stop, "inline_retry", error
                )
                return result
            except Exception as retry_error:  # pragma: no cover - genuine double fault
                error = retry_error
        pieces = [
            kernel(shard.slice(offset, offset + 1), start + offset, start + offset + 1)
            for offset in range(stop - start)
        ]
        self._record_recovery(call_id, shard_index, start, stop, "oracle", error)
        return np.concatenate([np.atleast_1d(np.asarray(piece)) for piece in pieces])

    def _record_recovery(
        self,
        call_id: int,
        shard_index: int,
        start: int,
        stop: int,
        stage: str,
        error: Exception,
    ) -> None:
        self.recovery_events.append(
            {
                "kernel_call": call_id,
                "shard": shard_index,
                "start": start,
                "stop": stop,
                "stage": stage,
                "error": f"{type(error).__name__}: {error}",
            }
        )
        if self._injector is not None:
            self._injector.record_shard_recovery(stage)

    def _concat(self, parts: Sequence[np.ndarray]) -> np.ndarray:
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # -- per-round kernels (fanned out) -------------------------------------------

    def highest_acceptable_cutdowns(self, table: RewardTable) -> np.ndarray:
        return self._concat(
            self.map_shards(lambda shard, a, b: shard.highest_acceptable_cutdowns(table))
        )

    def expected_gain_cutdowns(self, table: RewardTable) -> np.ndarray:
        return self._concat(
            self.map_shards(lambda shard, a, b: shard.expected_gain_cutdowns(table))
        )

    def interpolated_requirements(self, cutdowns: np.ndarray) -> np.ndarray:
        queries = np.asarray(cutdowns, dtype=float)
        return self._concat(
            self.map_shards(
                lambda shard, a, b: shard.interpolated_requirements(queries[a:b])
            )
        )

    def step_quantity_bids(
        self,
        current_needs: np.ndarray,
        step_fraction: float,
        peak_hours: float,
        normal_price: float,
    ) -> np.ndarray:
        needs = np.asarray(current_needs, dtype=float)
        return self._concat(
            self.map_shards(
                lambda shard, a, b: shard.step_quantity_bids(
                    needs[a:b], step_fraction, peak_hours, normal_price
                )
            )
        )

    def offer_acceptances(
        self, announcement: "OfferAnnouncement", peak_hours: float
    ) -> np.ndarray:
        return self._concat(
            self.map_shards(
                lambda shard, a, b: shard.offer_acceptances(announcement, peak_hours)
            )
        )

    def table_rewards(self, table: RewardTable, cutdowns: np.ndarray) -> np.ndarray:
        queries = np.asarray(cutdowns, dtype=float)
        return self._concat(
            self.map_shards(
                lambda shard, a, b: shard.table_rewards(table, queries[a:b])
            )
        )

    def realised_surpluses(
        self, committed_cutdowns: np.ndarray, rewards: np.ndarray
    ) -> np.ndarray:
        committed = np.asarray(committed_cutdowns, dtype=float)
        due = np.asarray(rewards, dtype=float)
        return self._concat(
            self.map_shards(
                lambda shard, a, b: shard.realised_surpluses(committed[a:b], due[a:b])
            )
        )

    # -- between-round reconciliation ----------------------------------------------

    def shard_use_partials(self, cutdowns: np.ndarray) -> np.ndarray:
        """Per-shard partial sums of ``predicted_use_with_cutdown`` (Section 6).

        Each shard reduces its slice with exactly-rounded summation
        (:func:`math.fsum`); ``fsum(partials) - normal_use`` reconciles the
        shards into a global overuse estimate for diagnostics.  The
        *authoritative* per-round estimate stays with the shared method
        object's evaluation (same code path as the scalar and vectorized
        sessions), which is what the bit-identity contract is pinned to.
        """
        committed = np.asarray(cutdowns, dtype=float)

        def partial(shard: VectorizedPopulation, start: int, stop: int) -> float:
            reduced = (1.0 - committed[start:stop]) * shard.allowed_uses
            return math.fsum(np.minimum(shard.predicted_uses, reduced))

        return np.array(self.map_shards(partial), dtype=float)
