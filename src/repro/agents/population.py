"""Generating Customer Agent populations.

Experiments need populations of customers at two levels of fidelity:

* **synthetic households** — full grid-substrate households (appliances,
  weather-dependent demand, preference models derived from comfort weights),
  used by the Figure-1 demand curve, the method comparison and the
  scalability experiments; and
* **calibrated customers** — customers with explicitly given predicted use,
  allowed use and requirement tables, used to reproduce the exact prototype
  scenario of Figures 6-9.

:class:`CustomerPopulation` holds either kind and produces the
:class:`~repro.negotiation.methods.base.CustomerContext` objects, Customer
Agents and the Utility Agent's :class:`UtilityContext` for a negotiation
about a given peak interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.agents.customer_agent import CustomerAgent
from repro.agents.preferences import CustomerPreferenceModel, FleetRequirements
from repro.agents.resource_consumer_agent import ResourceConsumerAgent
from repro.grid.appliances import ApplianceLibrary, standard_appliance_library
from repro.grid.demand import DemandModel
from repro.grid.fleet import FleetIncompatibleError, HouseholdFleet
from repro.grid.household import Household
from repro.grid.weather import WeatherSample
from repro.negotiation.methods.base import CustomerContext, NegotiationMethod, UtilityContext
from repro.negotiation.reward_table import CutdownRewardRequirements
from repro.runtime.clock import TimeInterval
from repro.runtime.rng import RandomSource


@dataclass
class PopulationConfig:
    """Configuration for a synthetic household population."""

    num_households: int = 50
    seed: int = 0
    slots_per_day: int = 24
    behavioural_noise: float = 0.08
    preference_scale: float = 2.0
    preference_exponent: float = 1.8

    def __post_init__(self) -> None:
        if self.num_households <= 0:
            raise ValueError("population needs at least one household")
        if self.behavioural_noise < 0:
            raise ValueError("behavioural noise must be non-negative")


@dataclass
class CustomerSpec:
    """One customer of a population, ready to be turned into an agent."""

    customer_id: str
    predicted_use: float
    allowed_use: float
    requirements: CutdownRewardRequirements
    household: Optional[Household] = None

    def context(self) -> CustomerContext:
        return CustomerContext(
            customer=self.customer_id,
            predicted_use=self.predicted_use,
            allowed_use=self.allowed_use,
            requirements=self.requirements,
        )


class CustomerPopulation:
    """A set of customers plus the utility-side view of them."""

    def __init__(
        self,
        specs: Sequence[CustomerSpec],
        normal_use: float,
        interval: Optional[TimeInterval] = None,
        max_allowed_overuse: float = 0.0,
        households: Optional[Sequence[Household]] = None,
        weather: Optional[WeatherSample] = None,
    ) -> None:
        if not specs:
            raise ValueError("a population needs at least one customer")
        if normal_use <= 0:
            raise ValueError("normal use must be positive")
        self.specs = list(specs)
        self.normal_use = float(normal_use)
        self.interval = interval
        self.max_allowed_overuse = float(max_allowed_overuse)
        self.households = list(households or [])
        self.weather = weather
        #: The columnar fleet the population was planned from, when it came
        #: out of a fleet-backed constructor; lets downstream consumers (the
        #: load-balancing system's accounting) reuse the packed arrays.
        self.fleet: Optional[HouseholdFleet] = None

    # -- basic views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def customer_ids(self) -> list[str]:
        return [spec.customer_id for spec in self.specs]

    @property
    def total_predicted_use(self) -> float:
        return sum(spec.predicted_use for spec in self.specs)

    @property
    def initial_overuse(self) -> float:
        return self.total_predicted_use - self.normal_use

    def spec(self, customer_id: str) -> CustomerSpec:
        for spec in self.specs:
            if spec.customer_id == customer_id:
                return spec
        raise KeyError(f"no customer {customer_id!r} in population")

    # -- agent construction ------------------------------------------------------------

    def utility_context(self) -> UtilityContext:
        return UtilityContext(
            normal_use=self.normal_use,
            predicted_uses={s.customer_id: s.predicted_use for s in self.specs},
            allowed_uses={s.customer_id: s.allowed_use for s in self.specs},
            interval=self.interval,
            max_allowed_overuse=self.max_allowed_overuse,
        )

    def customer_contexts(self) -> list[CustomerContext]:
        return [spec.context() for spec in self.specs]

    def build_customer_agents(
        self,
        method: NegotiationMethod,
        with_resource_consumers: bool = False,
    ) -> list[CustomerAgent]:
        """Customer Agents (optionally with Resource Consumer Agents attached)."""
        agents = []
        for spec in self.specs:
            resource_consumers: list[ResourceConsumerAgent] = []
            if with_resource_consumers and spec.household is not None:
                owner = f"customer_agent_{spec.customer_id}"
                for appliance, scale in spec.household.owned_appliances():
                    resource_consumers.append(
                        ResourceConsumerAgent(
                            household=spec.household,
                            appliance=appliance,
                            usage_scale=scale,
                            owner_agent=owner,
                            weather=self.weather,
                        )
                    )
            agents.append(
                CustomerAgent(
                    context=spec.context(),
                    method=method,
                    resource_consumers=resource_consumers,
                )
            )
        return agents

    # -- constructors ----------------------------------------------------------------------

    @classmethod
    def from_fleet(
        cls,
        fleet: HouseholdFleet,
        predicted_uses: Union[Sequence[float], np.ndarray],
        requirements: FleetRequirements,
        normal_use: float,
        interval: Optional[TimeInterval] = None,
        max_allowed_overuse: float = 0.0,
        weather: Optional[WeatherSample] = None,
    ) -> "CustomerPopulation":
        """A population assembled from columnar planning arrays.

        The compute-heavy planning quantities (predicted uses, requirement
        tables) arrive as arrays straight from the fleet kernels; this
        constructor only materialises the per-customer spec objects the
        negotiation sessions consume.  The resulting population is
        bit-identical to one built through the scalar per-household loop.
        """
        if len(fleet) != len(predicted_uses) or len(fleet) != len(requirements):
            raise ValueError("fleet, predicted uses and requirements must align")
        tables = requirements.tables()
        predicted = [float(use) for use in predicted_uses]
        specs = [
            CustomerSpec(
                customer_id=customer_id,
                predicted_use=use,
                allowed_use=use,
                requirements=table,
                household=household,
            )
            for customer_id, use, table, household in zip(
                fleet.household_ids, predicted, tables, fleet.households
            )
        ]
        population = cls(
            specs=specs,
            normal_use=normal_use,
            interval=interval,
            max_allowed_overuse=max_allowed_overuse,
            households=fleet.households,
            weather=weather,
        )
        population.fleet = fleet
        return population

    @classmethod
    def synthetic(
        cls,
        config: PopulationConfig,
        interval: Optional[TimeInterval] = None,
        weather: Optional[WeatherSample] = None,
        library: Optional[ApplianceLibrary] = None,
        capacity_quantile: float = 0.75,
        max_allowed_overuse_fraction: float = 0.02,
        planning: str = "columnar",
    ) -> "CustomerPopulation":
        """A synthetic household population with grid-substrate demand.

        The per-customer predicted use is the household's average demand in
        the peak interval; the allowed use equals the predicted use (the
        cut-down is relative to what the customer was going to consume); the
        normal capacity is set from the demand distribution so that a peak
        exists.

        ``planning`` selects how the per-customer quantities are computed:
        ``"columnar"`` (default) runs the fleet kernels, ``"scalar"`` the
        per-household object loop.  The two are bit-identical — the scalar
        path survives as the equivalence oracle and as the fallback for
        fleet-incompatible household sets.
        """
        if planning not in ("columnar", "scalar"):
            raise ValueError(f"unknown planning mode {planning!r}")
        random = RandomSource(config.seed, name="population")
        library = library or standard_appliance_library()
        households = [
            Household.generate(f"h{i:04d}", random.spawn(f"household_{i}"), library,
                               config.slots_per_day)
            for i in range(config.num_households)
        ]
        fleet: Optional[HouseholdFleet] = None
        if planning == "columnar":
            try:
                fleet = HouseholdFleet(households)
            except FleetIncompatibleError:
                fleet = None
        demand_model = DemandModel(
            households, random.spawn("demand"), config.behavioural_noise, fleet=fleet
        )
        aggregate = demand_model.expected_aggregate(weather)
        normal_use = demand_model.normal_capacity_for_target(weather, quantile=capacity_quantile)
        if interval is None:
            interval = aggregate.peak_interval(normal_use)
            if interval is None:
                interval = TimeInterval.from_hours(17, 20, config.slots_per_day)
        preference_random = random.spawn("preferences")
        base_weights = [
            CustomerPreferenceModel.sample(
                preference_random.spawn(household.household_id)
            ).comfort_weight
            for household in households
        ]
        max_allowed_overuse = max_allowed_overuse_fraction * normal_use
        if fleet is not None:
            model = CustomerPreferenceModel(
                discomfort_scale=config.preference_scale,
                exponent=config.preference_exponent,
            )
            requirements = model.requirements_for_fleet(
                fleet, interval, weather, comfort_weights=base_weights
            )
            return cls.from_fleet(
                fleet=fleet,
                predicted_uses=fleet.average_in(interval, weather),
                requirements=requirements,
                normal_use=normal_use,
                interval=interval,
                max_allowed_overuse=max_allowed_overuse,
                weather=weather,
            )
        specs = []
        for household, base_weight in zip(households, base_weights):
            demand = household.demand_profile(weather)
            predicted = demand.average_in(interval)
            model = CustomerPreferenceModel(
                comfort_weight=base_weight,
                discomfort_scale=config.preference_scale,
                exponent=config.preference_exponent,
            )
            requirements = model.requirements_for_household(household, interval, weather)
            specs.append(
                CustomerSpec(
                    customer_id=household.household_id,
                    predicted_use=predicted,
                    allowed_use=predicted,
                    requirements=requirements,
                    household=household,
                )
            )
        return cls(
            specs=specs,
            normal_use=normal_use,
            interval=interval,
            max_allowed_overuse=max_allowed_overuse,
            households=households,
            weather=weather,
        )

    @classmethod
    def calibrated(
        cls,
        predicted_uses: Sequence[float],
        requirements: Sequence[CutdownRewardRequirements],
        normal_use: float,
        allowed_uses: Optional[Sequence[float]] = None,
        interval: Optional[TimeInterval] = None,
        max_allowed_overuse: float = 0.0,
    ) -> "CustomerPopulation":
        """A population defined by explicit numbers (for prototype calibration)."""
        if len(predicted_uses) != len(requirements):
            raise ValueError("predicted_uses and requirements must have the same length")
        allowed = list(allowed_uses) if allowed_uses is not None else list(predicted_uses)
        if len(allowed) != len(predicted_uses):
            raise ValueError("allowed_uses must match predicted_uses in length")
        specs = [
            CustomerSpec(
                customer_id=f"c{i:03d}",
                predicted_use=float(predicted),
                allowed_use=float(allowed_use),
                requirements=requirement,
            )
            for i, (predicted, allowed_use, requirement) in enumerate(
                zip(predicted_uses, allowed, requirements)
            )
        ]
        return cls(
            specs=specs,
            normal_use=normal_use,
            interval=interval,
            max_allowed_overuse=max_allowed_overuse,
        )
