"""Generating Customer Agent populations.

Experiments need populations of customers at two levels of fidelity:

* **synthetic households** — full grid-substrate households (appliances,
  weather-dependent demand, preference models derived from comfort weights),
  used by the Figure-1 demand curve, the method comparison and the
  scalability experiments; and
* **calibrated customers** — customers with explicitly given predicted use,
  allowed use and requirement tables, used to reproduce the exact prototype
  scenario of Figures 6-9.

:class:`CustomerPopulation` holds either kind and produces the
:class:`~repro.negotiation.methods.base.CustomerContext` objects, Customer
Agents and the Utility Agent's :class:`UtilityContext` for a negotiation
about a given peak interval.

**Lazy materialisation.**  Populations assembled by the columnar planner
(:meth:`CustomerPopulation.from_fleet`) can defer building the per-customer
:class:`CustomerSpec` objects and their dict reward tables entirely
(``materialise="lazy"``): the population then carries the planning arrays —
ids, predicted uses and the :class:`~repro.agents.preferences
.FleetRequirements` matrix — and :meth:`CustomerPopulation.columnar_view`
hands them straight to :class:`~repro.agents.vectorized.VectorizedPopulation`,
so a 100k-household campaign day never allocates 100k spec objects or
100k requirement dicts.  Anything that genuinely needs the object view
(``.specs``, the object backend, resource consumers) triggers
materialisation transparently, and the materialised objects are bit-identical
to an ``materialise="eager"`` population — the eager path stays the
equivalence oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.agents.customer_agent import CustomerAgent
from repro.agents.preferences import CustomerPreferenceModel, FleetRequirements
from repro.agents.resource_consumer_agent import ResourceConsumerAgent
from repro.core.modes import validate_materialise_mode, validate_planning_mode
from repro.grid.appliances import ApplianceLibrary, standard_appliance_library
from repro.grid.demand import DemandModel
from repro.grid.fleet import Fleet, FleetIncompatibleError, pack_fleet
from repro.grid.household import Household
from repro.grid.weather import WeatherSample
from repro.negotiation.methods.base import CustomerContext, NegotiationMethod, UtilityContext
from repro.negotiation.reward_table import CutdownRewardRequirements
from repro.runtime.clock import TimeInterval
from repro.runtime.rng import RandomSource


@dataclass
class PopulationConfig:
    """Configuration for a synthetic household population."""

    num_households: int = 50
    seed: int = 0
    slots_per_day: int = 24
    behavioural_noise: float = 0.08
    preference_scale: float = 2.0
    preference_exponent: float = 1.8

    def __post_init__(self) -> None:
        if self.num_households <= 0:
            raise ValueError("population needs at least one household")
        if self.behavioural_noise < 0:
            raise ValueError("behavioural noise must be non-negative")


@dataclass
class CustomerSpec:
    """One customer of a population, ready to be turned into an agent."""

    customer_id: str
    predicted_use: float
    allowed_use: float
    requirements: CutdownRewardRequirements
    household: Optional[Household] = None

    def context(self) -> CustomerContext:
        return CustomerContext(
            customer=self.customer_id,
            predicted_use=self.predicted_use,
            allowed_use=self.allowed_use,
            requirements=self.requirements,
        )


@dataclass(frozen=True)
class PopulationColumns:
    """The columnar planning → negotiation hand-off of a lazy population.

    Exactly what :class:`~repro.agents.vectorized.VectorizedPopulation` needs
    to pack itself without touching per-customer objects: ids and uses in
    population order plus the shared-grid :class:`~repro.agents.preferences
    .FleetRequirements` matrix.
    """

    customer_ids: list[str]
    predicted_uses: list[float]
    allowed_uses: list[float]
    requirements: FleetRequirements


class CustomerPopulation:
    """A set of customers plus the utility-side view of them."""

    def __init__(
        self,
        specs: Sequence[CustomerSpec],
        normal_use: float,
        interval: Optional[TimeInterval] = None,
        max_allowed_overuse: float = 0.0,
        households: Optional[Sequence[Household]] = None,
        weather: Optional[WeatherSample] = None,
    ) -> None:
        if not specs:
            raise ValueError("a population needs at least one customer")
        self._specs: Optional[list[CustomerSpec]] = list(specs)
        self._columns: Optional[PopulationColumns] = None
        self._init_common(
            normal_use, interval, max_allowed_overuse, households, weather
        )

    def _init_common(
        self,
        normal_use: float,
        interval: Optional[TimeInterval],
        max_allowed_overuse: float,
        households: Optional[Sequence[Household]],
        weather: Optional[WeatherSample],
    ) -> None:
        if normal_use <= 0:
            raise ValueError("normal use must be positive")
        self.normal_use = float(normal_use)
        self.interval = interval
        self.max_allowed_overuse = float(max_allowed_overuse)
        self.households = list(households or [])
        self.weather = weather
        #: The columnar fleet the population was planned from, when it came
        #: out of a fleet-backed constructor; lets downstream consumers (the
        #: load-balancing system's accounting) reuse the packed arrays.
        self.fleet: Optional[Fleet] = None
        #: Why a ``planning="columnar"`` constructor fell back to the scalar
        #: per-household path (``None`` when the fleet packed or the scalar
        #: path was asked for).  Surfaced by the engine facade as
        #: ``metadata["planning_fallback"]``.
        self.planning_fallback: Optional[str] = None

    # -- materialisation -----------------------------------------------------------

    @property
    def specs(self) -> list[CustomerSpec]:
        """The per-customer spec objects (materialised on first access)."""
        if self._specs is None:
            self._specs = self._materialise_specs()
        return self._specs

    @property
    def materialised(self) -> bool:
        """Whether the per-customer spec objects exist (always for eager)."""
        return self._specs is not None

    def _materialise_specs(self) -> list[CustomerSpec]:
        """Build the spec objects a lazy population deferred (bit-identical
        to the ones an eager :meth:`from_fleet` would have built)."""
        columns = self._columns
        tables = columns.requirements.tables()
        return [
            CustomerSpec(
                customer_id=customer_id,
                predicted_use=use,
                allowed_use=allowed,
                requirements=table,
                household=household,
            )
            for customer_id, use, allowed, table, household in zip(
                columns.customer_ids,
                columns.predicted_uses,
                columns.allowed_uses,
                tables,
                self.households,
            )
        ]

    def columnar_view(self) -> Optional[PopulationColumns]:
        """The planning arrays of a lazy population, or ``None``.

        Consumers that can run straight off the arrays (the vectorized /
        sharded negotiation backends) use this to bypass the object view; a
        ``None`` means the population is spec-backed and they should read
        :attr:`specs` as before.
        """
        return self._columns if self._specs is None else None

    # -- basic views ---------------------------------------------------------------

    def __len__(self) -> int:
        if self._specs is None:
            return len(self._columns.customer_ids)
        return len(self._specs)

    @property
    def customer_ids(self) -> list[str]:
        if self._specs is None:
            return list(self._columns.customer_ids)
        return [spec.customer_id for spec in self._specs]

    @property
    def total_predicted_use(self) -> float:
        # Both branches sum the identical Python floats left to right, so the
        # lazy and eager views agree bit for bit.
        if self._specs is None:
            return sum(self._columns.predicted_uses)
        return sum(spec.predicted_use for spec in self._specs)

    @property
    def initial_overuse(self) -> float:
        return self.total_predicted_use - self.normal_use

    def spec(self, customer_id: str) -> CustomerSpec:
        for spec in self.specs:
            if spec.customer_id == customer_id:
                return spec
        raise KeyError(f"no customer {customer_id!r} in population")

    # -- agent construction ------------------------------------------------------------

    def utility_context(self) -> UtilityContext:
        if self._specs is None:
            columns = self._columns
            predicted = dict(zip(columns.customer_ids, columns.predicted_uses))
            allowed = dict(zip(columns.customer_ids, columns.allowed_uses))
        else:
            predicted = {s.customer_id: s.predicted_use for s in self._specs}
            allowed = {s.customer_id: s.allowed_use for s in self._specs}
        return UtilityContext(
            normal_use=self.normal_use,
            predicted_uses=predicted,
            allowed_uses=allowed,
            interval=self.interval,
            max_allowed_overuse=self.max_allowed_overuse,
        )

    def customer_contexts(self) -> list[CustomerContext]:
        return [spec.context() for spec in self.specs]

    def build_customer_agents(
        self,
        method: NegotiationMethod,
        with_resource_consumers: bool = False,
    ) -> list[CustomerAgent]:
        """Customer Agents (optionally with Resource Consumer Agents attached)."""
        agents = []
        for spec in self.specs:
            resource_consumers: list[ResourceConsumerAgent] = []
            if with_resource_consumers and spec.household is not None:
                owner = f"customer_agent_{spec.customer_id}"
                for appliance, scale in spec.household.owned_appliances():
                    resource_consumers.append(
                        ResourceConsumerAgent(
                            household=spec.household,
                            appliance=appliance,
                            usage_scale=scale,
                            owner_agent=owner,
                            weather=self.weather,
                        )
                    )
            agents.append(
                CustomerAgent(
                    context=spec.context(),
                    method=method,
                    resource_consumers=resource_consumers,
                )
            )
        return agents

    # -- constructors ----------------------------------------------------------------------

    @classmethod
    def from_fleet(
        cls,
        fleet: Fleet,
        predicted_uses: Union[Sequence[float], np.ndarray],
        requirements: FleetRequirements,
        normal_use: float,
        interval: Optional[TimeInterval] = None,
        max_allowed_overuse: float = 0.0,
        weather: Optional[WeatherSample] = None,
        materialise: str = "eager",
    ) -> "CustomerPopulation":
        """A population assembled from columnar planning arrays.

        The compute-heavy planning quantities (predicted uses, requirement
        tables) arrive as arrays straight from the fleet kernels.  With
        ``materialise="eager"`` (the default, and the equivalence oracle)
        the per-customer spec objects the object-path sessions consume are
        built immediately; with ``materialise="lazy"`` the population keeps
        only the arrays and defers the spec objects until something actually
        reads :attr:`specs` — the batched negotiation backends never do.
        Either way the population is bit-identical to one built through the
        scalar per-household loop.
        """
        validate_materialise_mode(materialise)
        if len(fleet) != len(predicted_uses) or len(fleet) != len(requirements):
            raise ValueError("fleet, predicted uses and requirements must align")
        predicted = [float(use) for use in predicted_uses]
        if materialise == "lazy":
            population = cls.__new__(cls)
            population._specs = None
            population._columns = PopulationColumns(
                customer_ids=list(fleet.household_ids),
                predicted_uses=predicted,
                allowed_uses=predicted,
                requirements=requirements,
            )
            population._init_common(
                normal_use, interval, max_allowed_overuse, fleet.households, weather
            )
            population.fleet = fleet
            return population
        tables = requirements.tables()
        specs = [
            CustomerSpec(
                customer_id=customer_id,
                predicted_use=use,
                allowed_use=use,
                requirements=table,
                household=household,
            )
            for customer_id, use, table, household in zip(
                fleet.household_ids, predicted, tables, fleet.households
            )
        ]
        population = cls(
            specs=specs,
            normal_use=normal_use,
            interval=interval,
            max_allowed_overuse=max_allowed_overuse,
            households=fleet.households,
            weather=weather,
        )
        population.fleet = fleet
        return population

    @classmethod
    def synthetic(
        cls,
        config: PopulationConfig,
        interval: Optional[TimeInterval] = None,
        weather: Optional[WeatherSample] = None,
        library: Optional[ApplianceLibrary] = None,
        capacity_quantile: float = 0.75,
        max_allowed_overuse_fraction: float = 0.02,
        planning: str = "columnar",
        materialise: str = "eager",
    ) -> "CustomerPopulation":
        """A synthetic household population with grid-substrate demand.

        The per-customer predicted use is the household's average demand in
        the peak interval; the allowed use equals the predicted use (the
        cut-down is relative to what the customer was going to consume); the
        normal capacity is set from the demand distribution so that a peak
        exists.

        ``planning`` selects how the per-customer quantities are computed:
        ``"columnar"`` (default) runs the fleet kernels, ``"scalar"`` the
        per-household object loop.  The two are bit-identical — the scalar
        path survives as the equivalence oracle and as the fallback for
        fleet-incompatible household sets.  ``materialise="lazy"`` (columnar
        path only) defers the per-customer spec objects; the scalar path
        always materialises.
        """
        validate_planning_mode(planning)
        validate_materialise_mode(materialise)
        random = RandomSource(config.seed, name="population")
        library = library or standard_appliance_library()
        households = [
            Household.generate(f"h{i:04d}", random.spawn(f"household_{i}"), library,
                               config.slots_per_day)
            for i in range(config.num_households)
        ]
        fleet: Optional[Fleet] = None
        planning_fallback: Optional[str] = None
        if planning == "columnar":
            try:
                fleet = pack_fleet(households)
            except FleetIncompatibleError as exc:
                fleet = None
                planning_fallback = str(exc)
        demand_model = DemandModel(
            households, random.spawn("demand"), config.behavioural_noise, fleet=fleet
        )
        aggregate = demand_model.expected_aggregate(weather)
        normal_use = demand_model.normal_capacity_for_target(weather, quantile=capacity_quantile)
        if interval is None:
            interval = aggregate.peak_interval(normal_use)
            if interval is None:
                interval = TimeInterval.from_hours(17, 20, config.slots_per_day)
        preference_random = random.spawn("preferences")
        base_weights = [
            CustomerPreferenceModel.sample(
                preference_random.spawn(household.household_id)
            ).comfort_weight
            for household in households
        ]
        max_allowed_overuse = max_allowed_overuse_fraction * normal_use
        if fleet is not None:
            model = CustomerPreferenceModel(
                discomfort_scale=config.preference_scale,
                exponent=config.preference_exponent,
            )
            requirements = model.requirements_for_fleet(
                fleet, interval, weather, comfort_weights=base_weights
            )
            return cls.from_fleet(
                fleet=fleet,
                predicted_uses=fleet.average_in(interval, weather),
                requirements=requirements,
                normal_use=normal_use,
                interval=interval,
                max_allowed_overuse=max_allowed_overuse,
                weather=weather,
                materialise=materialise,
            )
        specs = []
        for household, base_weight in zip(households, base_weights):
            demand = household.demand_profile(weather)
            predicted = demand.average_in(interval)
            model = CustomerPreferenceModel(
                comfort_weight=base_weight,
                discomfort_scale=config.preference_scale,
                exponent=config.preference_exponent,
            )
            requirements = model.requirements_for_household(household, interval, weather)
            specs.append(
                CustomerSpec(
                    customer_id=household.household_id,
                    predicted_use=predicted,
                    allowed_use=predicted,
                    requirements=requirements,
                    household=household,
                )
            )
        population = cls(
            specs=specs,
            normal_use=normal_use,
            interval=interval,
            max_allowed_overuse=max_allowed_overuse,
            households=households,
            weather=weather,
        )
        population.planning_fallback = planning_fallback
        return population

    @classmethod
    def calibrated(
        cls,
        predicted_uses: Sequence[float],
        requirements: Sequence[CutdownRewardRequirements],
        normal_use: float,
        allowed_uses: Optional[Sequence[float]] = None,
        interval: Optional[TimeInterval] = None,
        max_allowed_overuse: float = 0.0,
    ) -> "CustomerPopulation":
        """A population defined by explicit numbers (for prototype calibration)."""
        if len(predicted_uses) != len(requirements):
            raise ValueError("predicted_uses and requirements must have the same length")
        allowed = list(allowed_uses) if allowed_uses is not None else list(predicted_uses)
        if len(allowed) != len(predicted_uses):
            raise ValueError("allowed_uses must match predicted_uses in length")
        specs = [
            CustomerSpec(
                customer_id=f"c{i:03d}",
                predicted_use=float(predicted),
                allowed_use=float(allowed_use),
                requirements=requirement,
            )
            for i, (predicted, allowed_use, requirement) in enumerate(
                zip(predicted_uses, allowed, requirements)
            )
        ]
        return cls(
            specs=specs,
            normal_use=normal_use,
            interval=interval,
            max_allowed_overuse=max_allowed_overuse,
        )
