"""Runtime base class for agents.

An :class:`AgentBase` connects a DESIRE-designed agent to the runtime: it has
a name, sends and receives messages through the simulation's
:class:`~repro.runtime.messaging.MessageBus`, and is stepped once per
simulation round.  Subclasses implement :meth:`process_round` with the agent's
behaviour for one round; the base class handles mailbox plumbing.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.desire.component import ComposedComponent
from repro.runtime.messaging import Message, Performative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.simulation import Simulation


class AgentBase(abc.ABC):
    """Common runtime behaviour of all agents in the system."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("agent name must be non-empty")
        self._name = name
        self._steps = 0
        #: The agent's DESIRE process model (built by subclasses); purely
        #: structural unless a subclass chooses to execute it.
        self.desire_model: Optional[ComposedComponent] = None

    @property
    def name(self) -> str:
        return self._name

    @property
    def steps_taken(self) -> int:
        return self._steps

    # -- messaging helpers --------------------------------------------------------

    def incoming(self, simulation: "Simulation") -> list[Message]:
        """All messages waiting in this agent's mailbox."""
        return simulation.bus.mailbox(self._name).collect()

    def incoming_matching(
        self,
        simulation: "Simulation",
        performative: Optional[Performative] = None,
        conversation_id: Optional[str] = None,
    ) -> list[Message]:
        """Pending messages matching a performative and/or conversation."""
        return simulation.bus.mailbox(self._name).collect_matching(
            performative, conversation_id
        )

    def send(
        self,
        simulation: "Simulation",
        receiver: str,
        performative: Performative,
        content: Any = None,
        conversation_id: str = "",
        round_number: Optional[int] = None,
    ) -> Message:
        """Send one message through the bus."""
        return simulation.bus.send(
            Message(
                sender=self._name,
                receiver=receiver,
                performative=performative,
                content=content,
                conversation_id=conversation_id,
                round_number=round_number,
            )
        )

    def broadcast(
        self,
        simulation: "Simulation",
        receivers: Iterable[str],
        performative: Performative,
        content: Any = None,
        conversation_id: str = "",
        round_number: Optional[int] = None,
    ) -> list[Message]:
        """Send the same content to several receivers."""
        return simulation.bus.broadcast(
            self._name, receivers, performative, content, conversation_id, round_number
        )

    # -- simulation integration ------------------------------------------------------

    def step(self, simulation: "Simulation") -> None:
        """One simulation round for this agent (called by the driver)."""
        self._steps += 1
        self.process_round(simulation)

    @abc.abstractmethod
    def process_round(self, simulation: "Simulation") -> None:
        """The agent's behaviour for one round."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self._name!r})"
