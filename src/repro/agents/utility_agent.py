"""The Utility Agent (UA).

The Utility Agent drives the negotiation: it predicts the balance between
consumption and production, decides whether a negotiation is warranted,
announces (and escalates) deals according to the configured announcement
method, evaluates the Customer Agents' bids, and finally awards or rejects
them.  Its DESIRE process model (Figures 2 and 3) is attached as
``desire_model``; :meth:`process_round` realises the corresponding tasks at
runtime.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Optional, Sequence

from repro.agents.base import AgentBase
from repro.agents.generic import build_utility_agent_model
from repro.negotiation.messages import Announcement, Award, Bid
from repro.negotiation.methods.base import (
    NegotiationMethod,
    RoundEvaluation,
    UtilityContext,
)
from repro.negotiation.protocol import (
    MonotonicConcessionProtocol,
    NegotiationRecord,
    RoundRecord,
)
from repro.negotiation.termination import TerminationReason
from repro.runtime.messaging import Performative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.simulation import Simulation


class NegotiationPhase(Enum):
    """The Utility Agent's negotiation state."""

    IDLE = "idle"
    NEGOTIATING = "negotiating"
    FINISHED = "finished"


class UtilityAgent(AgentBase):
    """Negotiates load reductions with a population of Customer Agents."""

    def __init__(
        self,
        context: UtilityContext,
        method: NegotiationMethod,
        customer_agent_names: Sequence[str],
        conversation_id: str = "negotiation_1",
        producer_agent: Optional[str] = None,
        external_world: Optional[str] = None,
        check_protocol: bool = True,
        bid_deadline_rounds: Optional[int] = None,
        name: str = "utility_agent",
    ) -> None:
        super().__init__(name)
        if not customer_agent_names:
            raise ValueError("the Utility Agent needs at least one Customer Agent")
        self.context = context
        self.method = method
        self.customer_agent_names = list(customer_agent_names)
        self.conversation_id = conversation_id
        self.producer_agent = producer_agent
        self.external_world = external_world
        self.desire_model = build_utility_agent_model(name)
        self.protocol = MonotonicConcessionProtocol(strict=check_protocol)
        self.record = NegotiationRecord(
            conversation_id=conversation_id,
            normal_use=context.normal_use,
            initial_overuse=context.initial_overuse,
        )
        if bid_deadline_rounds is not None and bid_deadline_rounds < 1:
            raise ValueError(
                f"bid_deadline_rounds must be at least 1, got {bid_deadline_rounds}"
            )
        #: How many simulation rounds to wait for missing bids before
        #: evaluating the round without them.  ``None`` (the default) waits
        #: indefinitely — the fault-free behaviour, where every bid arrives on
        #: the next round anyway.
        self.bid_deadline_rounds = bid_deadline_rounds
        #: Customers whose bid ever missed a round deadline (protocol-level
        #: degradation: they contributed no bid — silent reject — instead of
        #: stalling the negotiation).
        self.degraded_customers: set[str] = set()
        self._rounds_waiting = 0
        self.phase = NegotiationPhase.IDLE
        self.current_round = 0
        self.current_announcement: Optional[Announcement] = None
        self._bids_this_round: dict[str, Bid] = {}
        self._previous_overuse = context.initial_overuse
        self.awards: dict[str, Award] = {}
        self.total_reward_paid = 0.0
        self.world_observations: list[dict[str, object]] = []
        self.producer_reports: list[dict[str, float]] = []

    # -- derived state ----------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.phase is NegotiationPhase.FINISHED

    @property
    def final_overuse(self) -> Optional[float]:
        return self.record.final_overuse

    # -- behaviour --------------------------------------------------------------------------

    def process_round(self, simulation: "Simulation") -> None:
        self._collect_information(simulation)
        if self.phase is NegotiationPhase.IDLE:
            self._maybe_start_negotiation(simulation)
        elif self.phase is NegotiationPhase.NEGOTIATING:
            self._collect_bids(simulation)
            if self._all_bids_received():
                self._evaluate_and_continue(simulation)
            elif self.bid_deadline_rounds is not None:
                self._rounds_waiting += 1
                if self._rounds_waiting >= self.bid_deadline_rounds:
                    # Deadline expired: the missing customers contribute no
                    # bid this round (zero cut-down, the protocol's silent
                    # reject) instead of stalling the whole negotiation.
                    expected = {
                        self._customer_id(name) for name in self.customer_agent_names
                    }
                    self.degraded_customers.update(
                        expected - set(self._bids_this_round)
                    )
                    self._evaluate_and_continue(simulation)

    # -- information acquisition (world / producer interaction management) ------------------

    def _collect_information(self, simulation: "Simulation") -> None:
        replies = self.incoming_matching(simulation, Performative.REPLY)
        informs = self.incoming_matching(simulation, Performative.INFORM)
        for message in replies + informs:
            if isinstance(message.content, dict):
                if message.sender == self.producer_agent:
                    self.producer_reports.append(message.content)
                else:
                    self.world_observations.append(message.content)
        if self._steps == 1:
            for source in (self.producer_agent, self.external_world):
                if source and simulation.bus.is_registered(source):
                    self.send(
                        simulation,
                        source,
                        Performative.REQUEST,
                        content={"requested": "status"},
                        conversation_id=self.conversation_id,
                    )

    # -- negotiation control (own process control / agent specific task) ----------------------

    def _maybe_start_negotiation(self, simulation: "Simulation") -> None:
        """Start negotiating when the predicted overuse warrants the effort."""
        if self.context.initial_overuse <= self.context.max_allowed_overuse:
            self.phase = NegotiationPhase.FINISHED
            self.record.final_overuse = self.context.initial_overuse
            self.record.termination_reason = TerminationReason.OVERUSE_ACCEPTABLE
            return
        announcement = self.method.initial_announcement(self.context)
        self.protocol.record_announcement(announcement)
        self.current_announcement = announcement
        self.current_round = 0
        self._bids_this_round = {}
        self._rounds_waiting = 0
        self.phase = NegotiationPhase.NEGOTIATING
        self.broadcast(
            simulation,
            self.customer_agent_names,
            Performative.ANNOUNCE,
            content=announcement,
            conversation_id=self.conversation_id,
            round_number=announcement.round_number,
        )

    # -- bid handling (cooperation management) -------------------------------------------------

    def _collect_bids(self, simulation: "Simulation") -> None:
        messages = self.incoming_matching(simulation, Performative.BID)
        for message in messages:
            bid = message.content
            if not isinstance(bid, Bid):
                continue
            if bid.round_number != self.current_round:
                continue
            self.protocol.record_bid(bid)
            self._bids_this_round[bid.customer] = bid

    def _all_bids_received(self) -> bool:
        expected = {self._customer_id(name) for name in self.customer_agent_names}
        return expected.issubset(set(self._bids_this_round))

    def _customer_id(self, agent_name: str) -> str:
        prefix = "customer_agent_"
        return agent_name[len(prefix):] if agent_name.startswith(prefix) else agent_name

    def _evaluate_and_continue(self, simulation: "Simulation") -> None:
        assert self.current_announcement is not None
        evaluation = self.method.evaluate_round(
            self.context, self.current_announcement, self._bids_this_round, self.current_round
        )
        self.record.rounds.append(
            RoundRecord(
                round_number=self.current_round,
                announcement=self.current_announcement,
                bids=dict(self._bids_this_round),
                predicted_overuse_before=self._previous_overuse,
                predicted_overuse_after=evaluation.predicted_overuse,
            )
        )
        self._previous_overuse = evaluation.predicted_overuse
        if evaluation.termination is not None:
            self._finish(simulation, evaluation, evaluation.termination)
            return
        next_announcement = self.method.next_announcement(
            self.context, self.current_announcement, evaluation, self.current_round
        )
        if next_announcement is None:
            self._finish(simulation, evaluation, TerminationReason.REWARD_SATURATED)
            return
        self.protocol.record_announcement(next_announcement)
        self.current_announcement = next_announcement
        self.current_round += 1
        self._bids_this_round = {}
        self._rounds_waiting = 0
        self.broadcast(
            simulation,
            self.customer_agent_names,
            Performative.ANNOUNCE,
            content=next_announcement,
            conversation_id=self.conversation_id,
            round_number=next_announcement.round_number,
        )

    def _finish(
        self,
        simulation: "Simulation",
        evaluation: RoundEvaluation,
        reason: TerminationReason,
    ) -> None:
        assert self.current_announcement is not None
        self.phase = NegotiationPhase.FINISHED
        self.record.termination_reason = reason
        self.record.final_overuse = evaluation.predicted_overuse
        cutdowns = self.method.committed_cutdowns(self.context, self._bids_this_round)
        rewards = self.method.rewards_due(
            self.context, self.current_announcement, self._bids_this_round
        )
        for agent_name in self.customer_agent_names:
            customer = self._customer_id(agent_name)
            accepted = evaluation.accepted_customers.get(customer, False)
            reward = rewards.get(customer, 0.0) if accepted else 0.0
            award = Award(
                customer=customer,
                accepted=accepted,
                committed_cutdown=cutdowns.get(customer, 0.0) if accepted else 0.0,
                reward=reward,
                round_number=self.current_round,
            )
            self.awards[customer] = award
            self.total_reward_paid += reward
            self.send(
                simulation,
                agent_name,
                Performative.AWARD if accepted else Performative.REJECT,
                content=award,
                conversation_id=self.conversation_id,
                round_number=self.current_round,
            )
        simulation.request_stop("negotiation finished")
