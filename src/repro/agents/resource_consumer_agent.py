"""Resource Consumer Agents.

Each Customer Agent negotiates with "its own Resource Consumer Agents" about
how a committed cut-down is implemented across the household's devices.  That
inner negotiation layer is outside the paper's scope, but the information flow
matters: a Customer Agent decides what it can offer "based on information
received from its Resource Consumer Agents on the amount of electricity that
can be saved in a given time interval" (Section 3.2.3).

A :class:`ResourceConsumerAgent` therefore wraps one appliance (or appliance
group) of a household, reports its saveable energy for a requested interval,
and accepts simple implementation instructions (the cut-down share allocated
to it) which it acknowledges.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.agents.base import AgentBase
from repro.grid.appliances import Appliance
from repro.grid.household import Household
from repro.grid.weather import WeatherSample
from repro.runtime.clock import TimeInterval
from repro.runtime.messaging import Performative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.simulation import Simulation


class ResourceConsumerAgent(AgentBase):
    """Represents one appliance group of one household."""

    def __init__(
        self,
        household: Household,
        appliance: Appliance,
        usage_scale: float,
        owner_agent: str,
        weather: Optional[WeatherSample] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or f"rca_{household.household_id}_{appliance.name}")
        if usage_scale < 0:
            raise ValueError("usage scale must be non-negative")
        self.household = household
        self.appliance = appliance
        self.usage_scale = usage_scale
        self.owner_agent = owner_agent
        self.weather = weather
        self._instructed_cutdown: float = 0.0

    # -- reporting ------------------------------------------------------------

    def saveable_energy(self, interval: TimeInterval) -> float:
        """Energy (kWh) this appliance could save in the interval."""
        if self.usage_scale == 0:
            return 0.0
        heating_factor = self.weather.heating_factor if self.weather is not None else 1.0
        profile = self.appliance.daily_profile(
            slots_per_day=self.household.slots_per_day,
            household_size=self.household.size,
            scale=self.usage_scale,
            heating_factor=heating_factor,
        )
        return (
            self.appliance.saveable_energy(profile, interval)
            * self.household.profile.flexibility_scale
        )

    def energy_in(self, interval: TimeInterval) -> float:
        """Energy (kWh) this appliance is expected to use in the interval."""
        if self.usage_scale == 0:
            return 0.0
        heating_factor = self.weather.heating_factor if self.weather is not None else 1.0
        profile = self.appliance.daily_profile(
            slots_per_day=self.household.slots_per_day,
            household_size=self.household.size,
            scale=self.usage_scale,
            heating_factor=heating_factor,
        )
        return profile.energy_in(interval)

    @property
    def instructed_cutdown(self) -> float:
        """The cut-down share most recently instructed by the Customer Agent."""
        return self._instructed_cutdown

    # -- behaviour ----------------------------------------------------------------

    def process_round(self, simulation: "Simulation") -> None:
        requests = self.incoming_matching(simulation, Performative.REQUEST)
        for request in requests:
            interval = request.content
            if not isinstance(interval, TimeInterval):
                continue
            self.send(
                simulation,
                request.sender,
                Performative.REPLY,
                content={
                    "appliance": self.appliance.name,
                    "saveable_kwh": self.saveable_energy(interval),
                    "energy_kwh": self.energy_in(interval),
                },
                conversation_id=request.conversation_id,
            )
        instructions = self.incoming_matching(simulation, Performative.INFORM)
        for instruction in instructions:
            content = instruction.content
            if isinstance(content, dict) and "cutdown" in content:
                cutdown = float(content["cutdown"])
                if 0.0 <= cutdown <= 1.0:
                    self._instructed_cutdown = cutdown
                    self.send(
                        simulation,
                        instruction.sender,
                        Performative.CONFIRM,
                        content={"appliance": self.appliance.name, "cutdown": cutdown},
                        conversation_id=instruction.conversation_id,
                    )
