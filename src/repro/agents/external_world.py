"""The External World.

In DESIRE the external world is modelled alongside the agents as a component
the agents interact with.  For the load-management system it supplies two
kinds of information (Section 5.1.4):

1. general information about the world itself — weather conditions, and
2. measurements of actual electricity consumption.

The :class:`ExternalWorld` participant answers ``REQUEST`` messages with
``REPLY`` messages carrying observation dictionaries, and can also push a
fresh observation to subscribed agents every round (the Utility Agent
subscribes so its *world interaction management* task receives data without
polling).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.agents.base import AgentBase
from repro.grid.demand import DemandModel, PopulationDemand
from repro.grid.weather import WeatherModel, WeatherSample
from repro.runtime.messaging import Performative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.simulation import Simulation


class ExternalWorld(AgentBase):
    """Weather and consumption measurements for the rest of the system."""

    def __init__(
        self,
        demand_model: Optional[DemandModel] = None,
        weather_model: Optional[WeatherModel] = None,
        weather: Optional[WeatherSample] = None,
        name: str = "external_world",
    ) -> None:
        super().__init__(name)
        self.demand_model = demand_model
        self.weather_model = weather_model or WeatherModel()
        self._weather = weather
        self._today: Optional[PopulationDemand] = None
        self._subscribers: list[str] = []

    # -- state -----------------------------------------------------------------

    @property
    def weather(self) -> WeatherSample:
        """Today's weather (drawn lazily if not fixed at construction)."""
        if self._weather is None:
            self._weather = self.weather_model.sample()
        return self._weather

    def set_weather(self, weather: WeatherSample) -> None:
        self._weather = weather
        self._today = None

    def realised_demand(self) -> Optional[PopulationDemand]:
        """Today's realised demand (``None`` when no demand model is attached)."""
        if self._today is None and self.demand_model is not None:
            self._today = self.demand_model.realise(self.weather)
        return self._today

    def subscribe(self, agent_name: str) -> None:
        """Have an observation pushed to ``agent_name`` every round."""
        if agent_name not in self._subscribers:
            self._subscribers.append(agent_name)

    def observation(self) -> dict[str, object]:
        """The observation dictionary sent to subscribers and requesters."""
        payload: dict[str, object] = {
            "weather_temperature_c": self.weather.temperature_c,
            "weather_condition": self.weather.condition.value,
            "heating_factor": self.weather.heating_factor,
        }
        demand = self.realised_demand()
        if demand is not None:
            payload["aggregate_peak_kw"] = demand.aggregate.peak()
            payload["aggregate_energy_kwh"] = demand.aggregate.total_energy()
        return payload

    # -- behaviour ---------------------------------------------------------------

    def process_round(self, simulation: "Simulation") -> None:
        requests = self.incoming_matching(simulation, Performative.REQUEST)
        for request in requests:
            self.send(
                simulation,
                request.sender,
                Performative.REPLY,
                content=self.observation(),
                conversation_id=request.conversation_id,
            )
        for subscriber in self._subscribers:
            if simulation.bus.is_registered(subscriber):
                self.send(
                    simulation,
                    subscriber,
                    Performative.INFORM,
                    content=self.observation(),
                    conversation_id="world_observations",
                )
