"""Vectorized customer population — the negotiation fast path's data plane.

The object-based runtime allocates one :class:`~repro.agents.customer_agent.
CustomerAgent` per household and one frozen message per delivery, which caps
practical population sizes at a few hundred households.  The paper, however,
frames the protocol around "a (large) number of Customer Agents".
:class:`VectorizedPopulation` removes the per-agent overhead: it holds all
customer state — predicted/allowed uses, cut-down capacities and the private
cut-down-reward requirement tables — in numpy arrays and evaluates every
customer's bid decision for a round in one batched call.

**When to use which path.**  Use the faithful object path
(:class:`~repro.core.session.NegotiationSession`) when you need the full
multi-agent machinery: DESIRE process models, Resource Consumer Agents,
producer/external-world information flows, or message-level traces.  Use the
fast path (:class:`~repro.core.fast_session.FastSession` over this class)
when you need throughput: population sweeps, parameter searches and
large-scale load-management runs.  For a fixed seed both paths produce the
same rounds, bids and outcomes — equivalence is enforced by
``tests/test_fast_session_equivalence.py``.

Exactness matters more than elegance here: every batched computation mirrors
the scalar code in :mod:`repro.negotiation.reward_table` and
:mod:`repro.negotiation.strategy` operation-for-operation (same comparison
epsilons, same float operation order) so the fast path is bit-identical, not
merely approximately equal.  Populations whose customers use heterogeneous
requirement grids run *grouped* kernels — customers are bucketed per distinct
grid and each bucket rides the shared-grid kernels, results scattered back
into population order — as long as the number of distinct grids stays within
:data:`GRID_GROUP_AUTO_CAP`; beyond that the scalar per-customer code stays
in charge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.negotiation.reward_table import CutdownRewardRequirements, RewardTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.population import CustomerPopulation, PopulationColumns
    from repro.agents.preferences import FleetRequirements
    from repro.negotiation.messages import OfferAnnouncement

#: Bound on each per-population kernel-cache kind (entries are per announced
#: table / per query vector; a negotiation touches one table per round, so a
#: handful of slots suffices to cover a round's kernel calls).
KERNEL_CACHE_SIZE = 8

#: Largest number of *distinct* requirement grids a heterogeneous population
#: may use and still run the grouped batched kernels.  Each distinct grid
#: becomes one sub-population with its own kernel caches; past this bound the
#: per-group batches degenerate towards one-customer groups and the scalar
#: per-customer code wins, so grouping is skipped.  The engine façade's
#: ``backend="auto"`` qualification applies the same bound, so the two can
#: never drift.
GRID_GROUP_AUTO_CAP = 32


def shares_requirement_grid(
    requirements: Sequence[CutdownRewardRequirements],
) -> bool:
    """Whether all requirement tables use one cut-down grid.

    This is *the* vectorizability criterion: when it holds the tables pack
    into one ``(num_customers, grid_size)`` matrix and the batched kernels
    apply; otherwise the scalar per-customer code stays in charge.  The
    engine façade's ``backend="auto"`` selection consults the same function,
    so the two can never drift.
    """
    first_grid = requirements[0].cutdowns()
    return all(table.cutdowns() == first_grid for table in requirements[1:])


class VectorizedPopulation:
    """All customer-side negotiation state of one population, as numpy arrays.

    Attributes
    ----------
    customer_ids:
        Customer identifiers, in population (spec) order; every array below is
        aligned with this order.
    predicted_uses / allowed_uses:
        Per-customer predicted and allowed (baseline) consumption in the peak
        interval.
    max_feasible_cutdowns:
        Per-customer physical cut-down limit (from the requirement tables).
    requirement_grid:
        The shared ascending cut-down grid of the requirement tables, or
        ``None`` when customers use heterogeneous grids (the grouped kernels
        or the scalar fallback take over).
    requirement_matrix:
        ``(num_customers, grid_size)`` matrix of required rewards, aligned
        with ``requirement_grid`` (``None`` for heterogeneous grids).
    """

    def __init__(
        self,
        customer_ids: Sequence[str],
        predicted_uses: Sequence[float],
        allowed_uses: Sequence[float],
        requirements: Sequence[CutdownRewardRequirements],
    ) -> None:
        if not customer_ids:
            raise ValueError("a vectorized population needs at least one customer")
        if not (
            len(customer_ids) == len(predicted_uses) == len(allowed_uses) == len(requirements)
        ):
            raise ValueError("customer ids, uses and requirements must align")
        self.customer_ids = list(customer_ids)
        self.predicted_uses = np.asarray(predicted_uses, dtype=float)
        self.allowed_uses = np.asarray(allowed_uses, dtype=float)
        self._requirements: Optional[list[CutdownRewardRequirements]] = list(requirements)
        self._requirements_source: Optional["FleetRequirements"] = None
        self.max_feasible_cutdowns = np.array(
            [r.max_feasible_cutdown for r in self._requirements], dtype=float
        )
        self.requirement_grid: Optional[np.ndarray] = None
        self.requirement_matrix: Optional[np.ndarray] = None
        self._build_requirement_matrix()
        self._reset_kernel_cache()

    @property
    def requirements(self) -> list[CutdownRewardRequirements]:
        """Per-customer requirement tables (materialised on first access).

        Columnar-built populations (:meth:`from_columnar`) defer these — the
        batched kernels run straight off :attr:`requirement_matrix` and only
        the heterogeneous-grid scalar fallbacks read table objects, which a
        shared-grid fleet population never hits.
        """
        if self._requirements is None:
            self._requirements = self._requirements_source.tables()
        return self._requirements

    def _reset_kernel_cache(self) -> None:
        self._required_rewards_cache: dict[tuple, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._interpolation_cache: dict[bytes, np.ndarray] = {}
        self.kernel_cache_hits = 0
        self.kernel_cache_misses = 0

    def _build_requirement_matrix(self) -> None:
        """Pack the requirement tables into one matrix when grids are shared.

        Heterogeneous-grid populations get :attr:`_grid_groups` instead: one
        shared-grid sub-population per distinct grid (bounded by
        :data:`GRID_GROUP_AUTO_CAP`), whose kernels the public kernels
        dispatch to group-by-group.
        """
        self._grid_groups = None
        if not shares_requirement_grid(self.requirements):
            self._grid_groups = self._build_grid_groups()
            return
        first_grid = self.requirements[0].cutdowns()
        self.requirement_grid = np.asarray(first_grid, dtype=float)
        self.requirement_matrix = np.array(
            [[r.requirements[c] for c in first_grid] for r in self.requirements],
            dtype=float,
        )

    def _build_grid_groups(
        self,
    ) -> Optional[list[tuple[np.ndarray, "VectorizedPopulation"]]]:
        """Group customers by requirement grid, in first-appearance order.

        Returns ``(population-row indices, shared-grid sub-population)``
        pairs, or ``None`` when the population uses more than
        :data:`GRID_GROUP_AUTO_CAP` distinct grids (the scalar per-customer
        path then stays in charge).  Every sub-population is shared-grid by
        construction, so its kernels are the proven bit-identical ones; a
        grouped kernel result scattered into population order therefore
        matches the scalar per-customer loop row for row.
        """
        grouped: dict[tuple, list[int]] = {}
        for row, table in enumerate(self.requirements):
            grouped.setdefault(tuple(table.cutdowns()), []).append(row)
        if len(grouped) > GRID_GROUP_AUTO_CAP:
            return None
        groups = []
        for rows in grouped.values():
            indices = np.array(rows, dtype=np.intp)
            sub = VectorizedPopulation(
                customer_ids=[self.customer_ids[row] for row in rows],
                predicted_uses=self.predicted_uses[indices],
                allowed_uses=self.allowed_uses[indices],
                requirements=[self.requirements[row] for row in rows],
            )
            groups.append((indices, sub))
        return groups

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_population(cls, population: "CustomerPopulation") -> "VectorizedPopulation":
        """Pack a :class:`~repro.agents.population.CustomerPopulation`.

        Lazy (columnar-backed) populations are packed straight from their
        planning arrays — no spec objects, no dict reward tables; spec-backed
        populations go through the per-spec path as before.  Both packings
        are bit-identical.
        """
        columns = population.columnar_view()
        if columns is not None:
            packed = cls.from_columnar(columns)
            if packed is not None:
                return packed
        specs = population.specs
        return cls(
            customer_ids=[s.customer_id for s in specs],
            predicted_uses=[s.predicted_use for s in specs],
            allowed_uses=[s.allowed_use for s in specs],
            requirements=[s.requirements for s in specs],
        )

    @classmethod
    def from_columnar(
        cls, columns: "PopulationColumns"
    ) -> Optional["VectorizedPopulation"]:
        """Pack a population directly from its columnar planning arrays.

        The requirement matrix and grid come verbatim from the
        :class:`~repro.agents.preferences.FleetRequirements` — the same
        float values an eager packing would read back out of the per-customer
        requirement dicts, so the two constructions are bit-identical.
        Returns ``None`` when the grid would not survive the requirement
        tables' key normalisation unchanged (rounding, ordering); the caller
        then falls back to the spec path, whose tables define the contract.
        """
        requirements = columns.requirements
        grid = [float(c) for c in requirements.grid]
        normalised = [round(c, 6) for c in grid]
        ascending = all(a < b for a, b in zip(normalised, normalised[1:]))
        in_range = all(0.0 <= c <= 1.0 for c in normalised)
        if normalised != grid or not ascending or not in_range:
            return None
        population = object.__new__(cls)
        population.customer_ids = list(columns.customer_ids)
        population.predicted_uses = np.asarray(columns.predicted_uses, dtype=float)
        population.allowed_uses = np.asarray(columns.allowed_uses, dtype=float)
        population._requirements = None
        population._requirements_source = requirements
        population.max_feasible_cutdowns = np.array(
            requirements.max_feasible, dtype=float
        )
        population.requirement_grid = np.asarray(grid, dtype=float)
        population.requirement_matrix = np.array(requirements.matrix, dtype=float)
        population._grid_groups = None
        population._reset_kernel_cache()
        return population

    @classmethod
    def concatenate(
        cls, populations: Sequence["VectorizedPopulation"]
    ) -> "VectorizedPopulation":
        """Pack several populations into one shared array arena, in order.

        The inverse of :meth:`slice`: ``concatenate(parts).slice(a, b)``
        hands back row views over the combined arrays covering exactly one
        part's customers.  Because every kernel is per-row (reductions only
        run along the grid axis, never across customers), kernel results on
        the combined population sliced back apart are bit-identical to
        kernels on the standalone parts — the property the serving layer's
        request coalescing rests on.

        All parts must be vectorizable on the *same* requirement grid
        (bit-equal grid arrays); anything else raises ``ValueError``, and the
        caller keeps those populations out of the batch instead.  Customer
        ids may repeat across parts (two requests about the same town are
        still two requests); slices keep them apart.
        """
        if not populations:
            raise ValueError("concatenate needs at least one population")
        first = populations[0]
        if first.requirement_grid is None:
            raise ValueError(
                "only vectorizable (shared-grid) populations can be "
                "concatenated; this one uses heterogeneous requirement grids"
            )
        for other in populations[1:]:
            if other.requirement_grid is None or not np.array_equal(
                other.requirement_grid, first.requirement_grid
            ):
                raise ValueError(
                    "populations must share one requirement grid to be "
                    "concatenated; mismatching grids negotiate separately"
                )
        if len(populations) == 1:
            return first
        combined = object.__new__(cls)
        combined.customer_ids = [
            customer for population in populations for customer in population.customer_ids
        ]
        combined.predicted_uses = np.concatenate(
            [population.predicted_uses for population in populations]
        )
        combined.allowed_uses = np.concatenate(
            [population.allowed_uses for population in populations]
        )
        # Materialised eagerly: the scalar fallbacks that read table objects
        # are never hit on a shared-grid population, but slice() and the
        # requirements property must stay well-defined on the combined arena.
        combined._requirements = [
            table for population in populations for table in population.requirements
        ]
        combined._requirements_source = None
        combined.max_feasible_cutdowns = np.concatenate(
            [population.max_feasible_cutdowns for population in populations]
        )
        combined.requirement_grid = first.requirement_grid
        combined.requirement_matrix = np.concatenate(
            [population.requirement_matrix for population in populations]
        )
        combined._grid_groups = None
        combined._reset_kernel_cache()
        return combined

    # -- basic views ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.customer_ids)

    @property
    def is_vectorizable(self) -> bool:
        """Whether the batched kernels apply.

        True when all customers share one requirement grid (one matrix, the
        fastest flavour) *or* when they bucket into at most
        :data:`GRID_GROUP_AUTO_CAP` per-grid groups (grouped kernels).  Only
        populations beyond the group cap run the scalar per-customer code.
        """
        return self.requirement_grid is not None or self._grid_groups is not None

    @property
    def num_grid_groups(self) -> int:
        """Distinct-grid group count (0 for shared-grid/scalar populations)."""
        return len(self._grid_groups) if self._grid_groups is not None else 0

    # -- sharding ---------------------------------------------------------------

    def slice(self, start: int, stop: int) -> "VectorizedPopulation":
        """A shard of this population covering customers ``[start, stop)``.

        The shard shares the parent's numpy arrays (row views, no copies) so a
        :class:`~repro.agents.sharded.ShardedPopulation` over 50k households
        costs no extra memory.  A shard inherits the parent's kernel flavour:
        a shared-grid parent yields shared-grid shards, a grouped
        (heterogeneous) parent yields grouped shards — rebuilt from the
        shard's own rows — and a beyond-the-cap scalar parent yields scalar
        shards even when the sliced rows happen to share one grid, so every
        shard of one population runs a batched flavour exactly when the
        parent does.  Each shard owns its own kernel cache (caches are not
        thread-shared).
        """
        if not 0 <= start < stop <= len(self.customer_ids):
            raise ValueError(
                f"invalid shard range [{start}, {stop}) for a population of "
                f"{len(self.customer_ids)} customers"
            )
        shard = object.__new__(VectorizedPopulation)
        shard.customer_ids = self.customer_ids[start:stop]
        shard.predicted_uses = self.predicted_uses[start:stop]
        shard.allowed_uses = self.allowed_uses[start:stop]
        if self._requirements is None:
            # Columnar parent: shards stay lazy too (row views, no tables).
            shard._requirements = None
            shard._requirements_source = self._requirements_source.slice(start, stop)
        else:
            shard._requirements = self._requirements[start:stop]
            shard._requirements_source = None
        shard.max_feasible_cutdowns = self.max_feasible_cutdowns[start:stop]
        shard.requirement_grid = self.requirement_grid
        shard.requirement_matrix = (
            None if self.requirement_matrix is None
            else self.requirement_matrix[start:stop]
        )
        if self.requirement_grid is None and self._grid_groups is not None:
            # A grouped parent's rows all carry materialised tables, so the
            # shard regroups its own rows (possibly fewer, never more grids).
            shard._grid_groups = shard._build_grid_groups()
        else:
            shard._grid_groups = None
        shard._reset_kernel_cache()
        return shard

    # -- kernel cache -----------------------------------------------------------

    def kernel_cache_stats(self) -> dict[str, int]:
        """Hit/miss counters of the per-round kernel cache (observability).

        Grouped populations roll the per-group sub-population counters up, so
        the numbers reflect every batched kernel run on this population's
        behalf.
        """
        hits, misses = self.kernel_cache_hits, self.kernel_cache_misses
        if self._grid_groups is not None:
            for __, sub in self._grid_groups:
                hits += sub.kernel_cache_hits
                misses += sub.kernel_cache_misses
        return {"hits": hits, "misses": misses}

    def _gather_scatter(self, kernel) -> np.ndarray:
        """Run ``kernel(sub, rows)`` per grid group and scatter into place."""
        out = np.zeros(len(self.customer_ids))
        for indices, sub in self._grid_groups:
            out[indices] = kernel(sub, indices)
        return out

    @staticmethod
    def _cache_store(cache: dict, key, value):
        """FIFO-bounded insert; returns ``value`` for call-through style."""
        if len(cache) >= KERNEL_CACHE_SIZE:
            cache.pop(next(iter(cache)))
        cache[key] = value
        return value

    # -- reward-table bidding (batched) ------------------------------------------

    def _required_rewards_for(self, table: RewardTable) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-customer required rewards aligned with the announced table's grid.

        Returns ``(table_grid, offered_rewards, required_matrix)`` where the
        matrix holds ``inf`` for cut-downs a customer's requirement table does
        not cover (never acceptable, matching the scalar ``dict.get`` miss)
        and ``0`` for the zero cut-down (always acceptable).

        The triplet is cached per table content (the negotiation announces one
        table per round), so the bidding kernels, acceptance masks and any
        re-evaluation of the same round's table share one computation.  Cached
        arrays are frozen read-only; kernels treat them as immutable inputs.
        """
        key = ("required", tuple(sorted(table.entries.items())))
        cached = self._required_rewards_cache.get(key)
        if cached is not None:
            self.kernel_cache_hits += 1
            return cached
        self.kernel_cache_misses += 1
        triplet = self._compute_required_rewards(table)
        for array in triplet:
            array.setflags(write=False)
        return self._cache_store(self._required_rewards_cache, key, triplet)

    def _compute_required_rewards(self, table: RewardTable) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        assert self.requirement_grid is not None and self.requirement_matrix is not None
        table_cutdowns = table.cutdowns()
        table_grid = np.asarray(table_cutdowns, dtype=float)
        offered = np.array([table.entries[c] for c in table_cutdowns], dtype=float)
        grid_size = self.requirement_grid.shape[0]
        columns = np.searchsorted(self.requirement_grid, table_grid)
        clamped = np.minimum(columns, grid_size - 1)
        covered = self.requirement_grid[clamped] == table_grid
        required = np.where(
            covered[None, :],
            self.requirement_matrix[:, clamped],
            np.inf,
        )
        required[:, table_grid == 0.0] = 0.0
        return table_grid, offered, required

    def _acceptable_mask(
        self, table_grid: np.ndarray, offered: np.ndarray, required: np.ndarray
    ) -> np.ndarray:
        """Mirror of ``CutdownRewardRequirements.is_acceptable`` per cell."""
        feasible = table_grid[None, :] <= self.max_feasible_cutdowns[:, None] + 1e-12
        return feasible & (offered[None, :] >= required)

    def highest_acceptable_cutdowns(self, table: RewardTable) -> np.ndarray:
        """Batched ``CutdownRewardRequirements.highest_acceptable_cutdown``."""
        if self.requirement_grid is None:
            if self._grid_groups is not None:
                return self._gather_scatter(
                    lambda sub, rows: sub.highest_acceptable_cutdowns(table)
                )
            return np.array(
                [r.highest_acceptable_cutdown(table) for r in self.requirements]
            )
        table_grid, offered, required = self._required_rewards_for(table)
        acceptable = self._acceptable_mask(table_grid, offered, required)
        return np.where(acceptable, table_grid[None, :], 0.0).max(axis=1)

    def expected_gain_cutdowns(self, table: RewardTable) -> np.ndarray:
        """Batched ``ExpectedGainBidding.choose_cutdown`` (without history).

        Among acceptable positive cut-downs, pick the one with the largest
        surplus (offered minus required reward); ties go to the larger
        cut-down, exactly as the scalar policy's scan does.
        """
        if self.requirement_grid is None:
            if self._grid_groups is not None:
                return self._gather_scatter(
                    lambda sub, rows: sub.expected_gain_cutdowns(table)
                )
            from repro.negotiation.strategy import ExpectedGainBidding

            policy = ExpectedGainBidding()
            return np.array(
                [policy.choose_cutdown(table, r) for r in self.requirements]
            )
        table_grid, offered, required = self._required_rewards_for(table)
        acceptable = self._acceptable_mask(table_grid, offered, required)
        eligible = acceptable & (table_grid[None, :] > 0.0)
        surplus = np.where(eligible, offered[None, :] - required, -np.inf)
        best = surplus.max(axis=1)
        chosen = np.where(surplus == best[:, None], table_grid[None, :], 0.0).max(axis=1)
        return np.where(np.isneginf(best), 0.0, chosen)

    def table_rewards(self, table: RewardTable, cutdowns: np.ndarray) -> np.ndarray:
        """Batched ``RewardTable.reward_for`` over per-customer cut-downs.

        A cut-down not exactly on the announced table's grid earns nothing
        (the scalar lookup's ``KeyError → 0.0`` miss), as does the zero
        cut-down.  The bidding kernels only ever produce grid values or
        zero, so for kernel-computed cut-downs this is an exact lookup.
        Rides the cached required-reward triplet, sharing the round's grid
        with the bidding kernels.
        """
        if self.requirement_grid is None and self._grid_groups is not None:
            all_queries = np.asarray(cutdowns, dtype=float)
            return self._gather_scatter(
                lambda sub, rows: sub.table_rewards(table, all_queries[rows])
            )
        table_grid, offered, _required = self._required_rewards_for(table)
        queries = np.asarray(cutdowns, dtype=float)
        columns = np.searchsorted(table_grid, queries)
        clamped = np.minimum(columns, table_grid.shape[0] - 1)
        on_grid = table_grid[clamped] == queries
        return np.where(on_grid & (queries > 0.0), offered[clamped], 0.0)

    # -- requirement interpolation (batched) ---------------------------------------

    def interpolated_requirements(self, cutdowns: np.ndarray) -> np.ndarray:
        """Batched ``CutdownRewardRequirements.interpolated_requirement``.

        Linear interpolation between grid points, last-segment-slope
        extrapolation beyond the grid, proportional extrapolation below it and
        ``inf`` beyond the customer's feasible cut-down — operation-for-
        operation identical to the scalar code.

        Results are cached per query vector (keyed by its bytes), so repeated
        evaluations within a round — e.g. the request-for-bids method querying
        an unchanged needs vector, or the surplus accounting replaying the
        final committed cut-downs — reuse the round's computation.  Cached
        arrays are frozen read-only.
        """
        cutdowns = np.asarray(cutdowns, dtype=float)
        if np.any((cutdowns < 0.0) | (cutdowns > 1.0)):
            raise ValueError("cut-down fractions must be in [0, 1]")
        key = cutdowns.tobytes()
        cached = self._interpolation_cache.get(key)
        if cached is not None:
            self.kernel_cache_hits += 1
            return cached
        self.kernel_cache_misses += 1
        result = self._compute_interpolated_requirements(cutdowns)
        result.setflags(write=False)
        return self._cache_store(self._interpolation_cache, key, result)

    def _compute_interpolated_requirements(self, cutdowns: np.ndarray) -> np.ndarray:
        if self.requirement_grid is None:
            if self._grid_groups is not None:
                return self._gather_scatter(
                    lambda sub, rows: sub.interpolated_requirements(cutdowns[rows])
                )
            return np.array(
                [
                    r.interpolated_requirement(float(x))
                    for r, x in zip(self.requirements, cutdowns)
                ]
            )
        grid = self.requirement_grid
        values = self.requirement_matrix
        grid_size = grid.shape[0]
        x = np.round(cutdowns, 6)
        rows = np.arange(len(self.customer_ids))
        result = np.zeros(len(self.customer_ids), dtype=float)

        infeasible = x > self.max_feasible_cutdowns + 1e-12
        zero = (x == 0.0) & ~infeasible
        position = np.searchsorted(grid, x, side="left")
        clamped = np.minimum(position, grid_size - 1)
        exact = (position < grid_size) & (grid[clamped] == x) & ~infeasible & ~zero
        open_cases = ~(infeasible | zero | exact)

        result[infeasible] = np.inf
        result[exact] = values[rows[exact], position[exact]]

        # Between two grid points: linear interpolation (scalar formula:
        # low_value + fraction * (high_value - low_value)).
        between = open_cases & (position > 0) & (position < grid_size)
        if np.any(between):
            row = rows[between]
            high_index = position[between]
            low = grid[high_index - 1]
            high = grid[high_index]
            low_value = values[row, high_index - 1]
            high_value = values[row, high_index]
            fraction = (x[between] - low) / (high - low)
            result[between] = low_value + fraction * (high_value - low_value)

        # Beyond the last grid point: extrapolate with the last segment's slope.
        beyond = open_cases & (position == grid_size)
        if np.any(beyond):
            row = rows[beyond]
            if grid_size >= 2:
                second, last = grid[-2], grid[-1]
                slope = (values[row, -1] - values[row, -2]) / (last - second)
            else:
                last = grid[-1]
                slope = values[row, -1] / last if last > 0 else np.zeros(len(row))
            result[beyond] = values[row, -1] + slope * (x[beyond] - grid[-1])

        # Below the first grid point: proportional to the first requirement.
        below = open_cases & (position == 0)
        if np.any(below):
            row = rows[below]
            result[below] = values[row, 0] * (x[below] / grid[0])
        return result

    # -- request-for-bids stepping (batched) ---------------------------------------

    def step_quantity_bids(
        self,
        current_needs: np.ndarray,
        step_fraction: float,
        peak_hours: float,
        normal_price: float,
    ) -> np.ndarray:
        """Batched ``RequestForBidsMethod.respond``: step forward or stand still.

        Mirrors ``_step_is_worthwhile``: a customer moves one step forward when
        the financial gain of the saved peak energy covers the marginal
        discomfort of the implied cut-down, and the implied cut-down stays
        physically feasible; otherwise it repeats its previous bid.
        """
        predicted = self.predicted_uses
        candidate = np.maximum(0.0, current_needs - step_fraction * predicted)
        with np.errstate(divide="ignore", invalid="ignore"):
            safe_predicted = np.where(predicted > 0.0, predicted, 1.0)
            implied = 1.0 - candidate / safe_predicted
            current_cutdown = np.maximum(0.0, 1.0 - current_needs / safe_predicted)
            possible = (
                (predicted > 0.0)
                & (candidate < current_needs)
                & ~(implied > self.max_feasible_cutdowns)
            )
            discomfort_delta = self.interpolated_requirements(
                np.clip(implied, 0.0, 1.0)
            ) - self.interpolated_requirements(np.clip(current_cutdown, 0.0, 1.0))
            saved_energy = (current_needs - candidate) * peak_hours
            financial_gain = saved_energy * normal_price
            worthwhile = possible & (financial_gain >= discomfort_delta)
        return np.where(worthwhile, candidate, current_needs)

    # -- offer-method evaluation (batched) ------------------------------------------

    def offer_acceptances(
        self, announcement: "OfferAnnouncement", peak_hours: float
    ) -> np.ndarray:
        """Batched ``OfferMethod._deal_is_worthwhile``: one bool per customer.

        A customer accepts when it is already within the allowance, or when
        the price saving of complying (normal-price bill on the prediction
        minus lower-price bill on the allowance) covers the monetised
        discomfort of the required cut-down; customers that cannot physically
        reach the allowance decline.  Operation order mirrors the scalar code
        exactly, so the decisions are bit-identical.
        """
        allowances = announcement.x_max * self.allowed_uses
        predicted = self.predicted_uses
        within = predicted <= allowances
        with np.errstate(divide="ignore", invalid="ignore"):
            safe_predicted = np.where(predicted > 0.0, predicted, 1.0)
            required = 1.0 - allowances / safe_predicted
        infeasible = ~within & (required > self.max_feasible_cutdowns)
        undecided = ~within & ~infeasible
        discomfort = self.interpolated_requirements(np.where(undecided, required, 0.0))
        tariff = announcement.tariff
        bill_normal = (predicted * peak_hours) * tariff.normal_price
        bill_deal = (allowances * peak_hours) * tariff.lower_price
        saving = bill_normal - bill_deal
        return within | (undecided & (saving >= discomfort))

    # -- outcome helpers ----------------------------------------------------------

    def realised_surpluses(
        self, committed_cutdowns: np.ndarray, rewards: np.ndarray
    ) -> np.ndarray:
        """Batched ``CustomerAgent.realised_surplus`` for awarded customers."""
        discomfort = self.interpolated_requirements(committed_cutdowns)
        return np.where(np.isinf(discomfort), rewards, rewards - discomfort)
