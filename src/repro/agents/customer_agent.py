"""The Customer Agent (CA).

A Customer Agent supports one household in the negotiation with the Utility
Agent: it receives announcements, evaluates them against the household's
private cut-down-reward requirements, responds with bids according to its
bidding policy, and — when a bid is awarded — instructs its Resource Consumer
Agents how to implement the committed cut-down.

The agent's DESIRE process model (Figures 4 and 5) is attached as
``desire_model``; the runtime behaviour in :meth:`process_round` realises the
*cooperation management* and *agent interaction management* tasks of that
model for the announcement method in use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.agents.base import AgentBase
from repro.agents.generic import build_customer_agent_model
from repro.agents.resource_consumer_agent import ResourceConsumerAgent
from repro.negotiation.messages import Announcement, Award, Bid
from repro.negotiation.methods.base import CustomerContext, NegotiationMethod
from repro.runtime.messaging import Performative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.simulation import Simulation


class CustomerAgent(AgentBase):
    """Negotiates with the Utility Agent on behalf of one household."""

    def __init__(
        self,
        context: CustomerContext,
        method: NegotiationMethod,
        resource_consumers: Optional[Sequence[ResourceConsumerAgent]] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or f"customer_agent_{context.customer}")
        self.context = context
        self.method = method
        self.resource_consumers = list(resource_consumers or [])
        self.desire_model = build_customer_agent_model(self.name)
        #: Bid history, oldest first (monotonic concession is visible here).
        self.bid_history: list[Bid] = []
        #: The peak interval of the negotiation currently in progress (taken
        #: from the announcements; used to build implementation instructions).
        self.negotiation_interval = None
        #: The award received at the end of the negotiation, if any.
        self.award: Optional[Award] = None
        #: Rewards collected across negotiations (for surplus accounting).
        self.total_reward_received: float = 0.0

    # -- derived state -------------------------------------------------------------

    @property
    def customer_id(self) -> str:
        return self.context.customer

    @property
    def last_bid(self) -> Optional[Bid]:
        return self.bid_history[-1] if self.bid_history else None

    @property
    def committed_cutdown(self) -> float:
        """The cut-down the customer is committed to after an award (else 0)."""
        if self.award is not None and self.award.accepted:
            return self.award.committed_cutdown
        return 0.0

    # -- behaviour ---------------------------------------------------------------------

    def process_round(self, simulation: "Simulation") -> None:
        self._respond_to_announcements(simulation)
        self._handle_awards(simulation)

    def _respond_to_announcements(self, simulation: "Simulation") -> None:
        announcements = self.incoming_matching(simulation, Performative.ANNOUNCE)
        for message in announcements:
            announcement = message.content
            if not isinstance(announcement, Announcement):
                continue
            if announcement.interval is not None:
                self.negotiation_interval = announcement.interval
            bid = self.method.respond(announcement, self.context, self.last_bid)
            self.bid_history.append(bid)
            self.send(
                simulation,
                message.sender,
                Performative.BID,
                content=bid,
                conversation_id=message.conversation_id,
                round_number=announcement.round_number,
            )

    def _handle_awards(self, simulation: "Simulation") -> None:
        awards = self.incoming_matching(simulation, Performative.AWARD)
        rejects = self.incoming_matching(simulation, Performative.REJECT)
        for message in awards + rejects:
            award = message.content
            if not isinstance(award, Award):
                continue
            self.award = award
            if award.accepted:
                self.total_reward_received += award.reward
                self._instruct_resource_consumers(simulation, award)

    def _instruct_resource_consumers(self, simulation: "Simulation", award: Award) -> None:
        """Allocate the committed cut-down across the household's devices.

        The :class:`~repro.agents.allocation.CutdownAllocator` curtails the
        most flexible devices first — the *determine implementation
        instructions* task of Figure 5 — and the resulting per-device
        fractions are sent to the Resource Consumer Agents.  Without a known
        peak interval the allocation falls back to a flexibility-capped flat
        cut-down per device.
        """
        if not self.resource_consumers or award.committed_cutdown <= 0:
            return
        interval = self.negotiation_interval
        instructions: dict[str, float]
        if interval is not None:
            from repro.agents.allocation import CutdownAllocator

            plan = CutdownAllocator().allocate(
                self.resource_consumers, interval, award.committed_cutdown
            )
            instructions = plan.instructions()
        else:
            instructions = {
                consumer.name: min(award.committed_cutdown, consumer.appliance.flexibility)
                for consumer in self.resource_consumers
            }
        for consumer in self.resource_consumers:
            if simulation.bus.is_registered(consumer.name):
                self.send(
                    simulation,
                    consumer.name,
                    Performative.INFORM,
                    content={"cutdown": instructions.get(consumer.name, 0.0)},
                    conversation_id="implementation",
                )

    # -- introspection (used by analysis and tests) ---------------------------------------

    def bids_as_cutdowns(self) -> list[float]:
        """The cut-down fraction of every bid made so far (0 for non-cut-down bids)."""
        cutdowns = []
        for bid in self.bid_history:
            cutdowns.append(getattr(bid, "cutdown", 0.0))
        return cutdowns

    def realised_surplus(self) -> float:
        """Reward received minus the monetised discomfort of the committed cut-down."""
        if self.award is None or not self.award.accepted:
            return 0.0
        discomfort = self.context.requirements.interpolated_requirement(
            self.award.committed_cutdown
        )
        if discomfort == float("inf"):
            return self.award.reward
        return self.award.reward - discomfort
