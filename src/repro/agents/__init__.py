"""The agents of the paper (Section 5).

* :mod:`repro.agents.generic` — the generic agent model of [4] with its seven
  generic tasks, plus the refined DESIRE component hierarchies of Figures 2-5
  for the Utility Agent and the Customer Agent.
* :mod:`repro.agents.base` — the runtime base class connecting an agent to
  the message bus and the round-synchronous simulation.
* :mod:`repro.agents.utility_agent` — the Utility Agent (UA).
* :mod:`repro.agents.customer_agent` — the Customer Agent (CA).
* :mod:`repro.agents.producer_agent` — the Producer Agent (information source
  for availability and cost of electricity).
* :mod:`repro.agents.resource_consumer_agent` — Resource Consumer Agents
  reporting saveable energy per household device group.
* :mod:`repro.agents.external_world` — the External World (weather and
  consumption measurements).
* :mod:`repro.agents.preferences` — building customer cut-down-reward
  requirement tables from household characteristics.
* :mod:`repro.agents.population` — generating Customer Agent populations.
* :mod:`repro.agents.vectorized` — :class:`VectorizedPopulation`: all
  customer state in numpy arrays, batched bid decisions for the negotiation
  fast path.
* :mod:`repro.agents.sharded` — :class:`ShardedPopulation`: contiguous
  zero-copy shards of a vectorized population whose per-round kernels fan
  out to a worker pool (the sharded runtime's data plane).
"""

from repro.agents.sharded import ShardedPopulation

from repro.agents.base import AgentBase
from repro.agents.customer_agent import CustomerAgent
from repro.agents.external_world import ExternalWorld
from repro.agents.generic import (
    GENERIC_AGENT_TASKS,
    build_customer_agent_model,
    build_generic_agent_model,
    build_utility_agent_model,
)
from repro.agents.population import CustomerPopulation, PopulationConfig
from repro.agents.preferences import CustomerPreferenceModel
from repro.agents.producer_agent import ProducerAgent
from repro.agents.resource_consumer_agent import ResourceConsumerAgent
from repro.agents.utility_agent import UtilityAgent
from repro.agents.vectorized import VectorizedPopulation

__all__ = [
    "AgentBase",
    "CustomerAgent",
    "CustomerPopulation",
    "CustomerPreferenceModel",
    "ExternalWorld",
    "GENERIC_AGENT_TASKS",
    "PopulationConfig",
    "ProducerAgent",
    "ResourceConsumerAgent",
    "ShardedPopulation",
    "UtilityAgent",
    "VectorizedPopulation",
    "build_customer_agent_model",
    "build_generic_agent_model",
    "build_utility_agent_model",
]
