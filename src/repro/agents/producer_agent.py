"""The Producer Agent.

The Utility Agent acquires "information from Producer Agent (e.g.,
availability of electricity and cost)" (Section 5.1).  Negotiation *between*
the Utility Agent and Producer Agents is out of scope for the paper (and for
this reproduction); the Producer Agent is therefore an information source: it
answers requests with the current production capacity and marginal costs,
derived from a :class:`~repro.grid.production.ProductionModel`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.agents.base import AgentBase
from repro.grid.production import ProductionModel
from repro.runtime.messaging import Performative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.simulation import Simulation


class ProducerAgent(AgentBase):
    """Reports production availability and cost to the Utility Agent."""

    def __init__(self, production: ProductionModel, name: str = "producer_agent") -> None:
        super().__init__(name)
        self.production = production

    def capacity_report(self) -> dict[str, float]:
        """The information content sent to requesters."""
        return {
            "normal_capacity_kw": self.production.normal_capacity_kw,
            "total_capacity_kw": self.production.total_capacity_kw,
            "normal_cost": self.production.normal_cost,
            "peak_cost": self.production.peak_cost,
        }

    def process_round(self, simulation: "Simulation") -> None:
        requests = self.incoming_matching(simulation, Performative.REQUEST)
        for request in requests:
            self.send(
                simulation,
                request.sender,
                Performative.REPLY,
                content=self.capacity_report(),
                conversation_id=request.conversation_id,
            )
