"""Customer preference models: building cut-down-reward requirement tables.

"Within the Customer Agent, knowledge of the customers preferences is
represented in the form of a cut-down-reward table" (Section 6.2).  The table
is private to the customer; this module constructs it either

* directly from explicit anchor points (for the paper's calibrated Figure 8/9
  customer and for unit tests), or
* from household characteristics: a convex discomfort function scaled by the
  household's comfort weight and the energy at stake, truncated at the
  physically feasible cut-down reported by the Resource Consumer Agents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from repro.grid.household import Household
from repro.grid.weather import WeatherSample
from repro.negotiation.reward_table import (
    DEFAULT_CUTDOWN_GRID,
    CutdownRewardRequirements,
)
from repro.runtime.clock import TimeInterval
from repro.runtime.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.grid.fleet import HouseholdFleet


@dataclass(frozen=True)
class FleetRequirements:
    """Requirement tables for a whole fleet, in columnar form.

    ``matrix`` is the full ``(num_households, grid)`` required-reward table —
    row ``i`` carries the same values as the scalar
    :meth:`CustomerPreferenceModel.requirements_for_household` table of
    household ``i`` (bit-identical); ``max_feasible`` and ``energies`` are the
    per-household physical cut-down limits and peak-interval energies the
    tables were derived from.
    """

    grid: tuple[float, ...]
    matrix: np.ndarray
    max_feasible: np.ndarray
    energies: np.ndarray

    def __len__(self) -> int:
        return self.matrix.shape[0]

    def tables(self) -> list[CutdownRewardRequirements]:
        """Materialise one :class:`CutdownRewardRequirements` per household."""
        grid = self.grid
        return [
            CutdownRewardRequirements(
                requirements=dict(zip(grid, row)),
                max_feasible_cutdown=feasible,
            )
            for row, feasible in zip(self.matrix.tolist(), self.max_feasible.tolist())
        ]

    def slice(self, start: int, stop: int) -> "FleetRequirements":
        """Requirements for households ``[start, stop)`` (row views, no copies).

        Used by the sharded runtime to keep each shard of a lazily
        materialised population columnar.
        """
        return FleetRequirements(
            grid=self.grid,
            matrix=self.matrix[start:stop],
            max_feasible=self.max_feasible[start:stop],
            energies=self.energies[start:stop],
        )


@dataclass
class CustomerPreferenceModel:
    """Parametric model of a customer's discomfort-versus-reward trade-off.

    The required reward for a cut-down fraction ``x`` is::

        required(x) = comfort_weight * discomfort_scale * energy_at_stake * x ** exponent

    * ``comfort_weight`` — household-specific attitude (from
      :class:`~repro.grid.household.HouseholdProfile`).
    * ``discomfort_scale`` — currency per kWh of forgone consumption at full
      cut-down (calibrated so typical rewards land in the same range as the
      paper's prototype figures).
    * ``energy_at_stake`` — the household's predicted energy in the peak
      interval (kWh); bigger consumers need bigger absolute rewards.
    * ``exponent`` — convexity: the first 10% cut hurts far less than the
      last 10%.
    """

    comfort_weight: float = 1.0
    discomfort_scale: float = 2.0
    exponent: float = 1.8
    grid: Sequence[float] = DEFAULT_CUTDOWN_GRID

    def __post_init__(self) -> None:
        if self.comfort_weight <= 0:
            raise ValueError("comfort weight must be positive")
        if self.discomfort_scale <= 0:
            raise ValueError("discomfort scale must be positive")
        if self.exponent <= 0:
            raise ValueError("exponent must be positive")

    def requirements_for_energy(
        self, energy_at_stake_kwh: float, max_feasible_cutdown: float = 1.0
    ) -> CutdownRewardRequirements:
        """Requirement table for a given amount of peak-interval energy."""
        if energy_at_stake_kwh < 0:
            raise ValueError("energy at stake must be non-negative")
        requirements = {}
        for cutdown in self.grid:
            if cutdown == 0.0:
                requirements[0.0] = 0.0
                continue
            requirements[cutdown] = (
                self.comfort_weight
                * self.discomfort_scale
                * energy_at_stake_kwh
                * (cutdown ** self.exponent)
            )
        return CutdownRewardRequirements(
            requirements=requirements, max_feasible_cutdown=max_feasible_cutdown
        )

    def requirements_for_household(
        self,
        household: Household,
        interval: TimeInterval,
        weather: Optional[WeatherSample] = None,
    ) -> CutdownRewardRequirements:
        """Requirement table for a concrete household and peak interval.

        The energy at stake is the household's predicted energy in the
        interval; the feasible cut-down is what its appliances can deliver
        (as its Resource Consumer Agents would report).
        """
        energy = household.demand_profile(weather).energy_in(interval)
        max_feasible = household.max_cutdown_fraction(interval, weather)
        model = CustomerPreferenceModel(
            comfort_weight=self.comfort_weight * household.profile.comfort_weight,
            discomfort_scale=self.discomfort_scale,
            exponent=self.exponent,
            grid=self.grid,
        )
        return model.requirements_for_energy(energy, max_feasible)

    def requirements_for_fleet(
        self,
        fleet: "HouseholdFleet",
        interval: TimeInterval,
        weather: Optional[WeatherSample] = None,
        comfort_weights: Optional[Union[Sequence[float], np.ndarray]] = None,
    ) -> FleetRequirements:
        """The full ``(num_households, grid)`` requirement matrix, batched.

        One broadcasted expression replaces the per-household
        :meth:`requirements_for_household` loop: the fleet kernels deliver the
        per-household peak-interval energies and feasible cut-downs, and the
        matrix is ``(comfort x scale x energy) x grid**exponent`` — the same
        float operations in the same order as the scalar path, so row ``i`` is
        bit-identical to household ``i``'s scalar table.

        ``comfort_weights`` optionally replaces the model's scalar
        ``comfort_weight`` with a per-household vector (used by the synthetic
        population generator, whose customers each sample their own base
        attitude); either way the household's own comfort weight multiplies in
        exactly as in the scalar path.
        """
        energies = fleet.energy_in(interval, weather)
        max_feasible = fleet.max_cutdown_fractions(
            interval, weather, demand_energies=energies
        )
        if comfort_weights is None:
            base = np.full(len(fleet), self.comfort_weight)
        else:
            base = np.asarray(comfort_weights, dtype=float)
            if base.shape != (len(fleet),):
                raise ValueError("comfort_weights must have one entry per household")
        effective = base * fleet.comfort_weights
        grid = tuple(float(c) for c in self.grid)
        # Python ** matches the scalar path bit-for-bit; np.power can differ
        # in the last ulp for some bases.
        powers = np.array([c ** self.exponent for c in grid])
        scale = (effective * self.discomfort_scale) * energies
        matrix = scale[:, None] * powers[None, :]
        zero_columns = [index for index, c in enumerate(grid) if c == 0.0]
        if zero_columns:
            matrix[:, zero_columns] = 0.0
        matrix.setflags(write=False)
        max_feasible.setflags(write=False)
        energies.setflags(write=False)
        return FleetRequirements(
            grid=grid, matrix=matrix, max_feasible=max_feasible, energies=energies
        )

    @classmethod
    def sample(cls, random: RandomSource, grid: Sequence[float] = DEFAULT_CUTDOWN_GRID) -> "CustomerPreferenceModel":
        """Draw a heterogeneous preference model for one customer."""
        return cls(
            comfort_weight=max(0.3, random.lognormal(0.0, 0.4)),
            discomfort_scale=max(0.5, random.normal(2.0, 0.5)),
            exponent=max(1.1, random.normal(1.8, 0.25)),
            grid=grid,
        )
