"""Allocating a committed cut-down across a household's devices.

Once a Customer Agent's bid is awarded it must "determine implementation
instructions" for its Resource Consumer Agents (Figure 5): which appliances
reduce by how much so that the household as a whole delivers the committed
cut-down during the peak interval.  The paper leaves the CA/RCA negotiation
open; this module provides the allocation logic the Customer Agent uses when
Resource Consumer Agents are attached:

* a **greedy allocator** that curtails the most flexible (least
  comfort-critical) devices first, and
* a **proportional allocator** that spreads the cut evenly over flexible
  consumption,

both subject to each appliance's physical flexibility limit.  The allocation
is returned as per-device cut-down fractions that the Customer Agent sends as
implementation instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping, Sequence

from repro.agents.resource_consumer_agent import ResourceConsumerAgent
from repro.runtime.clock import TimeInterval


class AllocationPolicy(Enum):
    """How the committed cut-down is split across devices."""

    #: Curtail the most flexible devices first (minimises discomfort).
    GREEDY_BY_FLEXIBILITY = "greedy_by_flexibility"
    #: Spread the cut proportionally over every device's curtailable energy.
    PROPORTIONAL = "proportional"


@dataclass(frozen=True)
class DeviceAllocation:
    """The instruction for one device."""

    device: str
    appliance: str
    energy_kwh: float
    curtailed_kwh: float

    @property
    def cutdown_fraction(self) -> float:
        if self.energy_kwh <= 0:
            return 0.0
        return min(1.0, self.curtailed_kwh / self.energy_kwh)


@dataclass
class AllocationResult:
    """The full implementation plan for one awarded cut-down."""

    target_kwh: float
    allocations: list[DeviceAllocation]
    policy: AllocationPolicy

    @property
    def total_curtailed_kwh(self) -> float:
        return sum(a.curtailed_kwh for a in self.allocations)

    @property
    def shortfall_kwh(self) -> float:
        """Energy the devices cannot deliver (0 when the target is feasible)."""
        return max(0.0, self.target_kwh - self.total_curtailed_kwh)

    @property
    def feasible(self) -> bool:
        return self.shortfall_kwh <= 1e-9

    def instructions(self) -> dict[str, float]:
        """Device name -> cut-down fraction, as sent to the Resource Consumer Agents."""
        return {a.device: a.cutdown_fraction for a in self.allocations}


class CutdownAllocator:
    """Splits a household-level cut-down across Resource Consumer Agents."""

    def __init__(self, policy: AllocationPolicy = AllocationPolicy.GREEDY_BY_FLEXIBILITY) -> None:
        self.policy = policy

    def allocate(
        self,
        consumers: Sequence[ResourceConsumerAgent],
        interval: TimeInterval,
        committed_cutdown: float,
    ) -> AllocationResult:
        """Implementation plan delivering ``committed_cutdown`` of the interval energy.

        Parameters
        ----------
        consumers:
            The household's Resource Consumer Agents.
        interval:
            The peak interval the commitment refers to.
        committed_cutdown:
            The awarded household-level cut-down fraction.
        """
        if not 0.0 <= committed_cutdown <= 1.0:
            raise ValueError("committed cut-down must be in [0, 1]")
        energies = {c.name: c.energy_in(interval) for c in consumers}
        saveable = {c.name: c.saveable_energy(interval) for c in consumers}
        total_energy = sum(energies.values())
        target = committed_cutdown * total_energy
        if self.policy is AllocationPolicy.GREEDY_BY_FLEXIBILITY:
            allocations = self._greedy(consumers, energies, saveable, target)
        else:
            allocations = self._proportional(consumers, energies, saveable, target)
        return AllocationResult(target_kwh=target, allocations=allocations, policy=self.policy)

    def _greedy(
        self,
        consumers: Sequence[ResourceConsumerAgent],
        energies: Mapping[str, float],
        saveable: Mapping[str, float],
        target: float,
    ) -> list[DeviceAllocation]:
        remaining = target
        allocations = []
        ordered = sorted(
            consumers, key=lambda c: c.appliance.flexibility, reverse=True
        )
        for consumer in ordered:
            curtail = min(saveable[consumer.name], max(0.0, remaining))
            remaining -= curtail
            allocations.append(
                DeviceAllocation(
                    device=consumer.name,
                    appliance=consumer.appliance.name,
                    energy_kwh=energies[consumer.name],
                    curtailed_kwh=curtail,
                )
            )
        return allocations

    def _proportional(
        self,
        consumers: Sequence[ResourceConsumerAgent],
        energies: Mapping[str, float],
        saveable: Mapping[str, float],
        target: float,
    ) -> list[DeviceAllocation]:
        total_saveable = sum(saveable.values())
        share = 0.0 if total_saveable <= 0 else min(1.0, target / total_saveable)
        return [
            DeviceAllocation(
                device=consumer.name,
                appliance=consumer.appliance.name,
                energy_kwh=energies[consumer.name],
                curtailed_kwh=saveable[consumer.name] * share,
            )
            for consumer in consumers
        ]
