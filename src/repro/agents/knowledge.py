"""DESIRE knowledge bases for the negotiation domain.

The paper's prototype was "(fully) specified and (automatically) implemented
in the DESIRE software environment": the agents' decisions are knowledge-based
derivations over their input information.  This module expresses the two key
pieces of that knowledge as :class:`~repro.desire.knowledge_base.KnowledgeBase`
objects over an explicit ontology, and packages them as executable DESIRE
components:

* the **Customer Agent's bid knowledge** — which announced cut-downs are
  acceptable given the private cut-down-reward table, and which of those is
  the preferred (highest) one (Section 6.2), and
* the **Utility Agent's evaluation knowledge** — whether the predicted
  overuse after the current bids is acceptable, and whether the negotiation
  should continue (Sections 3.2.3 and 6).

The procedural implementations in :mod:`repro.negotiation` remain the fast
path used by the sessions; these knowledge-level versions exist so the
compositional specification of the paper is itself part of the reproduction,
and the test suite checks that both formulations agree.
"""

from __future__ import annotations

from typing import Optional

from repro.desire.component import KnowledgeComponent
from repro.desire.information_types import Atom, InformationState, InformationType
from repro.desire.knowledge_base import KnowledgeBase, Pattern, Rule, var
from repro.negotiation.reward_table import CutdownRewardRequirements, RewardTable


def negotiation_ontology() -> InformationType:
    """The shared ontology of the negotiation knowledge.

    Sorts: ``fraction`` (cut-down fractions) and ``amount`` (rewards,
    electricity quantities) are numeric.  Relations:

    * ``offered_reward(fraction, amount)`` — the announced reward table.
    * ``required_reward(fraction, amount)`` — the customer's private table.
    * ``feasible(fraction)`` — the cut-down is physically implementable.
    * ``acceptable_cutdown(fraction)`` — derived: offered >= required.
    * ``preferred_cutdown(fraction)`` — derived: the highest acceptable one.
    * ``predicted_overuse(amount)`` / ``max_allowed_overuse(amount)``.
    * ``overuse_acceptable`` / ``continue_negotiation`` — derived UA decisions.
    """
    ontology = InformationType("negotiation_knowledge")
    ontology.declare_sort("fraction", numeric=True)
    ontology.declare_sort("amount", numeric=True)
    ontology.declare_relation("offered_reward", "fraction", "amount")
    ontology.declare_relation("required_reward", "fraction", "amount")
    ontology.declare_relation("feasible", "fraction")
    ontology.declare_relation("acceptable_cutdown", "fraction")
    ontology.declare_relation("preferred_cutdown", "fraction")
    ontology.declare_relation("predicted_overuse", "amount")
    ontology.declare_relation("max_allowed_overuse", "amount")
    ontology.declare_relation("overuse_acceptable")
    ontology.declare_relation("continue_negotiation")
    return ontology


def customer_bid_knowledge() -> KnowledgeBase:
    """The Customer Agent's knowledge: acceptable and preferred cut-downs.

    "Each cut-down for which the required reward value of the customer is
    lower than the reward offered by the Utility Agent, is an acceptable
    cut-down ... the Customer Agent chooses the highest acceptable cut-down
    as its preferred cut-down" (Section 6.2).
    """
    acceptable_rule = Rule(
        name="acceptable_when_offer_covers_requirement",
        antecedent=(
            Pattern("offered_reward", (var("Cut"), var("Offered"))),
            Pattern("required_reward", (var("Cut"), var("Required"))),
            Pattern("feasible", (var("Cut"),)),
        ),
        consequent=(Pattern("acceptable_cutdown", (var("Cut"),)),),
        guards=(lambda binding: binding["Offered"] >= binding["Required"],),
    )
    return KnowledgeBase("customer_bid_knowledge", rules=[acceptable_rule])


def utility_evaluation_knowledge() -> KnowledgeBase:
    """The Utility Agent's knowledge: is the predicted overuse acceptable?

    "(1) the peak is satisfactorily low for the Utility Agent (at most the
    maximal allowed overuse)" ends the negotiation; otherwise it continues
    (Section 3.2.3).
    """
    acceptable_rule = Rule(
        name="overuse_acceptable_when_below_threshold",
        antecedent=(
            Pattern("predicted_overuse", (var("Overuse"),)),
            Pattern("max_allowed_overuse", (var("Threshold"),)),
        ),
        consequent=(Pattern("overuse_acceptable", ()),),
        guards=(lambda binding: binding["Overuse"] <= binding["Threshold"],),
    )
    continue_rule = Rule(
        name="continue_while_overuse_too_high",
        antecedent=(
            Pattern("predicted_overuse", (var("Overuse"),)),
            Pattern("max_allowed_overuse", (var("Threshold"),)),
        ),
        consequent=(Pattern("continue_negotiation", ()),),
        guards=(lambda binding: binding["Overuse"] > binding["Threshold"],),
    )
    return KnowledgeBase(
        "utility_evaluation_knowledge", rules=[acceptable_rule, continue_rule]
    )


class CustomerBidComponent(KnowledgeComponent):
    """An executable DESIRE component wrapping the customer bid knowledge.

    Feed it ``offered_reward``/``required_reward``/``feasible`` atoms on its
    input interface, activate it, and read the derived ``acceptable_cutdown``
    atoms (and the preferred cut-down via :meth:`preferred_cutdown`) from its
    output interface.
    """

    def __init__(self, name: str = "determine_bid") -> None:
        ontology = negotiation_ontology()
        super().__init__(
            name,
            customer_bid_knowledge(),
            input_type=ontology,
            output_type=ontology,
        )

    def load(
        self,
        announced: RewardTable,
        requirements: CutdownRewardRequirements,
    ) -> None:
        """Assert the announced table and the private requirements as atoms."""
        self.reset()
        for cutdown, reward in announced.entries.items():
            self.receive(Atom("offered_reward", (cutdown, reward)))
        for cutdown, required in requirements.requirements.items():
            self.receive(Atom("required_reward", (cutdown, required)))
            if cutdown <= requirements.max_feasible_cutdown + 1e-12:
                self.receive(Atom("feasible", (cutdown,)))

    def acceptable_cutdowns(self) -> list[float]:
        """Derived acceptable cut-downs, ascending."""
        atoms = self.output_state.atoms_of_relation("acceptable_cutdown")
        return sorted(float(atom.arguments[0]) for atom in atoms)

    def preferred_cutdown(self) -> float:
        """The highest acceptable cut-down (0.0 when none is acceptable).

        The maximisation step is a selection over derived atoms — in DESIRE
        terms the *select bid* sub-component of Figure 5; doing it here keeps
        the component's output identical to the procedural bidding policy.
        """
        acceptable = self.acceptable_cutdowns()
        return max(acceptable) if acceptable else 0.0


class UtilityEvaluationComponent(KnowledgeComponent):
    """An executable DESIRE component wrapping the UA evaluation knowledge."""

    def __init__(self, name: str = "evaluate_prediction") -> None:
        ontology = negotiation_ontology()
        super().__init__(
            name,
            utility_evaluation_knowledge(),
            input_type=ontology,
            output_type=ontology,
        )

    def load(self, predicted_overuse: float, max_allowed_overuse: float) -> None:
        """Assert the current prediction and the tolerance as atoms."""
        self.reset()
        self.receive(Atom("predicted_overuse", (float(predicted_overuse),)))
        self.receive(Atom("max_allowed_overuse", (float(max_allowed_overuse),)))

    def overuse_acceptable(self) -> bool:
        return self.output_state.holds(Atom("overuse_acceptable", ()))

    def should_continue(self) -> bool:
        return self.output_state.holds(Atom("continue_negotiation", ()))
