"""Convergence analysis of negotiation trajectories.

The monotonic concession protocol guarantees convergence; these helpers
quantify *how fast* a given configuration converges and verify the
monotonicity properties the protocol relies on — the behavioural properties
the companion verification paper ([2]/[7]) establishes formally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.results import NegotiationResult


@dataclass(frozen=True)
class ConvergenceAnalysis:
    """Quantitative description of one negotiation's convergence."""

    rounds: int
    initial_overuse: float
    final_overuse: float
    overuse_monotone_nonincreasing: bool
    mean_reduction_per_round: float
    geometric_decay_rate: Optional[float]
    rounds_to_halve_overuse: Optional[int]

    def as_dict(self) -> dict[str, object]:
        return {
            "rounds": self.rounds,
            "initial_overuse": self.initial_overuse,
            "final_overuse": self.final_overuse,
            "overuse_monotone_nonincreasing": self.overuse_monotone_nonincreasing,
            "mean_reduction_per_round": self.mean_reduction_per_round,
            "geometric_decay_rate": self.geometric_decay_rate,
            "rounds_to_halve_overuse": self.rounds_to_halve_overuse,
        }


def analyse_trajectory(trajectory: Sequence[float]) -> ConvergenceAnalysis:
    """Analyse an overuse trajectory (initial value followed by per-round values)."""
    if len(trajectory) < 1:
        raise ValueError("a trajectory needs at least the initial overuse")
    values = list(trajectory)
    initial = values[0]
    final = values[-1]
    rounds = len(values) - 1
    monotone = all(b <= a + 1e-9 for a, b in zip(values, values[1:]))
    mean_reduction = (initial - final) / rounds if rounds > 0 else 0.0
    decay = _geometric_decay_rate(values)
    halving = _rounds_to_halve(values)
    return ConvergenceAnalysis(
        rounds=rounds,
        initial_overuse=initial,
        final_overuse=final,
        overuse_monotone_nonincreasing=monotone,
        mean_reduction_per_round=mean_reduction,
        geometric_decay_rate=decay,
        rounds_to_halve_overuse=halving,
    )


def analyse_convergence(result: NegotiationResult) -> ConvergenceAnalysis:
    """Convergence analysis of a finished negotiation."""
    return analyse_trajectory(result.overuse_trajectory())


def _geometric_decay_rate(values: Sequence[float]) -> Optional[float]:
    """Average per-round ratio of successive positive overuse values."""
    ratios = []
    for previous, current in zip(values, values[1:]):
        if previous > 0 and current > 0:
            ratios.append(current / previous)
    if not ratios:
        return None
    return float(np.exp(np.mean(np.log(ratios))))


def _rounds_to_halve(values: Sequence[float]) -> Optional[int]:
    """First round index at which the overuse is at most half its initial value."""
    initial = values[0]
    if initial <= 0:
        return 0
    for index, value in enumerate(values[1:], start=1):
        if value <= initial / 2.0:
            return index
    return None


def reward_trajectory_is_monotone(rewards: Sequence[float], tolerance: float = 1e-9) -> bool:
    """Whether announced rewards never decrease across rounds."""
    return all(b >= a - tolerance for a, b in zip(rewards, rewards[1:]))


def bid_trajectory_is_monotone(bids: Sequence[float], tolerance: float = 1e-9) -> bool:
    """Whether a customer's cut-down bids never decrease across rounds."""
    return all(b >= a - tolerance for a, b in zip(bids, bids[1:]))
