"""Small statistical helpers used by the experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean, spread and range of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
        }


def summarise(values: Sequence[float]) -> SummaryStatistics:
    """Summary statistics of a non-empty sample."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    array = np.asarray(values, dtype=float)
    return SummaryStatistics(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        maximum=float(array.max()),
        median=float(np.median(array)),
    )


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """A normal-approximation confidence interval for the mean.

    For the sample sizes used in the experiments (tens of repetitions) the
    normal approximation is adequate; we avoid a scipy dependency at this
    layer on purpose.
    """
    if not values:
        raise ValueError("cannot compute a confidence interval of an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    stats = summarise(values)
    if stats.count == 1:
        return (stats.mean, stats.mean)
    # Two-sided z value: 1.96 for 95%, 1.64 for 90%, 2.58 for 99%.
    z_table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    z = z_table.get(round(confidence, 2))
    if z is None:
        # Fall back to the probit approximation of Acklam for other levels.
        z = math.sqrt(2) * _erfinv(confidence)
    half_width = z * stats.std / math.sqrt(stats.count)
    return (stats.mean - half_width, stats.mean + half_width)


def _erfinv(x: float) -> float:
    """Inverse error function (Winitzki's approximation, adequate here)."""
    a = 0.147
    sign = 1.0 if x >= 0 else -1.0
    ln_term = math.log(1.0 - x * x)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    return sign * math.sqrt(math.sqrt(first * first - ln_term / a) - first)


def relative_difference(value: float, reference: float) -> float:
    """``(value - reference) / reference`` with a zero-reference guard."""
    if reference == 0:
        return 0.0 if value == 0 else float("inf")
    return (value - reference) / reference


def within_factor(value: float, reference: float, factor: float) -> bool:
    """Whether ``value`` is within a multiplicative factor of ``reference``."""
    if factor < 1:
        raise ValueError("factor must be at least 1")
    if reference == 0:
        return value == 0
    ratio = value / reference
    return 1.0 / factor <= ratio <= factor
