"""Analysis, reporting and plotting utilities.

* :mod:`repro.analysis.metrics` — aggregate metrics over negotiation results
  (peak reduction, reward expenditure, participation, message counts).
* :mod:`repro.analysis.convergence` — convergence analysis of overuse and
  reward trajectories (rates, rounds to target, monotonicity checks).
* :mod:`repro.analysis.statistics` — small statistical helpers (means,
  confidence intervals, paired comparisons) used by experiments.
* :mod:`repro.analysis.reporting` — plain-text tables for experiment output.
* :mod:`repro.analysis.plotting` — ASCII line and bar charts so figures can
  be "drawn" in a terminal/CI environment without matplotlib.
"""

from repro.analysis.convergence import ConvergenceAnalysis, analyse_convergence
from repro.analysis.metrics import MethodMetrics, compare_methods, summarise_results
from repro.analysis.plotting import ascii_bar_chart, ascii_line_chart
from repro.analysis.reporting import format_table, render_report
from repro.analysis.statistics import SummaryStatistics, confidence_interval, summarise
from repro.analysis.trace import (
    NegotiationRoundTrace,
    NegotiationTrace,
    build_negotiation_trace,
)

__all__ = [
    "ConvergenceAnalysis",
    "MethodMetrics",
    "NegotiationRoundTrace",
    "NegotiationTrace",
    "SummaryStatistics",
    "analyse_convergence",
    "ascii_bar_chart",
    "ascii_line_chart",
    "build_negotiation_trace",
    "compare_methods",
    "confidence_interval",
    "format_table",
    "render_report",
    "summarise",
    "summarise_results",
]
