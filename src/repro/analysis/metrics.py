"""Aggregate metrics over negotiation results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.statistics import SummaryStatistics, summarise
from repro.core.results import NegotiationResult


@dataclass(frozen=True)
class MethodMetrics:
    """Headline metrics of one negotiation mechanism on one (set of) run(s)."""

    method: str
    runs: int
    mean_rounds: float
    mean_peak_reduction_fraction: float
    mean_final_overuse: float
    mean_reward_paid: float
    mean_messages: float
    mean_participation: float
    mean_customer_surplus: float

    def as_dict(self) -> dict[str, float | str | int]:
        return {
            "method": self.method,
            "runs": self.runs,
            "mean_rounds": self.mean_rounds,
            "mean_peak_reduction_fraction": self.mean_peak_reduction_fraction,
            "mean_final_overuse": self.mean_final_overuse,
            "mean_reward_paid": self.mean_reward_paid,
            "mean_messages": self.mean_messages,
            "mean_participation": self.mean_participation,
            "mean_customer_surplus": self.mean_customer_surplus,
        }


def summarise_results(results: Sequence[NegotiationResult]) -> MethodMetrics:
    """Aggregate a set of results of the same method."""
    if not results:
        raise ValueError("cannot summarise zero results")
    methods = {result.method_name for result in results}
    if len(methods) > 1:
        raise ValueError(f"results mix methods: {sorted(methods)}")
    return MethodMetrics(
        method=results[0].method_name,
        runs=len(results),
        mean_rounds=_mean([r.rounds for r in results]),
        mean_peak_reduction_fraction=_mean([r.peak_reduction_fraction for r in results]),
        mean_final_overuse=_mean([r.final_overuse for r in results]),
        mean_reward_paid=_mean([r.total_reward_paid for r in results]),
        mean_messages=_mean([r.messages_sent for r in results]),
        mean_participation=_mean([r.participation_rate for r in results]),
        mean_customer_surplus=_mean([r.total_customer_surplus for r in results]),
    )


def compare_methods(
    results_by_method: Mapping[str, Sequence[NegotiationResult]]
) -> list[MethodMetrics]:
    """Per-method metrics for a method-comparison experiment (E6)."""
    if not results_by_method:
        raise ValueError("no methods to compare")
    return [summarise_results(results) for results in results_by_method.values()]


def reward_statistics(results: Sequence[NegotiationResult]) -> SummaryStatistics:
    """Distribution of reward expenditure across runs."""
    return summarise([r.total_reward_paid for r in results])


def rounds_statistics(results: Sequence[NegotiationResult]) -> SummaryStatistics:
    """Distribution of negotiation length across runs."""
    return summarise([float(r.rounds) for r in results])


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)
