"""ASCII plotting: enough to render the paper's figures in a terminal.

The original prototype rendered Figures 1 and 6-9 in a graphical interface;
the benchmark harness reproduces the same information as ASCII charts so the
figures can be regenerated in any environment (CI, notebooks, terminals)
without a plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def ascii_bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """A horizontal bar chart, one bar per labelled value."""
    if not values:
        return "(no data)"
    if width <= 0:
        raise ValueError("width must be positive")
    maximum = max(abs(v) for v in values.values())
    label_width = max(len(str(label)) for label in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        length = 0 if maximum == 0 else int(round(abs(value) / maximum * width))
        bar = "#" * length
        lines.append(f"{str(label).ljust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def ascii_line_chart(
    series: Sequence[float],
    height: int = 12,
    width: Optional[int] = None,
    title: Optional[str] = None,
    y_label: str = "",
    threshold: Optional[float] = None,
) -> str:
    """A crude line chart of one series; optionally draws a threshold line.

    Used for the Figure 1 demand curve (with the normal-capacity threshold)
    and for overuse/reward trajectories.
    """
    if not series:
        return "(no data)"
    if height <= 1:
        raise ValueError("height must be at least 2")
    values = list(series)
    width = width if width is not None else len(values)
    # Resample to the requested width by nearest-neighbour.
    if width != len(values):
        values = [values[int(i * len(values) / width)] for i in range(width)]
    low = min(values + ([threshold] if threshold is not None else []))
    high = max(values + ([threshold] if threshold is not None else []))
    if high == low:
        high = low + 1.0
    rows = []
    for level in range(height, -1, -1):
        level_value = low + (high - low) * level / height
        cells = []
        for value in values:
            scaled = (value - low) / (high - low) * height
            if abs(scaled - level) < 0.5:
                cells.append("*")
            elif threshold is not None and abs(
                (threshold - low) / (high - low) * height - level
            ) < 0.5:
                cells.append("-")
            else:
                cells.append(" ")
        rows.append(f"{level_value:10.2f} |{''.join(cells)}")
    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"({y_label})")
    lines.extend(rows)
    lines.append(" " * 11 + "+" + "-" * len(values))
    return "\n".join(lines)


def ascii_trajectories(
    trajectories: Mapping[str, Sequence[float]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render several named trajectories as aligned rows of numbers."""
    if not trajectories:
        return "(no data)"
    label_width = max(len(str(label)) for label in trajectories)
    lines = []
    if title:
        lines.append(title)
    for label, values in trajectories.items():
        rendered = "  ".join(f"{v:.{precision}f}" for v in values)
        lines.append(f"{str(label).ljust(label_width)} : {rendered}")
    return "\n".join(lines)
