"""Plain-text tables and reports for experiment output."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(empty table)" if title else "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [_format_cell(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(rendered[i]) for rendered in rendered_rows))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = [
        " | ".join(cell.ljust(width) for cell, width in zip(rendered, widths))
        for rendered in rendered_rows
    ]
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, separator])
    lines.extend(body)
    return "\n".join(lines)


def render_report(sections: Mapping[str, str], title: str = "Experiment report") -> str:
    """Concatenate named sections into one report string."""
    lines = [title, "=" * len(title), ""]
    for name, content in sections.items():
        lines.append(name)
        lines.append("-" * len(name))
        lines.append(content)
        lines.append("")
    return "\n".join(lines)


def format_key_values(values: Mapping[str, object], precision: int = 3) -> str:
    """Render a flat mapping as aligned ``key: value`` lines."""
    if not values:
        return "(no values)"
    width = max(len(str(key)) for key in values)
    lines = [
        f"{str(key).ljust(width)} : {_format_cell(value, precision)}"
        for key, value in values.items()
    ]
    return "\n".join(lines)
