"""Reconstructing negotiation traces from the message log.

The message bus records every message exchanged during a session.  This
module turns that log back into a per-round, per-agent view of the
negotiation — effectively the textual equivalent of watching the Figures 6-9
interfaces update round by round — which is useful for debugging strategies
and for the verification-style analysis of the companion paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.negotiation.messages import (
    Announcement,
    Award,
    Bid,
    CutdownBid,
    RewardTableAnnouncement,
)
from repro.runtime.messaging import Message, Performative


@dataclass
class NegotiationRoundTrace:
    """Messages of one negotiation round, grouped by role."""

    round_number: int
    announcements: list[Message] = field(default_factory=list)
    bids: list[Message] = field(default_factory=list)
    awards: list[Message] = field(default_factory=list)

    @property
    def num_customers_addressed(self) -> int:
        return len({m.receiver for m in self.announcements})

    @property
    def num_bids(self) -> int:
        return len(self.bids)

    def announced_table(self) -> Optional[RewardTableAnnouncement]:
        for message in self.announcements:
            if isinstance(message.content, RewardTableAnnouncement):
                return message.content
        return None

    def bid_cutdowns(self) -> dict[str, float]:
        """Customer -> cut-down bid in this round (0 for non-cut-down bids)."""
        cutdowns: dict[str, float] = {}
        for message in self.bids:
            bid = message.content
            if isinstance(bid, Bid):
                cutdowns[bid.customer] = getattr(bid, "cutdown", 0.0)
        return cutdowns


@dataclass
class NegotiationTrace:
    """The complete message-level trace of one negotiation conversation."""

    conversation_id: str
    rounds: list[NegotiationRoundTrace] = field(default_factory=list)
    other_messages: list[Message] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_messages(self) -> int:
        in_rounds = sum(
            len(r.announcements) + len(r.bids) + len(r.awards) for r in self.rounds
        )
        return in_rounds + len(self.other_messages)

    def round(self, round_number: int) -> NegotiationRoundTrace:
        for round_trace in self.rounds:
            if round_trace.round_number == round_number:
                return round_trace
        raise KeyError(f"no round {round_number} in trace {self.conversation_id!r}")

    def awards(self) -> dict[str, Award]:
        """Customer -> final award (accepted or rejected)."""
        collected: dict[str, Award] = {}
        for round_trace in self.rounds:
            for message in round_trace.awards:
                if isinstance(message.content, Award):
                    collected[message.content.customer] = message.content
        return collected

    def rows(self) -> list[dict[str, object]]:
        """One summary row per round."""
        rows = []
        for round_trace in self.rounds:
            table = round_trace.announced_table()
            cutdowns = round_trace.bid_cutdowns()
            rows.append(
                {
                    "round": round_trace.round_number + 1,
                    "customers_addressed": round_trace.num_customers_addressed,
                    "bids_received": round_trace.num_bids,
                    "positive_bids": sum(1 for c in cutdowns.values() if c > 0),
                    "mean_bid_cutdown": (
                        sum(cutdowns.values()) / len(cutdowns) if cutdowns else 0.0
                    ),
                    "reward_at_0.4": (
                        table.table.reward_for(0.4) if table is not None else 0.0
                    ),
                }
            )
        return rows

    def render(self) -> str:
        return format_table(
            self.rows(), title=f"Negotiation trace — {self.conversation_id}"
        )


def build_negotiation_trace(
    messages: Sequence[Message], conversation_id: Optional[str] = None
) -> NegotiationTrace:
    """Group a message log into per-round negotiation traces.

    Parameters
    ----------
    messages:
        A message log (e.g. ``simulation.bus.log``).
    conversation_id:
        Restrict to one conversation; when omitted, the first conversation
        that contains an announcement is used.
    """
    if conversation_id is None:
        for message in messages:
            if message.performative is Performative.ANNOUNCE and message.conversation_id:
                conversation_id = message.conversation_id
                break
        else:
            conversation_id = ""
    relevant = [m for m in messages if m.conversation_id == conversation_id]
    trace = NegotiationTrace(conversation_id=conversation_id)
    rounds: dict[int, NegotiationRoundTrace] = {}

    def round_for(number: int) -> NegotiationRoundTrace:
        if number not in rounds:
            rounds[number] = NegotiationRoundTrace(round_number=number)
        return rounds[number]

    for message in relevant:
        number = message.round_number
        if message.performative is Performative.ANNOUNCE and number is not None:
            round_for(number).announcements.append(message)
        elif message.performative is Performative.BID and number is not None:
            round_for(number).bids.append(message)
        elif message.performative in (Performative.AWARD, Performative.REJECT):
            award_round = number if number is not None else (max(rounds) if rounds else 0)
            round_for(award_round).awards.append(message)
        else:
            trace.other_messages.append(message)
    trace.rounds = [rounds[number] for number in sorted(rounds)]
    return trace
