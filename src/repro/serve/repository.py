"""Session repository: the server's in-memory + on-disk request store.

Every submitted request becomes a :class:`SessionRecord` with a lifecycle of
``queued → running → done | failed | expired``.  Progress events accumulate
on the record and fan out to streaming subscribers; terminal records are
persisted as JSON under the server's state directory using the same
atomic-write pattern as :class:`~repro.core.checkpoint.CampaignCheckpoint`
(temp file + :func:`os.replace`), so a crash mid-write never leaves a
truncated result on disk.  On startup the repository re-loads every persisted
session, so ``/result/<id>`` keeps answering across server restarts.

**In-flight journal.**  Accepting a request and finishing it are separated by
the whole negotiation; a server killed in between would otherwise silently
lose the accepted session.  With a state directory configured, every
acceptance appends one fsynced line to an append-only journal
(``journal.ndjson``) *before* the 202 is sent, and every terminal transition
appends a matching ``finish`` line.  On startup, journaled acceptances
without a terminal record are resurrected as ``queued`` records and handed
back to the server for deterministic re-execution — same request, same
seeds, bit-identical result to an uninterrupted run (the engine is
deterministic given the request).  The journal is compacted on load so it
only ever carries the current in-flight tail, not the server's full history.

The repository is written for exactly one writer topology: worker threads
mutate records (under one lock) while the asyncio server thread reads and
subscribes.  Streaming subscribers are ``asyncio.Queue`` objects bound to the
server's loop; mutations from worker threads are marshalled onto the loop
with :meth:`asyncio.loop.call_soon_threadsafe`, so queue operations only ever
happen on the loop thread.  ``finish`` is idempotent: the first terminal
transition wins, later calls (a watchdog-failed batch completing anyway) are
ignored and return ``None``.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Sentinel closing a subscriber's event stream.
STREAM_END = None

_TERMINAL_STATES = ("done", "failed", "expired")

_JOURNAL_NAME = "journal.ndjson"


@dataclass
class SessionRecord:
    """One served negotiation request and everything known about it."""

    session_id: str
    request: dict[str, Any]
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    events: list[dict[str, Any]] = field(default_factory=list)
    payload: Optional[dict[str, Any]] = None
    error: Optional[str] = None
    #: Whether this record was resurrected from the in-flight journal.
    recovered: bool = False
    #: Live subscriber queues (loop thread only; not persisted).
    subscribers: list = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL_STATES

    def status_view(self) -> dict[str, Any]:
        """The ``/status`` body: lifecycle + progress, without the payload."""
        last_round = 0
        for event in reversed(self.events):
            if event.get("event") == "round":
                last_round = event.get("round", 0)
                break
        view = {
            "session_id": self.session_id,
            "state": self.state,
            "request": self.request,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "rounds_completed": last_round,
            "events": len(self.events),
        }
        if self.error is not None:
            view["error"] = self.error
        if self.recovered:
            view["recovered"] = True
        return view

    def result_view(self) -> dict[str, Any]:
        """The ``/result`` body (payload included once terminal)."""
        view = self.status_view()
        view["result"] = self.payload
        return view

    def persistable(self) -> dict[str, Any]:
        """The JSON document written to the state directory."""
        return {
            "session_id": self.session_id,
            "request": self.request,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "events": self.events,
            "result": self.payload,
            "error": self.error,
        }


class SessionRepository:
    """Thread-safe store of :class:`SessionRecord` objects.

    ``loop`` is the asyncio loop streaming subscribers live on; it may be
    ``None`` for synchronous use (tests, the benchmark), in which case
    subscriptions are unavailable but the record store works unchanged.
    """

    def __init__(
        self,
        state_dir: Optional[str | os.PathLike] = None,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._records: dict[str, SessionRecord] = {}
        self._state_dir = os.fspath(state_dir) if state_dir is not None else None
        self.loop = loop
        self._journal_handle = None
        self._finish_listeners: list[Callable[[SessionRecord], None]] = []
        #: Session ids resurrected from the journal, in acceptance order.
        self._recovered_ids: list[str] = []
        if self._state_dir is not None:
            os.makedirs(self._state_dir, exist_ok=True)
            self._load_persisted()
            self._load_and_compact_journal()

    # -- persistence -------------------------------------------------------------

    def _session_path(self, session_id: str) -> str:
        assert self._state_dir is not None
        return os.path.join(self._state_dir, f"{session_id}.json")

    def _journal_path(self) -> str:
        assert self._state_dir is not None
        return os.path.join(self._state_dir, _JOURNAL_NAME)

    def _load_persisted(self) -> None:
        for name in sorted(os.listdir(self._state_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self._state_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    document = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue  # foreign or torn file: skip, never crash the server
            session_id = document.get("session_id") or name[: -len(".json")]
            self._records[session_id] = SessionRecord(
                session_id=session_id,
                request=document.get("request", {}),
                state=document.get("state", "done"),
                submitted_at=document.get("submitted_at", 0.0),
                started_at=document.get("started_at"),
                finished_at=document.get("finished_at"),
                events=document.get("events", []),
                payload=document.get("result"),
                error=document.get("error"),
            )

    def _load_and_compact_journal(self) -> None:
        """Replay the journal, resurrect unfinished sessions, drop the rest."""
        path = self._journal_path()
        accepted: dict[str, dict[str, Any]] = {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail line from a crash mid-append
                    session_id = entry.get("session_id")
                    if not session_id:
                        continue
                    if entry.get("op") == "accept":
                        accepted[session_id] = entry
                    elif entry.get("op") == "finish":
                        accepted.pop(session_id, None)
        except OSError:
            pass  # no journal yet
        for session_id, entry in accepted.items():
            existing = self._records.get(session_id)
            if existing is not None and existing.terminal:
                continue  # finished and persisted, just missing its finish line
            self._records[session_id] = SessionRecord(
                session_id=session_id,
                request=entry.get("request", {}),
                state="queued",
                submitted_at=entry.get("submitted_at", 0.0),
                recovered=True,
            )
            self._recovered_ids.append(session_id)
        # Compact: rewrite only the still-in-flight acceptances, atomically,
        # then keep one append handle open for the server's lifetime.
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for session_id in self._recovered_ids:
                record = self._records[session_id]
                handle.write(
                    json.dumps(
                        {
                            "op": "accept",
                            "session_id": session_id,
                            "submitted_at": record.submitted_at,
                            "request": record.request,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)

    def _journal_append(self, entry: dict[str, Any]) -> None:
        """Append one fsynced line to the in-flight journal (lock held)."""
        if self._state_dir is None:
            return
        if self._journal_handle is None:
            self._journal_handle = open(
                self._journal_path(), "a", encoding="utf-8"
            )
        self._journal_handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._journal_handle.flush()
        os.fsync(self._journal_handle.fileno())

    def _persist(self, record: SessionRecord) -> None:
        if self._state_dir is None:
            return
        path = self._session_path(record.session_id)
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(record.persistable(), handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)

    def close(self) -> None:
        """Release the journal handle (safe to call repeatedly)."""
        with self._lock:
            if self._journal_handle is not None:
                self._journal_handle.close()
                self._journal_handle = None

    # -- recovery ----------------------------------------------------------------

    def recovered_sessions(self) -> list[SessionRecord]:
        """Journaled accepted-but-unfinished sessions, in acceptance order.

        The server re-submits these to its batcher on startup; re-running
        them is deterministic (the journal carries the full validated
        request, seeds included), so the eventual result is bit-identical to
        what the killed server would have produced.
        """
        with self._lock:
            return [self._records[sid] for sid in self._recovered_ids]

    # -- lifecycle ---------------------------------------------------------------

    def create(self, request_description: dict[str, Any]) -> SessionRecord:
        record = SessionRecord(
            session_id=uuid.uuid4().hex,
            request=request_description,
            submitted_at=time.time(),
        )
        with self._lock:
            self._records[record.session_id] = record
            self._journal_append(
                {
                    "op": "accept",
                    "session_id": record.session_id,
                    "submitted_at": record.submitted_at,
                    "request": request_description,
                }
            )
        return record

    def get(self, session_id: str) -> Optional[SessionRecord]:
        with self._lock:
            return self._records.get(session_id)

    def session_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._records)

    def mark_running(self, session_id: str) -> bool:
        """Transition to ``running``; ``False`` if already terminal."""
        with self._lock:
            record = self._records[session_id]
            if record.terminal:
                return False
            record.state = "running"
            record.started_at = time.time()
            return True

    def add_event(self, session_id: str, event: dict[str, Any]) -> None:
        """Append a progress event and fan it out to live subscribers."""
        with self._lock:
            record = self._records[session_id]
            if record.terminal:
                return  # late event from a watchdog-failed batch
            record.events.append(event)
            subscribers = list(record.subscribers)
        self._notify(subscribers, event)

    def add_finish_listener(
        self, listener: Callable[[SessionRecord], None]
    ) -> None:
        """Register a callback invoked once per *fresh* terminal transition.

        Listeners run on whichever thread performed the transition (worker or
        watchdog) and must be quick and exception-free; the admission
        controller's slot release is the intended use.
        """
        self._finish_listeners.append(listener)

    def finish(
        self,
        session_id: str,
        payload: Optional[dict[str, Any]],
        error: Optional[str] = None,
        state: Optional[str] = None,
    ) -> Optional[SessionRecord]:
        """Move a record to its terminal state, persist it, close streams.

        ``state`` overrides the default ``done``/``failed`` mapping (the
        deadline path passes ``"expired"``).  Idempotent: if the record is
        already terminal — e.g. the watchdog failed it and the worker batch
        completed afterwards — nothing changes and ``None`` is returned so
        callers skip their per-completion accounting.
        """
        with self._lock:
            record = self._records[session_id]
            if record.terminal:
                return None
            if state is not None:
                if state not in _TERMINAL_STATES:
                    raise ValueError(
                        f"finish state must be one of {_TERMINAL_STATES}, got {state!r}"
                    )
                record.state = state
            else:
                record.state = "failed" if error is not None else "done"
            record.payload = payload
            record.error = error
            record.finished_at = time.time()
            subscribers = list(record.subscribers)
            record.subscribers.clear()
        self._persist(record)
        with self._lock:
            self._journal_append({"op": "finish", "session_id": session_id})
        self._notify(subscribers, STREAM_END)
        for listener in self._finish_listeners:
            listener(record)
        return record

    # -- streaming ---------------------------------------------------------------

    def _notify(self, subscribers: list, event: Any) -> None:
        if not subscribers or self.loop is None:
            return
        for queue in subscribers:
            self.loop.call_soon_threadsafe(queue.put_nowait, event)

    def subscribe(self, session_id: str) -> Optional[tuple[list, Any]]:
        """Open an event stream: ``(past_events, queue_or_None)``.

        Must be called on the loop thread.  The replay list and the queue
        registration happen under one lock acquisition, so no event can fall
        between replay and live delivery.  For a terminal record the queue is
        ``None`` — the stream is just the replay.
        """
        with self._lock:
            record = self._records.get(session_id)
            if record is None:
                return None
            past = list(record.events)
            if record.terminal:
                return past, None
            queue: asyncio.Queue = asyncio.Queue()
            record.subscribers.append(queue)
            return past, queue

    def unsubscribe(self, session_id: str, queue: Any) -> None:
        """Detach a subscriber queue (a ``?wait`` that timed out)."""
        with self._lock:
            record = self._records.get(session_id)
            if record is not None and queue in record.subscribers:
                record.subscribers.remove(queue)
